"""Load generator: replays a trace against a live server.

Two modes, one report:

* ``pipeline`` — the deterministic mode. One connection, requests
  written in trace order with each arrival's ``now_s`` attached, a
  bounded window of them in flight (HTTP/1.1 pipelining). Against a
  sim-clock server this reproduces the simulator's decisions
  byte-for-byte while amortizing round trips, which is how the
  ``live_smoke`` bench scenario and the equivalence tests pin live
  mode to the trace replay — and how a single client sustains far more
  than the 5k decisions/s acceptance floor.

* ``openloop`` — the latency-measurement mode. Arrival times are
  scaled by ``speed`` onto the wall clock and each request is sent at
  its scheduled instant *regardless of whether earlier responses have
  arrived* (the open-loop discipline that avoids coordinated
  omission), striped across ``connections`` persistent sockets.

The report carries client round-trip percentiles, the server's own
in-engine decision latencies (echoed per response as ``decision_us``),
achieved QPS, per-outcome counts, and every non-2xx status — the
``live-smoke`` CI gate reads all three.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.clock import wall_clock_s
from repro.live.latency import LatencyHistogram
from repro.traces.model import Trace

__all__ = ["LoadgenReport", "fetch_stats", "run_loadgen"]


@dataclass
class LoadgenReport:
    """Outcome of one load-generation run."""

    sent: int = 0
    completed: int = 0
    statuses: Dict[int, int] = field(default_factory=dict)
    outcomes: Dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    client_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    decision_latency: LatencyHistogram = field(
        default_factory=LatencyHistogram
    )
    errors: List[str] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0.0 else 0.0

    @property
    def errors_5xx(self) -> int:
        return sum(n for code, n in self.statuses.items() if code >= 500)

    def summary(self) -> dict:
        """JSON-ready summary (used by ``repro-faascache loadgen``)."""
        return {
            "sent": self.sent,
            "completed": self.completed,
            "achieved_qps": self.achieved_qps,
            "wall_s": self.wall_s,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "outcomes": dict(sorted(self.outcomes.items())),
            "client_latency": self.client_latency.summary(),
            "decision_latency": self.decision_latency.summary(),
            "errors": self.errors[:10],
        }


def _encode_admit(function_name: str, now_s: Optional[float]) -> bytes:
    payload: Dict[str, object] = {"function": function_name}
    if now_s is not None:
        payload["now_s"] = now_s
    body = json.dumps(payload, separators=(",", ":")).encode()
    head = (
        "POST /admit HTTP/1.1\r\n"
        "Host: live\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n\r\n"
    ).encode()
    return head + body


async def _read_response(
    reader: "asyncio.StreamReader",
) -> Tuple[int, dict]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    length = 0
    for line in lines[1:]:
        key, sep, value = line.partition(":")
        if sep and key.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    try:
        payload = json.loads(body) if body else {}
    except ValueError:
        payload = {}
    return status, payload


def _note_response(
    report: LoadgenReport, status: int, payload: dict, rtt_s: float
) -> None:
    report.completed += 1
    report.statuses[status] = report.statuses.get(status, 0) + 1
    report.client_latency.record(rtt_s)
    if status == 200:
        outcome = payload.get("outcome")
        if isinstance(outcome, str):
            report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
        decision_us = payload.get("decision_us")
        if isinstance(decision_us, (int, float)):
            report.decision_latency.record(decision_us * 1e-6)
    elif len(report.errors) < 100:
        report.errors.append(f"HTTP {status}: {payload.get('error')}")


async def _run_pipeline(
    host: str,
    port: int,
    requests: List[Tuple[Optional[float], str]],
    report: LoadgenReport,
    window: int,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    send_times: List[float] = []
    try:

        async def _writer() -> None:
            in_flight_limit = max(1, window)
            for now_s, name in requests:
                # Bound the pipeline depth so send timestamps stay
                # close to the wire (client RTTs measure the server,
                # not an unbounded local queue).
                while report.sent - report.completed >= in_flight_limit:
                    await asyncio.sleep(0)
                writer.write(_encode_admit(name, now_s))
                send_times.append(wall_clock_s())
                report.sent += 1
                await writer.drain()

        async def _reader() -> None:
            while report.completed < len(requests):
                status, payload = await _read_response(reader)
                rtt = wall_clock_s() - send_times[report.completed]
                _note_response(report, status, payload, rtt)

        await asyncio.gather(_writer(), _reader())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _run_openloop(
    host: str,
    port: int,
    requests: List[Tuple[float, str]],
    report: LoadgenReport,
    connections: int,
    speed: float,
    duration_s: Optional[float],
) -> None:
    """Open-loop replay: request ``i`` fires at
    ``start + (t_i - t_0) / speed`` on its assigned connection, whether
    or not earlier responses are back."""
    t0 = requests[0][0] if requests else 0.0
    lanes: List[List[Tuple[float, str]]] = [[] for __ in range(connections)]
    for i, (time_s, name) in enumerate(requests):
        lanes[i % connections].append(((time_s - t0) / speed, name))
    started = wall_clock_s()

    async def _lane(schedule: List[Tuple[float, str]]) -> None:
        if not schedule:
            return
        reader, writer = await asyncio.open_connection(host, port)
        pending: "asyncio.Queue[Optional[float]]" = asyncio.Queue()

        async def _send() -> None:
            for offset_s, name in schedule:
                # The schedule, not completions, paces sends (open
                # loop); the time budget simply truncates the tail.
                if duration_s is not None and offset_s >= duration_s:
                    break
                delay = started + offset_s - wall_clock_s()
                if delay > 0:
                    await asyncio.sleep(delay)
                writer.write(_encode_admit(name, None))
                pending.put_nowait(wall_clock_s())
                report.sent += 1
                await writer.drain()
            pending.put_nowait(None)  # sentinel: lane done sending

        async def _recv() -> None:
            while True:
                sent_at = await pending.get()
                if sent_at is None:
                    return
                status, payload = await _read_response(reader)
                _note_response(
                    report, status, payload, wall_clock_s() - sent_at
                )

        try:
            await asyncio.gather(_send(), _recv())
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    await asyncio.gather(*(_lane(lane) for lane in lanes))


async def _fetch(host: str, port: int, path: str) -> Tuple[int, dict]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: live\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def fetch_stats(host: str, port: int) -> dict:
    """One ``GET /stats`` against a live server (the counter-
    consistency gate reads this)."""
    status, payload = asyncio.run(_fetch(host, port, "/stats"))
    if status != 200:
        raise RuntimeError(f"GET /stats returned HTTP {status}: {payload}")
    return payload


def run_loadgen(
    trace: Trace,
    host: str,
    port: int,
    mode: str = "pipeline",
    connections: int = 1,
    window: int = 256,
    speed: float = 1.0,
    duration_s: Optional[float] = None,
    limit: Optional[int] = None,
    send_now: bool = True,
) -> LoadgenReport:
    """Replay ``trace``'s arrivals against a live server.

    ``send_now`` (pipeline mode) attaches each arrival's trace time as
    the request's ``now_s`` — the deterministic replay contract with a
    sim-clock server; pass ``False`` against a real-time server, whose
    clock stamps arrivals itself. ``limit`` truncates the trace (for
    smoke tests); ``speed`` compresses trace time onto the wall clock
    in open-loop mode (3600.0 replays an hour per second).
    """
    if mode not in ("pipeline", "openloop"):
        raise ValueError(f"mode must be pipeline or openloop, got {mode!r}")
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if speed <= 0.0:
        raise ValueError(f"speed must be > 0, got {speed}")
    arrivals: List[Tuple[float, str]] = [
        (inv.time_s, inv.function_name) for inv in trace
    ]
    if limit is not None:
        arrivals = arrivals[:limit]
    report = LoadgenReport()
    started = wall_clock_s()
    if mode == "pipeline":
        requests = [
            (time_s if send_now else None, name) for time_s, name in arrivals
        ]
        asyncio.run(_run_pipeline(host, port, requests, report, window))
    else:
        asyncio.run(
            _run_openloop(
                host, port, arrivals, report, connections, speed, duration_s
            )
        )
    report.wall_s = wall_clock_s() - started
    return report

"""Log-bucketed latency histogram for live decision timing.

The live frontend needs p50/p99/p999 over millions of sub-millisecond
samples without keeping them all: a fixed array of logarithmic buckets
(HdrHistogram's trick, sized for the microsecond-to-seconds range a
keep-alive decision can span) gives percentiles with bounded relative
error and O(1) recording on the hot path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Fixed-size histogram with logarithmically spaced buckets.

    ``record`` is O(1); percentiles interpolate to the geometric
    midpoint of the selected bucket, so the relative error is bounded
    by the bucket width (default 20 buckets per decade ≈ 12%).

    >>> h = LatencyHistogram()
    >>> for us in (10, 20, 30, 40, 1000):
    ...     h.record(us * 1e-6)
    >>> h.count
    5
    >>> 20e-6 < h.percentile(0.5) < 40e-6
    True
    """

    __slots__ = (
        "_buckets",
        "_buckets_per_decade",
        "_log_min",
        "_max",
        "_min",
        "_sum",
        "count",
    )

    def __init__(
        self,
        min_s: float = 1e-7,
        max_s: float = 100.0,
        buckets_per_decade: int = 20,
    ) -> None:
        if min_s <= 0.0 or max_s <= min_s:
            raise ValueError(f"need 0 < min_s < max_s, got {min_s}/{max_s}")
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self._log_min = math.log10(min_s)
        self._buckets_per_decade = buckets_per_decade
        decades = math.log10(max_s) - self._log_min
        n = int(math.ceil(decades * buckets_per_decade)) + 1
        self._buckets: List[int] = [0] * n
        self.count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def _index(self, value_s: float) -> int:
        if value_s <= 0.0:
            return 0
        idx = int(
            (math.log10(value_s) - self._log_min) * self._buckets_per_decade
        )
        return min(max(idx, 0), len(self._buckets) - 1)

    def record(self, value_s: float) -> None:
        """Add one sample (seconds)."""
        self._buckets[self._index(value_s)] += 1
        self.count += 1
        self._sum += value_s
        if self._min is None or value_s < self._min:
            self._min = value_s
        if self._max is None or value_s > self._max:
            self._max = value_s

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same bucketing) into this one."""
        if len(other._buckets) != len(self._buckets):
            raise ValueError("histograms have different bucket layouts")
        for i, n in enumerate(other._buckets):
            self._buckets[i] += n
        self.count += other.count
        self._sum += other._sum
        for bound in (other._min, other._max):
            if bound is None:
                continue
            if self._min is None or bound < self._min:
                self._min = bound
            if self._max is None or bound > self._max:
                self._max = bound

    def percentile(self, q: float) -> float:
        """The latency (seconds) at quantile ``q`` in [0, 1]; 0.0 when
        empty. Exact at the recorded min/max, geometric-midpoint
        interpolated inside a bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0 or self._min is None or self._max is None:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self._buckets):
            seen += n
            if seen >= rank and n > 0:
                low = 10.0 ** (
                    self._log_min + i / self._buckets_per_decade
                )
                high = 10.0 ** (
                    self._log_min + (i + 1) / self._buckets_per_decade
                )
                mid = math.sqrt(low * high)
                return min(max(mid, self._min), self._max)
        return self._max

    @property
    def mean_s(self) -> float:
        return self._sum / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """JSON-ready snapshot in microseconds (the natural unit for
        admission decisions)."""
        to_us = 1e6
        return {
            "count": float(self.count),
            "mean_us": self.mean_s * to_us,
            "p50_us": self.percentile(0.50) * to_us,
            "p99_us": self.percentile(0.99) * to_us,
            "p999_us": self.percentile(0.999) * to_us,
            "min_us": (self._min or 0.0) * to_us,
            "max_us": (self._max or 0.0) * to_us,
        }

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, "
            f"p99_us={self.percentile(0.99) * 1e6:.1f})"
        )

"""Asyncio HTTP frontend for the live keep-alive service.

A deliberately small HTTP/1.1 server on stdlib ``asyncio`` streams —
no web framework, no thread-per-request — exposing the
:class:`~repro.live.service.LivePoolService` API as JSON endpoints:

* ``POST /admit``   ``{"function": NAME, "now_s": optional}`` →
  admission decision (``now_s`` only honoured under a sim clock);
* ``POST /release`` → completed invocations returned to the pool;
* ``GET /stats``    → counters, decision-latency percentiles, pool
  occupancy;
* ``GET /healthz``  → liveness.

Connections are keep-alive and fully pipelined: requests on one
connection are answered in order, which is what lets the deterministic
load generator replay a trace at high QPS over a single socket while
preserving the simulator's arrival order. Decision work happens inline
on the event loop — a decision is microseconds of lock-protected
computation, so handing it to a thread pool would cost more than it
frees. A periodic timer drains expirations during idle stretches.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Tuple

from repro.live.service import LivePoolService, UnknownFunctionError

__all__ = ["LiveHTTPServer", "ServerThread"]

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _encode_response(status: int, payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode()
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n\r\n"
    ).encode()
    return head + body


class LiveHTTPServer:
    """Serves one :class:`LivePoolService` over HTTP."""

    def __init__(
        self,
        service: LivePoolService,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_interval_s: float = 0.25,
    ) -> None:
        if tick_interval_s < 0.0:
            raise ValueError(
                f"tick_interval_s must be >= 0, got {tick_interval_s}"
            )
        self.service = service
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.tick_interval_s = tick_interval_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._tick_task: Optional["asyncio.Task"] = None
        self.requests_served = 0
        self.errors_5xx = 0

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict]:
        if path == "/admit" and method == "POST":
            try:
                request = json.loads(body) if body else {}
            except ValueError:
                return 400, {"error": "body is not valid JSON"}
            name = request.get("function")
            if not isinstance(name, str):
                return 400, {"error": "missing string field 'function'"}
            now_s = request.get("now_s")
            if now_s is not None and not isinstance(now_s, (int, float)):
                return 400, {"error": "'now_s' must be a number"}
            try:
                decision = self.service.admit(name, now_s)
            except UnknownFunctionError:
                return 404, {"error": f"unknown function {name!r}"}
            return 200, {
                "outcome": decision.outcome,
                "function": decision.function,
                "now_s": decision.now_s,
                "decision_us": decision.decision_latency_s * 1e6,
            }
        if path == "/release" and method == "POST":
            try:
                request = json.loads(body) if body else {}
            except ValueError:
                return 400, {"error": "body is not valid JSON"}
            now_s = request.get("now_s")
            if now_s is not None and not isinstance(now_s, (int, float)):
                return 400, {"error": "'now_s' must be a number"}
            return 200, {"released": self.service.release(now_s)}
        if path == "/stats" and method == "GET":
            stats = self.service.stats()
            stats["http"] = {
                "requests": self.requests_served,
                "errors_5xx": self.errors_5xx,
            }
            return 200, stats
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True}
        if path in ("/admit", "/release", "/stats", "/healthz"):
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no route for {path}"}

    async def _handle_client(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                except asyncio.LimitOverrunError:
                    writer.write(
                        _encode_response(400, {"error": "headers too large"})
                    )
                    break
                status, payload = await self._one_request(reader, head)
                self.requests_served += 1
                if status >= 500:
                    self.errors_5xx += 1
                writer.write(_encode_response(status, payload))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # close() without awaiting wait_closed(): the loop may be
            # tearing down (stop() mid-connection), and awaiting here
            # just turns shutdown into cancellation noise.
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _one_request(
        self, reader: "asyncio.StreamReader", head: bytes
    ) -> Tuple[int, dict]:
        try:
            lines = head.decode("latin-1").split("\r\n")
            parts = lines[0].split(" ")
            if len(parts) != 3:
                return 400, {"error": "malformed request line"}
            method, path = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            for line in lines[1:]:
                key, sep, value = line.partition(":")
                if sep:
                    headers[key.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length < 0 or length > _MAX_BODY_BYTES:
                return 413, {"error": "body too large"}
            body = await reader.readexactly(length) if length else b""
        except (ValueError, asyncio.IncompleteReadError):
            return 400, {"error": "malformed request"}
        try:
            return self._dispatch(method, path, body)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    async def _tick_loop(self) -> None:
        """Drain completions/expirations on a timer so idle periods
        (no arrivals to piggyback housekeeping on) still free memory."""
        while True:
            await asyncio.sleep(self.tick_interval_s)
            self.service.expire_tick()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client,
            self.host,
            self.port,
            limit=_MAX_HEADER_BYTES,
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if self.tick_interval_s > 0.0:
            loop = asyncio.get_running_loop()
            self._tick_task = loop.create_task(self._tick_loop())

    async def stop(self) -> None:
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
            self._tick_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self, on_ready=None) -> None:
        """Start and serve until cancelled. ``on_ready`` (called with
        the server once the socket is bound) lets the CLI announce the
        resolved ephemeral port."""
        await self.start()
        assert self._server is not None
        if on_ready is not None:
            on_ready(self)
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()


class ServerThread:
    """Runs a :class:`LiveHTTPServer` on its own event-loop thread.

    The in-process embedding tests, the ``live_smoke`` bench scenario,
    and ``make live-smoke`` use this: start() blocks until the socket
    is bound (so the caller can read the ephemeral port), stop() joins
    the loop thread cleanly.
    """

    def __init__(
        self,
        service: LivePoolService,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_interval_s: float = 0.0,
    ) -> None:
        self.server = LiveHTTPServer(
            service, host=host, port=port, tick_interval_s=tick_interval_s
        )
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self.error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-live-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self.error is not None:
            raise RuntimeError("live server failed to start") from self.error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self.error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

"""Thread-safe live facade over the keep-alive engine.

:class:`LivePoolService` is the seam between real-time frontends and
the deterministic core: it wraps the *same* :class:`KeepAliveSimulator`
engine the trace replay uses (one policy engine, two drivers —
docs/live-serving.md), stamps arrivals from a
:class:`~repro.core.clock.Clock`, and serializes every entry point
behind a single :class:`threading.Lock`.

Lock discipline (FC009-verifiable): the lock is acquired at the top of
every public method and nothing under it blocks — admission decisions
are microseconds of pure computation — so any number of frontend
threads (or an asyncio loop plus a timer) can share one service. No
pool or policy state is ever touched outside the lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.core.clock import Clock, RealTimeClock, wall_clock_s
from repro.core.policies.base import KeepAlivePolicy, create_policy
from repro.live.latency import LatencyHistogram
from repro.obs.tracer import Tracer
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Trace

__all__ = ["AdmitDecision", "LivePoolService", "UnknownFunctionError"]


class UnknownFunctionError(KeyError):
    """Admission was requested for a function the service never saw in
    its registry (frontends map this to HTTP 404)."""


@dataclass(frozen=True)
class AdmitDecision:
    """One admission decision as the frontend reports it."""

    outcome: str  # 'warm' | 'cold' | 'dropped' | 'retried' | 'shed'
    function: str
    now_s: float  # service-clock time the decision was made at
    decision_latency_s: float  # wall time spent inside the engine


class LivePoolService:
    """Drives one ContainerPool + policy engine from live requests.

    ``trace`` supplies the function registry (names, memory, warm/cold
    times) — its invocations, if any, are ignored; live arrivals come
    from :meth:`admit`. ``clock`` defaults to a
    :class:`~repro.core.clock.RealTimeClock`; passing a
    :class:`~repro.core.clock.SimClock` (and per-request ``now_s``
    values) makes the service a deterministic replay target, which is
    how the sim/live equivalence tests and the ``live_smoke`` bench
    scenario pin live mode to the simulator's byte-exact results.
    """

    def __init__(
        self,
        trace: Trace,
        policy: Union[str, KeepAlivePolicy],
        memory_mb: float,
        clock: Optional[Clock] = None,
        tracer: Optional[Tracer] = None,
        tenant_mode: str = "shared",
        tenant_quotas: Optional[Dict[int, float]] = None,
        **policy_kwargs,
    ) -> None:
        if isinstance(policy, str):
            policy = create_policy(policy, **policy_kwargs)
        elif policy_kwargs:
            raise ValueError("policy_kwargs are only valid with a policy name")
        self._lock = threading.Lock()
        self._sim = KeepAliveSimulator(
            trace,
            policy,
            memory_mb,
            tracer=tracer,
            tenant_mode=tenant_mode,
            tenant_quotas=tenant_quotas,
        )
        self._functions = trace.functions
        self._clock: Clock = clock if clock is not None else RealTimeClock()
        # SimClock drivers carry their own instants; a clock without
        # advance_to (the real-time one) ignores per-request times.
        self._advance_to = getattr(self._clock, "advance_to", None)
        self._decision_latency = LatencyHistogram()
        self._outcomes: Dict[str, int] = {}
        self._started_wall_s = wall_clock_s()

    # ------------------------------------------------------------------
    # Clock plumbing (callers hold the lock)
    # ------------------------------------------------------------------

    def _resolve_now(self, now_s: Optional[float]) -> float:
        if now_s is not None and self._advance_to is not None:
            self._advance_to(now_s)
        return self._clock.now()

    # ------------------------------------------------------------------
    # Public API — every method takes the lock for its whole body
    # ------------------------------------------------------------------

    @property
    def clock(self) -> Clock:
        return self._clock

    def function_names(self) -> Tuple[str, ...]:
        """The registered function names (stable registry; no lock
        needed — the mapping is never mutated after construction)."""
        return tuple(self._functions)

    def admit(
        self, function_name: str, now_s: Optional[float] = None
    ) -> AdmitDecision:
        """Decide one arrival: warm hit, cold start, or drop.

        ``now_s`` is only honoured under an advanceable (sim) clock;
        under the real-time clock the service stamps the arrival
        itself, so clients cannot time-travel the pool.
        """
        with self._lock:
            function = self._functions.get(function_name)
            if function is None:
                raise UnknownFunctionError(function_name)
            now = self._resolve_now(now_s)
            entered_s = wall_clock_s()
            outcome = self._sim.process_invocation(function, now)
            latency_s = wall_clock_s() - entered_s
            self._decision_latency.record(latency_s)
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1
            return AdmitDecision(outcome, function_name, now, latency_s)

    def release(self, now_s: Optional[float] = None) -> int:
        """Return finished invocations to the warm pool (and apply any
        other housekeeping due by now). Returns how many completed."""
        with self._lock:
            now = self._resolve_now(now_s)
            before = self._sim.outstanding
            self._sim.housekeeping(now)
            return before - self._sim.outstanding

    def expire_tick(self, now_s: Optional[float] = None) -> int:
        """Timer entry point: drain the expiry heap (plus completions
        and due prewarms) up to now. Returns expirations applied —
        this is what keeps idle periods from pinning dead containers,
        since no arrival would otherwise trigger the sweep."""
        with self._lock:
            now = self._resolve_now(now_s)
            before = self._sim.metrics.expirations
            self._sim.housekeeping(now)
            return self._sim.metrics.expirations - before

    def stats(self) -> dict:
        """JSON-ready snapshot: engine counters, per-outcome decision
        counts, pool occupancy, and the decision-latency histogram."""
        with self._lock:
            pool = self._sim.pool
            return {
                "counters": dict(self._sim.metrics.counters()),
                "decisions": dict(self._outcomes),
                "outstanding": self._sim.outstanding,
                "pool": {
                    "capacity_mb": pool.capacity_mb,
                    "used_mb": pool.used_mb,
                    "free_mb": pool.free_mb,
                    "containers": len(pool),
                },
                "decision_latency": self._decision_latency.summary(),
                "clock_now_s": self._clock.now(),
                "uptime_s": wall_clock_s() - self._started_wall_s,
            }

    def counters(self) -> Dict[str, int]:
        """The engine's aggregate lifecycle counters (the same 14-key
        contract SimulationMetrics.counters() pins)."""
        with self._lock:
            return dict(self._sim.metrics.counters())

"""Live serving mode: the keep-alive engine behind a real-time HTTP
frontend (docs/live-serving.md).

One policy engine, two drivers: the simulator replays traces through a
:class:`~repro.core.clock.SimClock`; this package drives the *same*
:class:`~repro.sim.scheduler.KeepAliveSimulator` from live HTTP
requests under a :class:`~repro.core.clock.RealTimeClock` —

* :class:`~repro.live.service.LivePoolService` — the thread-safe
  facade (single-lock discipline, decision-latency histogram);
* :class:`~repro.live.server.LiveHTTPServer` /
  :class:`~repro.live.server.ServerThread` — the asyncio HTTP
  frontend (``/admit``, ``/release``, ``/stats``, ``/healthz``);
* :func:`~repro.live.loadgen.run_loadgen` — trace replay against a
  running server (deterministic pipelined mode and open-loop mode)
  with p50/p99/p999 decision-latency reporting.
"""

from repro.live.latency import LatencyHistogram
from repro.live.loadgen import LoadgenReport, fetch_stats, run_loadgen
from repro.live.server import LiveHTTPServer, ServerThread
from repro.live.service import (
    AdmitDecision,
    LivePoolService,
    UnknownFunctionError,
)

__all__ = [
    "AdmitDecision",
    "LatencyHistogram",
    "LiveHTTPServer",
    "LivePoolService",
    "LoadgenReport",
    "ServerThread",
    "UnknownFunctionError",
    "fetch_stats",
    "run_loadgen",
]

"""Series builders for the paper's figures.

Each function assembles exactly the data one figure plots, from the
library's primitives, so benchmarks and examples share one definition
of "the Figure N data".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.policies import PAPER_POLICIES
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.sim.scheduler import simulate
from repro.sim.server import GB_MB
from repro.sim.sweep import SweepResult, run_sweep
from repro.traces.model import Trace

__all__ = [
    "HitRatioComparison",
    "figure3_data",
    "figure5_data",
    "figure6_data",
]


@dataclass
class HitRatioComparison:
    """Figure 3: reuse-distance prediction vs observed hit ratios."""

    cache_sizes_gb: List[float]
    predicted: List[float]
    observed: List[float]

    def max_deviation(self) -> float:
        return max(
            abs(p - o) for p, o in zip(self.predicted, self.observed)
        )


def figure3_data(
    trace: Trace,
    cache_sizes_gb: Sequence[float],
    policy: str = "GD",
) -> HitRatioComparison:
    """Reuse-distance hit-ratio curve vs simulator-observed hit ratios.

    The deviations are the paper's "Limitations of the Caching
    Analogy": dropped requests push the observed ratio below the
    prediction at small sizes; concurrent executions (several
    containers per function) bend it at large sizes.
    """
    curve = HitRatioCurve.from_distances(reuse_distances(trace))
    predicted = [curve.hit_ratio(gb * GB_MB) for gb in cache_sizes_gb]
    observed = []
    for gb in cache_sizes_gb:
        result = simulate(trace, policy, gb * GB_MB)
        observed.append(result.metrics.global_hit_ratio)
    return HitRatioComparison(
        cache_sizes_gb=list(cache_sizes_gb),
        predicted=predicted,
        observed=observed,
    )


def figure5_data(
    trace: Trace,
    memory_gbs: Sequence[float],
    policies: Sequence[str] = PAPER_POLICIES,
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-policy (memory GB, % execution-time increase) series."""
    sweep = run_sweep(trace, memory_gbs, policies)
    return {
        policy: sweep.series(policy, "exec_time_increase_pct")
        for policy in policies
    }


def figure6_data(
    trace: Trace,
    memory_gbs: Sequence[float],
    policies: Sequence[str] = PAPER_POLICIES,
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-policy (memory GB, % cold starts) series."""
    sweep = run_sweep(trace, memory_gbs, policies)
    return {
        policy: sweep.series(policy, "cold_start_pct") for policy in policies
    }

"""Statistics helpers, figure-series builders, and text reporting.

Figure-series builders live in :mod:`repro.analysis.curves`; they are
not imported here because they depend on the policy and simulator
packages, which themselves use :mod:`repro.analysis.stats` (HIST's
Welford CoV). Import them explicitly::

    from repro.analysis.curves import figure3_data
"""

from repro.analysis.concurrency import (
    concurrency_headroom_mb,
    concurrency_profile,
    max_concurrency,
    working_set_mb,
)
from repro.analysis.reporting import (
    format_bar_chart,
    format_series_table,
    format_table,
)
from repro.analysis.stats import EWMA, EmpiricalCDF, Welford, mean, percentile
from repro.analysis.workload import (
    WorkloadProfile,
    diurnal_peak_to_mean,
    gini_coefficient,
    orders_of_magnitude,
    profile_trace,
    top_share,
)

__all__ = [
    "concurrency_headroom_mb",
    "concurrency_profile",
    "max_concurrency",
    "working_set_mb",
    "format_bar_chart",
    "format_series_table",
    "format_table",
    "EWMA",
    "EmpiricalCDF",
    "Welford",
    "mean",
    "percentile",
    "WorkloadProfile",
    "diurnal_peak_to_mean",
    "gini_coefficient",
    "orders_of_magnitude",
    "profile_trace",
    "top_share",
]

"""Plain-text tables and series for the benchmark harness.

Every benchmark regenerates a paper table or figure as text: tables as
aligned columns, figures as (x, y-per-series) grids. Keeping the
renderer here keeps the benchmarks themselves declarative.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "format_table",
    "format_series_table",
    "format_bar_chart",
    "format_line_plot",
]


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return str(value)
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render one figure's data: an x column plus one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row = [x] + [series[name][i] for name in series]
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_line_plot(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    title: str = "",
) -> str:
    """A multi-series ASCII scatter plot, one marker letter per series.

    Figures in the paper are line plots over memory sizes; this gives
    the benchmark output the same at-a-glance shape without a plotting
    dependency. Markers are the first distinct letters of the series
    names; collisions on a cell show ``*``.
    """
    if not x_values:
        raise ValueError("need at least one x value")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    x_min, x_max = min(x_values), max(x_values)
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for __ in range(height)]
    markers = {}
    used = set()
    for name in series:
        for ch in name.upper():
            if ch.isalnum() and ch not in used:
                markers[name] = ch
                used.add(ch)
                break
        else:
            markers[name] = "?"
    for name, ys in series.items():
        marker = markers[name]
        for x, y in zip(x_values, ys):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_min) / y_span * (height - 1)))
            cell = grid[row][col]
            grid[row][col] = marker if cell in (" ", marker) else "*"

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>10.3g} +" + "-" * width)
    for i, row in enumerate(grid):
        prefix = " " * 10 + " |"
        if i == height - 1:
            prefix = f"{y_min:>10.3g} +"
        lines.append(prefix + "".join(row))
    lines.append(
        " " * 12 + f"{x_min:<10.4g}{' ' * max(width - 20, 1)}{x_max:>10.4g}"
    )
    legend = "  ".join(f"{markers[name]}={name}" for name in series)
    footer = legend
    if x_label:
        footer += f"   x: {x_label}"
    if y_label:
        footer += f"   y: {y_label}"
    lines.append(footer)
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """A horizontal ASCII bar chart (for breakdown figures)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max(values) if values else 0.0
    lines: List[str] = [title] if title else []
    label_width = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar_len = int(round(width * value / peak)) if peak > 0 else 0
        lines.append(
            f"{label.ljust(label_width)} | "
            f"{'#' * bar_len} {_render_cell(float(value))}"
        )
    return "\n".join(lines)

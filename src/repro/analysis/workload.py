"""Workload characterization (the paper's Section 3 analysis).

The paper motivates its policies with workload facts: function
inter-arrival times and memory sizes vary by more than three orders of
magnitude, workloads are heavy-tailed with a few heavy hitters, and
arrival rates show diurnal swings with a peak about twice the mean.
This module computes those statistics for any trace, both to
characterize user workloads and to validate that the synthetic Azure
generator reproduces the properties it promises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.traces.model import Trace

__all__ = [
    "gini_coefficient",
    "top_share",
    "orders_of_magnitude",
    "diurnal_peak_to_mean",
    "WorkloadProfile",
    "profile_trace",
]


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample: 0 = equal, 1 = one
    value holds everything."""
    if not values:
        raise ValueError("cannot compute Gini of an empty sample")
    if any(v < 0 for v in values):
        raise ValueError("Gini requires non-negative values")
    ordered = sorted(values)
    total = sum(ordered)
    if total == 0:
        return 0.0
    n = len(ordered)
    cumulative = 0.0
    for i, v in enumerate(ordered, start=1):
        cumulative += i * v
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


def top_share(values: Sequence[float], fraction: float = 0.1) -> float:
    """Share of the total held by the top ``fraction`` of values."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if not values:
        raise ValueError("cannot compute top share of an empty sample")
    ordered = sorted(values, reverse=True)
    k = max(1, int(round(len(ordered) * fraction)))
    total = sum(ordered)
    if total == 0:
        return 0.0
    return sum(ordered[:k]) / total


def orders_of_magnitude(values: Sequence[float]) -> float:
    """log10(max / min) over the positive values of a sample."""
    positive = [v for v in values if v > 0]
    if not positive:
        raise ValueError("need at least one positive value")
    return math.log10(max(positive) / min(positive))


def diurnal_peak_to_mean(
    trace: Trace, window_s: float = 3600.0
) -> float:
    """Peak-to-mean ratio of the windowed arrival rate."""
    if window_s <= 0:
        raise ValueError(f"window must be positive, got {window_s}")
    if len(trace) == 0:
        return 0.0
    start = trace.invocations[0].time_s
    end = trace.invocations[-1].time_s
    num_windows = max(1, int((end - start) / window_s) + 1)
    counts = [0] * num_windows
    for invocation in trace.invocations:
        index = min(int((invocation.time_s - start) / window_s), num_windows - 1)
        counts[index] += 1
    mean = sum(counts) / num_windows
    return max(counts) / mean if mean > 0 else 0.0


@dataclass(frozen=True)
class WorkloadProfile:
    """The Section 3 headline statistics of one workload."""

    num_functions: int
    num_invocations: int
    duration_s: float
    mean_rate_per_s: float
    popularity_gini: float
    popularity_top10_share: float
    iat_orders_of_magnitude: float
    memory_orders_of_magnitude: float
    diurnal_peak_to_mean: float
    median_memory_mb: float
    median_warm_time_s: float
    median_init_time_s: float

    def rows(self) -> List[Tuple[str, float]]:
        """(label, value) pairs for table rendering."""
        return [
            ("functions", self.num_functions),
            ("invocations", self.num_invocations),
            ("duration (h)", self.duration_s / 3600.0),
            ("mean rate (/s)", self.mean_rate_per_s),
            ("popularity Gini", self.popularity_gini),
            ("top-10% share", self.popularity_top10_share),
            ("IAT spread (orders)", self.iat_orders_of_magnitude),
            ("memory spread (orders)", self.memory_orders_of_magnitude),
            ("diurnal peak/mean", self.diurnal_peak_to_mean),
            ("median memory (MB)", self.median_memory_mb),
            ("median warm time (s)", self.median_warm_time_s),
            ("median init time (s)", self.median_init_time_s),
        ]


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    if n % 2:
        return ordered[n // 2]
    return 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])


def profile_trace(trace: Trace, diurnal_window_s: float = 3600.0) -> WorkloadProfile:
    """Compute the full Section 3 characterization of a trace."""
    counts = trace.per_function_counts()
    popularity = [c for c in counts.values() if c > 0]
    duration = trace.duration_s

    # Mean per-function IATs, for the functions with reuse.
    iats: List[float] = []
    for name, count in counts.items():
        if count >= 2:
            # Mean IAT over the trace span; individual gaps vary more,
            # so this understates the spread — a conservative figure.
            iats.append(duration / (count - 1) if duration > 0 else 0.0)

    functions = list(trace.functions.values())
    return WorkloadProfile(
        num_functions=trace.num_functions,
        num_invocations=len(trace),
        duration_s=duration,
        mean_rate_per_s=trace.arrival_rate(),
        popularity_gini=gini_coefficient(popularity) if popularity else 0.0,
        popularity_top10_share=top_share(popularity) if popularity else 0.0,
        iat_orders_of_magnitude=(
            orders_of_magnitude(iats) if len(iats) >= 2 else 0.0
        ),
        memory_orders_of_magnitude=orders_of_magnitude(
            [f.memory_mb for f in functions]
        ),
        diurnal_peak_to_mean=diurnal_peak_to_mean(trace, diurnal_window_s),
        median_memory_mb=_median([f.memory_mb for f in functions]),
        median_warm_time_s=_median([f.warm_time_s for f in functions]),
        median_init_time_s=_median([f.init_time_s for f in functions]),
    )

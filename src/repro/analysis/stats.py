"""Online and offline statistics helpers shared across the library.

The paper relies on three statistical primitives:

* Welford's online algorithm [Welford 1962] for the coefficient of
  variation used by the HIST keep-alive policy (Section 7.1).
* Exponentially weighted moving averages for the arrival-rate estimate
  consumed by the proportional provisioning controller (Section 5.2).
* Empirical CDFs, which *are* the hit-ratio curves of Section 5.1
  (Equation 2: the hit ratio at cache size ``c`` is the CDF of the
  reuse-distance distribution evaluated at ``c``).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "Welford",
    "EWMA",
    "EmpiricalCDF",
    "percentile",
    "mean",
]


class Welford:
    """Welford's online algorithm for mean and variance.

    Numerically stable single-pass computation; used by the HIST policy
    to maintain the coefficient of variation of a function's
    inter-arrival times without storing them all.

    >>> w = Welford()
    >>> for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
    ...     w.update(x)
    >>> round(w.mean, 3)
    5.0
    >>> round(w.variance, 3)
    4.571
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        delta2 = value - self._mean
        self._m2 += delta * delta2

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (Bessel-corrected); zero for < 2 samples."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def coefficient_of_variation(self) -> float:
        """Stddev over mean; ``inf`` when the mean is zero but data varies.

        The HIST policy treats a function as *predictable* when this is
        at most 2 (Section 7.1).
        """
        if self._count < 2:
            return 0.0
        # Restructured away from a float ``== 0.0`` guard (FC007): a
        # zero denominator is exactly the non-positive case of its
        # absolute value, and the division is guarded by the same
        # quantity it divides by.
        denominator = abs(self._mean)
        if denominator <= 0.0:
            return math.inf if self._m2 > 0.0 else 0.0
        return self.stddev / denominator

    def merge(self, other: "Welford") -> "Welford":
        """Return a new accumulator equivalent to seeing both streams."""
        merged = Welford()
        if self._count == 0:
            merged._count, merged._mean, merged._m2 = (
                other._count,
                other._mean,
                other._m2,
            )
            return merged
        if other._count == 0:
            merged._count, merged._mean, merged._m2 = (
                self._count,
                self._mean,
                self._m2,
            )
            return merged
        total = self._count + other._count
        delta = other._mean - self._mean
        merged._count = total
        merged._mean = self._mean + delta * other._count / total
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self._count * other._count / total
        )
        return merged

    def __repr__(self) -> str:
        return (
            f"Welford(count={self._count}, mean={self._mean:.6g}, "
            f"variance={self.variance:.6g})"
        )


class EWMA:
    """Exponentially weighted moving average.

    The provisioning controller smooths the observed arrival rate with
    an EWMA before comparing against the hit-ratio-curve target
    (Section 5.2). ``alpha`` is the weight of the newest observation.
    """

    def __init__(self, alpha: float = 0.3, initial: float | None = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._value = initial
        self._count = 0 if initial is None else 1

    def update(self, value: float) -> float:
        """Fold one observation in and return the new smoothed value."""
        if self._value is None:
            self._value = float(value)
        else:
            self._value += self._alpha * (value - self._value)
        self._count += 1
        return self._value

    @property
    def value(self) -> float:
        if self._value is None:
            raise ValueError("EWMA has no observations yet")
        return self._value

    @property
    def initialized(self) -> bool:
        return self._value is not None

    @property
    def count(self) -> int:
        return self._count

    def __repr__(self) -> str:
        inner = "empty" if self._value is None else f"{self._value:.6g}"
        return f"EWMA(alpha={self._alpha}, value={inner})"


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical cumulative distribution function over a sample.

    Built once from a sample; supports evaluation, inversion (quantile
    lookup), and weighted construction. Weighted construction is what
    SHARDS-style sampling needs: each retained sample carries weight
    ``1 / sampling_rate``.
    """

    values: Tuple[float, ...]
    cumulative_weights: Tuple[float, ...]
    total_weight: float

    @classmethod
    def from_samples(
        cls,
        samples: Iterable[float],
        weights: Iterable[float] | None = None,
    ) -> "EmpiricalCDF":
        pairs: List[Tuple[float, float]]
        if weights is None:
            pairs = [(float(s), 1.0) for s in samples]
        else:
            pairs = [(float(s), float(w)) for s, w in zip(samples, weights)]
        if not pairs:
            raise ValueError("cannot build a CDF from an empty sample")
        if any(w < 0 for _, w in pairs):
            raise ValueError("weights must be non-negative")
        pairs.sort(key=lambda p: p[0])
        values: List[float] = []
        cumulative: List[float] = []
        running = 0.0
        for value, weight in pairs:
            running += weight
            if values and values[-1] == value:
                cumulative[-1] = running
            else:
                values.append(value)
                cumulative.append(running)
        if running <= 0.0:
            raise ValueError("total weight must be positive")
        return cls(tuple(values), tuple(cumulative), running)

    def evaluate(self, x: float) -> float:
        """P(X <= x), in [0, 1]."""
        idx = bisect.bisect_right(self.values, x)
        if idx == 0:
            return 0.0
        return self.cumulative_weights[idx - 1] / self.total_weight

    def quantile(self, q: float) -> float:
        """Smallest sample value v with P(X <= v) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        # The range check above pins q >= 0, so <= covers exactly the
        # q == 0 case without a float equality (FC007).
        if q <= 0.0:
            return self.values[0]
        target = q * self.total_weight
        idx = bisect.bisect_left(self.cumulative_weights, target)
        idx = min(idx, len(self.values) - 1)
        return self.values[idx]

    def __call__(self, x: float) -> float:
        return self.evaluate(x)

    def __len__(self) -> int:
        return len(self.values)


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample; ``q`` in [0, 100]."""
    if not samples:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    # q >= 0 is enforced above; <= avoids the float equality (FC007).
    if q <= 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(0, rank - 1)]


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sample."""
    if not samples:
        raise ValueError("cannot take the mean of an empty sample")
    return sum(samples) / len(samples)

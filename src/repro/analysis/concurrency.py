"""Concurrency analysis: the caching analogy's correction term.

Section 5.1's "Limitations of the Caching Analogy" identifies exactly
where keep-alive departs from classical caching: a function can have
several containers for concurrent invocations, so at larger cache
sizes the real memory need exceeds what reuse distances predict, and
at small sizes concurrent demand causes drops the model cannot see.

This module computes the correction from the trace itself:

* :func:`concurrency_profile` — per function, the peak number of
  overlapping invocations (sweep line over warm-execution intervals);
* :func:`concurrency_headroom_mb` — the extra memory beyond one
  container per function that peak concurrency requires:
  ``sum_i (peak_i - 1) * size_i``. Adding it to a reuse-distance
  provisioning decision covers the multi-container effect the
  hit-ratio curve misses.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.traces.model import Trace

__all__ = [
    "concurrency_profile",
    "max_concurrency",
    "concurrency_headroom_mb",
    "working_set_mb",
]


def concurrency_profile(trace: Trace, use_cold_time: bool = False) -> Dict[str, int]:
    """Peak overlapping invocations per function.

    Each invocation occupies a container for its warm running time
    (or cold time with ``use_cold_time``, the conservative bound — a
    cold start holds the container longer). The peak of the resulting
    interval overlap is the minimum number of containers the function
    needs to avoid concurrency-induced cold starts.
    """
    events: Dict[str, List[Tuple[float, int]]] = {}
    for invocation in trace:
        function = trace.functions[invocation.function_name]
        duration = (
            function.cold_time_s if use_cold_time else function.warm_time_s
        )
        per_fn = events.setdefault(invocation.function_name, [])
        per_fn.append((invocation.time_s, +1))
        per_fn.append((invocation.time_s + duration, -1))
    peaks: Dict[str, int] = {name: 0 for name in trace.functions}
    for name, fn_events in events.items():
        # Ends sort before starts at equal times: back-to-back reuse
        # of one container is not concurrency.
        fn_events.sort(key=lambda e: (e[0], e[1]))
        current = 0
        peak = 0
        for __, delta in fn_events:
            current += delta
            peak = max(peak, current)
        peaks[name] = peak
    return peaks


def max_concurrency(trace: Trace, use_cold_time: bool = False) -> int:
    """Peak overlapping invocations across *all* functions."""
    events: List[Tuple[float, int]] = []
    for invocation in trace:
        function = trace.functions[invocation.function_name]
        duration = (
            function.cold_time_s if use_cold_time else function.warm_time_s
        )
        events.append((invocation.time_s, +1))
        events.append((invocation.time_s + duration, -1))
    events.sort(key=lambda e: (e[0], e[1]))
    current = peak = 0
    for __, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def concurrency_headroom_mb(trace: Trace, use_cold_time: bool = False) -> float:
    """Memory beyond one-container-per-function that concurrency needs.

    This is the correction to add to a reuse-distance-based size: the
    hit-ratio curve models one cached copy per function, while peak
    load holds ``peak_i`` containers of function ``i`` simultaneously.
    """
    profile = concurrency_profile(trace, use_cold_time=use_cold_time)
    return sum(
        (peak - 1) * trace.functions[name].memory_mb
        for name, peak in profile.items()
        if peak > 1
    )


def working_set_mb(trace: Trace) -> float:
    """Total memory of one container per (invoked) function."""
    invoked = {inv.function_name for inv in trace}
    return sum(trace.functions[name].memory_mb for name in invoked)

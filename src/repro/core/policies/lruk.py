"""LRU-K keep-alive.

O'Neil, O'Neil & Weikum's LRU-K [SIGMOD 1993], cited in the paper's
Section 2.2 as one of the classic locality-based variants. The
eviction key of a function is its *backward K-distance*: the time of
its K-th most recent invocation. Functions never invoked K times have
an infinite backward distance and are evicted first (in LRU order of
what history they do have), which filters one-off scans out of the
cache — the original motivation for the algorithm.

Reference history is kept per *function* (all of a function's
containers serve the same reference stream); ties among a function's
containers break to the least recently used one, as everywhere else.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy
from repro.core.pool import ContainerPool
from repro.traces.model import TraceFunction

__all__ = ["LRUKPolicy"]


@register_policy("LRUK")
class LRUKPolicy(KeepAlivePolicy):
    """Evict by oldest K-th most recent reference."""

    # The backward K-distance key only moves forward: within the
    # fewer-than-K class the newest reference grows, finite K-distances
    # grow as the history window slides, and the -1e12 offset keeps the
    # class transition monotone too — the lazy victim index applies.
    monotone_priority = True

    def __init__(self, k: int = 2) -> None:
        super().__init__()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._history: Dict[str, Deque[float]] = {}

    def on_invocation(
        self,
        function: TraceFunction,
        now_s: float,
        pool: Optional[ContainerPool] = None,
    ) -> None:
        super().on_invocation(function, now_s, pool)
        history = self._history.get(function.name)
        if history is None:
            history = deque(maxlen=self.k)
            self._history[function.name] = history
        history.append(now_s)

    def priority(self, container: Container, now_s: float) -> float:
        history = self._history.get(container.function.name)
        if history is None or len(history) < self.k:
            # Fewer than K references: infinite backward K-distance.
            # Order these before everything else, by most-recent use so
            # the least recently touched one-timers go first.
            newest = history[-1] if history else container.last_used_s
            # Large negative offset keeps the < K class strictly below
            # any finite K-distance priority.
            return newest - 1e12
        return history[0]  # time of the K-th most recent reference

    def reset(self) -> None:
        super().reset()
        self._history.clear()

    def __repr__(self) -> str:
        return f"LRUKPolicy(k={self.k})"

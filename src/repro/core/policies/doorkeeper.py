"""Doorkeeper admission control for keep-alive.

Section 3.1 observes that "a function which is not popular and is
unlikely to be called again in the near future sees little benefit
from keep-alive, and wastes server memory". Admission policies from
the caching literature (TinyLFU's doorkeeper [Einziger et al., cited
in Section 2.2]) handle this on the cache side: an object must prove
itself before occupying space.

:class:`DoorkeeperPolicy` wraps any keep-alive policy and adds that
admission gate: a function's containers are only *retained* after the
function has been invoked at least ``admission_threshold`` times while
resident; before that, its container is released as soon as the
invocation completes. Eviction order, clocks, and prewarms are
delegated to the wrapped policy untouched.

The tradeoff is exactly the classical one: one-shot functions stop
polluting the cache (more room for the proven working set), at the
price of an extra compulsory cold start for every function that does
come back.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.container import Container
from repro.core.policies.base import (
    KeepAlivePolicy,
    PrewarmRequest,
    create_policy,
    register_policy,
)
from repro.core.pool import ContainerPool
from repro.traces.model import TraceFunction

__all__ = ["DoorkeeperPolicy"]


@register_policy("DOORKEEPER")
class DoorkeeperPolicy(KeepAlivePolicy):
    """Admission-gated wrapper around another keep-alive policy."""

    def __init__(
        self,
        inner: str | KeepAlivePolicy = "GD",
        admission_threshold: int = 2,
        aging_interval: int = 100_000,
    ) -> None:
        """``aging_interval``: every this-many invocations, all
        admission counts are halved (TinyLFU's aging), so ancient
        popularity cannot grant admission forever."""
        super().__init__()
        if admission_threshold < 1:
            raise ValueError(
                f"admission threshold must be >= 1, got {admission_threshold}"
            )
        if aging_interval < 1:
            raise ValueError(
                f"aging interval must be >= 1, got {aging_interval}"
            )
        if isinstance(inner, str):
            inner = create_policy(inner)
        self.inner = inner
        self.admission_threshold = admission_threshold
        self.aging_interval = aging_interval
        self.rejections = 0
        # Unlike the per-function frequency (which resets when the last
        # container dies, per Section 4.1), admission history must
        # survive eviction — that is the entire point of a doorkeeper.
        self._admission_counts: dict = {}
        self._since_aging = 0

    # ------------------------------------------------------------------
    # Delegation (frequency is tracked by both; the wrapper's own
    # counters feed the admission decision).
    # ------------------------------------------------------------------

    def on_invocation(
        self,
        function: TraceFunction,
        now_s: float,
        pool: Optional[ContainerPool] = None,
    ) -> None:
        super().on_invocation(function, now_s, pool)
        self.inner.on_invocation(function, now_s, pool)
        self._admission_counts[function.name] = (
            self._admission_counts.get(function.name, 0) + 1
        )
        self._since_aging += 1
        if self._since_aging >= self.aging_interval:
            self._since_aging = 0
            self._admission_counts = {
                name: count // 2
                for name, count in self._admission_counts.items()
                if count // 2 > 0
            }

    def on_warm_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self.inner.on_warm_start(container, now_s, pool)

    def on_cold_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self.inner.on_cold_start(container, now_s, pool)

    def on_prewarm(
        self, container: Container, request: PrewarmRequest, pool: ContainerPool
    ) -> None:
        self.inner.on_prewarm(container, request, pool)

    def on_evict(
        self,
        container: Container,
        now_s: float,
        pool: ContainerPool,
        pressure: bool,
    ) -> None:
        self.inner.on_evict(container, now_s, pool, pressure)
        super().on_evict(container, now_s, pool, pressure)

    def priority(self, container: Container, now_s: float) -> float:
        return self.inner.priority(container, now_s)

    def select_victims(
        self, pool: ContainerPool, needed_mb: float, now_s: float
    ) -> Optional[List[Container]]:
        return self.inner.select_victims(pool, needed_mb, now_s)

    def expired_containers(
        self, pool: ContainerPool, now_s: float
    ) -> List[Tuple[Container, float]]:
        return self.inner.expired_containers(pool, now_s)

    def next_expiry_s(self, pool: ContainerPool) -> float:
        return self.inner.next_expiry_s(pool)

    def due_prewarms(self, now_s: float) -> List[PrewarmRequest]:
        return self.inner.due_prewarms(now_s)

    def next_prewarm_s(self) -> float:
        return self.inner.next_prewarm_s()

    # ------------------------------------------------------------------
    # The admission gate
    # ------------------------------------------------------------------

    def should_retain(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> bool:
        count = self._admission_counts.get(container.function.name, 0)
        if count >= self.admission_threshold:
            return True
        self.rejections += 1
        return False

    def admission_count(self, function_name: str) -> int:
        return self._admission_counts.get(function_name, 0)

    def reset(self) -> None:
        super().reset()
        self.inner.reset()
        self.rejections = 0
        self._admission_counts.clear()
        self._since_aging = 0

    def __repr__(self) -> str:
        return (
            f"DoorkeeperPolicy(inner={self.inner!r}, "
            f"threshold={self.admission_threshold})"
        )

"""Landlord keep-alive (the paper's LND variant).

Section 4.2: Landlord [Young 2002] is an online file-caching algorithm
with a proven competitive ratio, understandable as a Greedy-Dual
variant. Each container holds a *credit*:

* on creation and on every hit, the credit is refreshed to the
  function's initialization cost;
* when space must be freed, a "rent" of ``delta = min(credit / size)``
  over all idle containers is charged **to every idle container**
  (scaled by its size), and containers whose credit reaches zero are
  evicted.

The subtle difference from Greedy-Dual-Size-Frequency, which the paper
calls out, is that the priority decrease depends on the state of *all*
cached containers, not just the victim.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy
from repro.core.pool import ContainerPool

__all__ = ["LandlordPolicy"]

_EPSILON = 1e-12


@register_policy("LND")
class LandlordPolicy(KeepAlivePolicy):
    """Rent-charging Landlord keep-alive."""

    def _refresh_credit(self, container: Container) -> None:
        """Set the credit to the function's initialization cost.

        A zero-init-cost function still gets a tiny positive credit so
        it participates in rent rounds instead of being evicted for
        free before cheaper-but-useful containers.
        """
        container.credit = max(container.function.init_time_s, _EPSILON)

    def on_warm_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._refresh_credit(container)

    def on_cold_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._refresh_credit(container)

    def select_victims(
        self, pool: ContainerPool, needed_mb: float, now_s: float
    ) -> Optional[List[Container]]:
        deficit = needed_mb - pool.free_mb
        if deficit <= 1e-9:
            return []
        if pool.evictable_mb() < deficit - 1e-9:
            return None
        idle = pool.idle_containers()
        victims: List[Container] = []
        remaining = list(idle)
        reclaimed = 0.0
        while reclaimed < deficit - 1e-9 and remaining:
            # Charge rent: delta is the smallest credit density, so at
            # least one container reaches zero credit each round.
            delta = min(c.credit / c.memory_mb for c in remaining)
            if delta > 0.0:
                for container in remaining:
                    container.credit = max(
                        0.0, container.credit - delta * container.memory_mb
                    )
            # Evict zero-credit containers only until space suffices;
            # the rest keep their zero credit and go first next time.
            # Ties are broken in LRU order, like the other policies.
            zeroed = sorted(
                (c for c in remaining if c.credit <= _EPSILON),
                key=lambda c: (c.last_used_s, c.container_id),
            )
            for container in zeroed:
                if reclaimed >= deficit - 1e-9:
                    break
                container.credit = 0.0
                victims.append(container)
                reclaimed += container.memory_mb
                remaining.remove(container)
            # Zero-credit survivors stay in the charging set: they make
            # the next round's delta zero, and the eviction pass above
            # then takes them first — no extra handling needed.
        return victims

    def priority(self, container: Container, now_s: float) -> float:
        # Only used for introspection; victim selection is overridden.
        return container.credit / container.memory_mb

"""Size-aware keep-alive (the paper's SIZE variant).

Section 4.2: a size-aware policy is obtained by using ``1 / size`` as
the priority, so the largest containers are evicted first. Useful when
server memory is at a premium and freeing space quickly matters more
than recency or frequency.
"""

from __future__ import annotations

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy

__all__ = ["SizePolicy"]


@register_policy("SIZE")
class SizePolicy(KeepAlivePolicy):
    """Evict the largest containers first (priority = 1/size)."""

    # 1/size is constant per container, so the lazy victim index applies.
    monotone_priority = True

    def priority(self, container: Container, now_s: float) -> float:
        return 1.0 / container.memory_mb

"""Hyperbolic caching keep-alive.

Hyperbolic caching [Blankstein, Sen & Freedman, USENIX ATC 2017] is a
modern priority-function design from the same size-aware lineage the
paper surveys: instead of an LRU list or a logical clock, each entry
is scored directly by its *hit density*

    priority = Freq / (Size × Age)

where Age is the time since the function entered the cache. The score
decays continuously (hyperbolically) with time, so recency emerges
without any clock bookkeeping, while frequency and size enter exactly
as in Greedy-Dual-Size-Frequency. Adapted to keep-alive:

* Freq is the function's invocation count since its first resident
  container was created (per-function, like GD's frequency);
* Age is measured from that first admission, not per container;
* a cost-aware variant multiplies by the initialization time, giving
  ``Freq × Cost / (Size × Age)`` — the hyperbolic analogue of GDSF.
"""

from __future__ import annotations

from typing import Dict

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy
from repro.core.pool import ContainerPool
from repro.traces.model import TraceFunction

__all__ = ["HyperbolicPolicy"]

_EPSILON_AGE_S = 1e-6


@register_policy("HYPERBOLIC")
class HyperbolicPolicy(KeepAlivePolicy):
    """Hit-density (hyperbolic) keep-alive, optionally cost-weighted."""

    def __init__(self, cost_aware: bool = True) -> None:
        super().__init__()
        self.cost_aware = cost_aware
        #: function name -> admission time of its current residency.
        self._admitted_at: Dict[str, float] = {}

    def on_cold_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._admitted_at.setdefault(container.function.name, now_s)

    def on_evict(
        self,
        container: Container,
        now_s: float,
        pool: ContainerPool,
        pressure: bool,
    ) -> None:
        if not pool.has_containers_of(container.function.name):
            self._admitted_at.pop(container.function.name, None)
        super().on_evict(container, now_s, pool, pressure)

    def priority(self, container: Container, now_s: float) -> float:
        function: TraceFunction = container.function
        admitted = self._admitted_at.get(
            function.name, container.created_at_s
        )
        age = max(now_s - admitted, _EPSILON_AGE_S)
        freq = max(self.frequency_of(function.name), 1)
        density = freq / (function.memory_mb * age)
        if self.cost_aware:
            density *= max(function.init_time_s, _EPSILON_AGE_S)
        return density

    def reset(self) -> None:
        super().reset()
        self._admitted_at.clear()

    def __repr__(self) -> str:
        return f"HyperbolicPolicy(cost_aware={self.cost_aware})"

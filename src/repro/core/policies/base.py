"""Keep-alive policy interface and registry.

A keep-alive policy answers three questions for the server:

1. **Victim selection** — when a new container must be launched and
   memory is insufficient, which idle containers should be terminated?
   (:meth:`KeepAlivePolicy.select_victims`)
2. **Time-based expiry** — which containers should be terminated now
   regardless of memory pressure? Pure caching policies are
   *resource-conserving* and never expire containers (Section 4.1);
   TTL and HIST do.
3. **Prefetching** — should any containers be created speculatively?
   Only HIST (the Azure histogram policy) prefetches.

Policies also receive lifecycle notifications (invocation arrivals,
warm starts, cold starts, evictions) through which they maintain their
internal state: frequencies, logical clocks, credits, histograms.

Policies are registered by short name (``GD``, ``TTL``, ``LRU``,
``HIST``, ``SIZE``, ``LND``, ``FREQ``) matching the labels used in the
paper's Figures 5 and 6, and instantiated through
:func:`create_policy`.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.core.container import Container
from repro.core.pool import ContainerPool
from repro.traces.model import TraceFunction

__all__ = [
    "KeepAlivePolicy",
    "PrewarmRequest",
    "register_policy",
    "create_policy",
    "available_policies",
]


class PrewarmRequest:
    """A speculative container creation scheduled by a policy."""

    __slots__ = ("function", "at_time_s", "expiry_s")

    def __init__(
        self, function: TraceFunction, at_time_s: float, expiry_s: float
    ) -> None:
        self.function = function
        self.at_time_s = at_time_s
        self.expiry_s = expiry_s

    def __repr__(self) -> str:
        return (
            f"PrewarmRequest(fn={self.function.name!r}, "
            f"at={self.at_time_s:.1f}s, expiry={self.expiry_s:.1f}s)"
        )


class KeepAlivePolicy(abc.ABC):
    """Base class for all keep-alive (function termination) policies."""

    #: Short name used in the registry and in the paper's figures.
    name: str = "base"

    #: Opt-in to the pool's lazy victim index
    #: (:meth:`ContainerPool.iter_victims`). A policy may set this to
    #: True only if its victim-selection key ``(priority, last_used,
    #: id)`` never *decreases* for a container while it remains in the
    #: pool — i.e. :meth:`priority` is independent of ``now_s`` between
    #: lifecycle events and every lifecycle event can only raise it.
    #: GD/GDS (clock + frequency, both monotone), LRU/TTL (last-used
    #: time), FREQ (frequency), SIZE/FIFO/RAND (constant per
    #: container), and LRU-K (backward K-distance) qualify; policies
    #: whose scores decay with time (HYPERBOLIC, HIST) or that demote
    #: entries (SLRU) must keep the default and get the exact
    #: sort-every-miss path.
    monotone_priority: bool = False

    def __init__(self) -> None:
        # Shared per-function frequency counters, used by the
        # Greedy-Dual family and LFU. Reset when the last container of
        # a function is evicted (Section 4.1).
        self._frequency: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle notifications from the simulator / invoker
    # ------------------------------------------------------------------

    def on_invocation(
        self,
        function: TraceFunction,
        now_s: float,
        pool: Optional[ContainerPool] = None,
    ) -> None:
        """An invocation of ``function`` arrived (before hit/miss is known).

        ``pool`` is the server's container pool when the caller has one
        (the simulator and the OpenWhisk invoker pass it; bare unit
        tests may not). Policies whose scores depend on per-function
        state changed *here* — the Greedy-Dual family's Freq term —
        need it to refresh resident containers on every arrival,
        including arrivals that later drop or shed without reaching a
        start hook.
        """
        self._frequency[function.name] = self._frequency.get(function.name, 0) + 1

    def on_warm_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        """A warm container was reused (a cache hit)."""

    def on_cold_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        """A new container was created for a cold start (a cache miss)."""

    def on_prewarm(
        self, container: Container, request: "PrewarmRequest", pool: ContainerPool
    ) -> None:
        """A container was created speculatively from a prewarm request."""

    def on_evict(
        self,
        container: Container,
        now_s: float,
        pool: ContainerPool,
        pressure: bool,
    ) -> None:
        """``container`` was terminated (already removed from ``pool``).

        ``pressure`` is True for memory-pressure evictions (the policy's
        own victim choices) and False for time-based expiries. The
        default implementation resets the function's frequency when its
        last container dies.
        """
        if not pool.has_containers_of(container.function.name):
            self._frequency.pop(container.function.name, None)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def priority(self, container: Container, now_s: float) -> float:
        """Eviction priority; lower values are evicted first.

        The default victim selection sorts idle containers by this.
        Subclasses either override this or all of
        :meth:`select_victims`.
        """
        raise NotImplementedError

    def eviction_priority(
        self, container: Container, now_s: float
    ) -> Optional[float]:
        """The priority ``container`` holds at eviction time, for the
        observability layer's ``evicted`` events.

        Returns ``None`` for policies that select victims without a
        scalar priority (e.g. list-structured policies overriding
        :meth:`select_victims`), so traces stay honest instead of
        inventing a number. Only called on the tracing path — never
        when tracing is disabled.
        """
        try:
            return float(self.priority(container, now_s))
        except NotImplementedError:
            return None

    def select_victims(
        self, pool: ContainerPool, needed_mb: float, now_s: float
    ) -> Optional[List[Container]]:
        """Choose idle containers to evict so ``needed_mb`` can fit.

        Returns the victim list (possibly empty when enough memory is
        already free), or ``None`` when the request cannot be satisfied
        even by evicting every idle container — the invocation is then
        dropped by the caller.

        Policies with :attr:`monotone_priority` use the pool's lazy
        victim index, selecting in O((victims + touched) * log n);
        everyone else sorts the idle set, which is exact for arbitrary
        (e.g. time-decaying) priorities. Both paths pick the same
        victims in the same order for a monotone policy.
        """
        deficit = needed_mb - pool.free_mb
        if deficit <= 1e-9:
            return []
        if pool.evictable_mb() < deficit - 1e-9:
            # O(1) drop decision: evicting every idle container would
            # still not make room, so don't score anything.
            return None
        if self.monotone_priority:
            return self._select_victims_indexed(pool, deficit, now_s)
        idle = pool.idle_containers()
        idle.sort(
            key=lambda c: (self.priority(c, now_s), c.last_used_s, c.container_id)
        )
        victims: List[Container] = []
        reclaimed = 0.0
        for container in idle:
            victims.append(container)
            reclaimed += container.memory_mb
            if reclaimed >= deficit - 1e-9:
                break
        return victims

    def _select_victims_indexed(
        self, pool: ContainerPool, deficit_mb: float, now_s: float
    ) -> Optional[List[Container]]:
        """Take lowest-key containers from the pool's lazy index until
        ``deficit_mb`` is covered; ``None`` if the whole idle set is
        not enough (the caller then drops the request).

        Uses the consuming :meth:`ContainerPool.take_victims` variant:
        selected entries leave the index with the selection instead of
        being restored and lazily re-discarded after the eviction, and
        a caller that walks away without evicting gets them back on
        the next selection.
        """

        def key_of(container: Container) -> Tuple[float, float, int]:
            return (
                self.priority(container, now_s),
                container.last_used_s,
                container.container_id,
            )

        return pool.take_victims(key_of, deficit_mb)

    def select_victims_tenant(
        self,
        pool: ContainerPool,
        needed_mb: float,
        now_s: float,
        tenant_id: int,
    ) -> Optional[List[Container]]:
        """Tenant-aware victim selection (docs/multi-tenancy.md).

        The generalization of :meth:`select_victims` the simulator
        calls when the pool is not in ``shared`` mode — for shared
        pools it delegates to the plain path, so tenant-less runs are
        untouched.

        * ``partitioned`` — the deficit is measured against the
          requesting tenant's slice and only that tenant's idle
          containers are candidates: one tenant's miss can never evict
          another tenant's container.
        * ``quota`` — the deficit is global, but candidates are ranked
          ``(over_quota_rank, priority, last_used, id)``: every idle
          container of a currently over-quota tenant is offered before
          any within-quota container, regardless of policy priority.
          Additionally, a miss whose admission would push the
          requesting tenant *over* its quota may only evict that
          tenant's own containers or other over-quota tenants' — quota
          is soft (free memory and over-quota capacity are fair game)
          but never a license to displace within-quota tenants.

        Over-quota status is frozen at selection start (evicting a
        victim mid-selection may bring its tenant back under quota;
        re-ranking mid-scan would make the choice order-dependent).
        Because it is frozen, a monotone policy's quota selection runs
        through the pool's lazy victim index: one walk yields ascending
        ``(priority, last_used, id)`` and the over-quota rank merely
        splits that stream in two, so no sort of the idle set is ever
        materialized (the ROADMAP's thousands-of-tenants scaling
        bottleneck). Non-monotone policies and the partitioned mode
        (whose candidate filter depends on the requester) keep the
        exact sort-every-miss path.
        """
        mode = pool.tenant_mode
        if mode == "shared":
            return self.select_victims(pool, needed_mb, now_s)
        if mode == "partitioned":
            deficit = needed_mb - pool.tenant_free_mb(tenant_id)
            if deficit <= 1e-9:
                return []
            candidates = [
                c
                for c in pool.idle_containers()
                if c.function.tenant_id == tenant_id
            ]
        else:  # quota
            deficit = needed_mb - pool.free_mb
            if deficit <= 1e-9:
                return []
            over = pool.over_quota_tenants()
            restricted = pool.quota_exceeded_by(tenant_id, needed_mb)
            if not restricted and pool.evictable_mb() < deficit - 1e-9:
                # Fast path (unrestricted candidate set only): total
                # idle memory cannot cover the deficit.
                return None
            if self.monotone_priority:
                return self._select_victims_quota_indexed(
                    pool, deficit, now_s, tenant_id, over, restricted
                )
            candidates = pool.idle_containers()
            if restricted:
                # The requester would land over quota: it may only feed
                # on itself and on other over-quota tenants.
                candidates = [
                    c
                    for c in candidates
                    if c.function.tenant_id == tenant_id
                    or c.function.tenant_id in over
                ]
            candidates.sort(
                key=lambda c: (
                    0 if c.function.tenant_id in over else 1,
                    self.priority(c, now_s),
                    c.last_used_s,
                    c.container_id,
                )
            )
            return self._accumulate_victims(candidates, deficit)
        candidates.sort(
            key=lambda c: (
                self.priority(c, now_s),
                c.last_used_s,
                c.container_id,
            )
        )
        return self._accumulate_victims(candidates, deficit)

    def _select_victims_quota_indexed(
        self,
        pool: ContainerPool,
        deficit_mb: float,
        now_s: float,
        tenant_id: int,
        over: frozenset,
        restricted: bool,
    ) -> Optional[List[Container]]:
        """Quota-mode selection through the pool's lazy victim index.

        One walk of :meth:`ContainerPool.iter_victims` splits the
        stream by frozen over-quota rank: within each rank the index
        already yields ascending ``(priority, last_used, id)``, so
        ``preferred + rest`` is byte-identical to sorting every idle
        container by ``(over_quota_rank, priority, last_used, id)`` —
        without materializing or sorting the idle set. The walk stops
        as soon as over-quota victims alone cover the deficit; returns
        ``None`` when even the full candidate set cannot (the caller
        then drops the request).
        """

        def key_of(container: Container) -> Tuple[float, float, int]:
            return (
                self.priority(container, now_s),
                container.last_used_s,
                container.container_id,
            )

        preferred: List[Container] = []
        rest: List[Container] = []
        reclaimed = 0.0
        for container in pool.iter_victims(key_of):
            tid = container.function.tenant_id
            if tid in over:
                preferred.append(container)
                reclaimed += container.memory_mb
                if reclaimed >= deficit_mb - 1e-9:
                    return preferred
            elif not restricted or tid == tenant_id:
                rest.append(container)
        victims = preferred
        for container in rest:
            victims.append(container)
            reclaimed += container.memory_mb
            if reclaimed >= deficit_mb - 1e-9:
                return victims
        return None

    @staticmethod
    def _accumulate_victims(
        candidates: List[Container], deficit_mb: float
    ) -> Optional[List[Container]]:
        """Prefix of ``candidates`` covering ``deficit_mb``, or
        ``None`` when even the whole list is not enough."""
        victims: List[Container] = []
        reclaimed = 0.0
        for container in candidates:
            victims.append(container)
            reclaimed += container.memory_mb
            if reclaimed >= deficit_mb - 1e-9:
                return victims
        return None

    def expired_containers(
        self, pool: ContainerPool, now_s: float
    ) -> List[Tuple[Container, float]]:
        """Containers whose time-based expiry has passed.

        Returns ``(container, expiry_time)`` pairs with
        ``expiry_time <= now_s``. Resource-conserving policies return
        nothing; TTL and HIST override this.
        """
        return []

    def next_expiry_s(self, pool: ContainerPool) -> float:
        """Earliest time :meth:`expired_containers` could be non-empty.

        The simulator's batched dispatch skips the whole expiry phase
        while ``now < next_expiry_s(pool)``. The conservative default
        (``-inf``) never skips, so a policy overriding
        :meth:`expired_containers` with its own bookkeeping stays
        correct without opting in; TTL and HIST answer from the pool's
        incremental expiry index.
        """
        return float("-inf")

    def due_prewarms(self, now_s: float) -> List[PrewarmRequest]:
        """Prewarm requests scheduled at or before ``now_s``.

        Returned requests are consumed: the policy must not return the
        same request twice. Only HIST prefetches.
        """
        return []

    def next_prewarm_s(self) -> float:
        """Earliest time :meth:`due_prewarms` could be non-empty.

        Same contract as :meth:`next_expiry_s`: the simulator skips the
        prewarm phase while ``now < next_prewarm_s()``, and the
        ``-inf`` default keeps custom prefetching policies correct
        without an override. Policies that never prefetch are already
        skipped wholesale (the simulator detects the un-overridden
        :meth:`due_prewarms` once at construction).
        """
        return float("-inf")

    def should_retain(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> bool:
        """Admission decision: keep ``container`` warm after its
        invocation completes?

        Keep-alive policies normally retain everything and decide only
        *eviction* order; admission-controlled variants (doorkeepers)
        can refuse to cache unpopular functions at all, releasing the
        container as soon as it finishes.
        """
        return True

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def frequency_of(self, function_name: str) -> int:
        return self._frequency.get(function_name, 0)

    def reset(self) -> None:
        """Clear all internal state (fresh simulation run)."""
        self._frequency.clear()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[..., KeepAlivePolicy]] = {}


def register_policy(name: str):
    """Class decorator registering a policy under ``name``."""

    def decorator(cls: Type[KeepAlivePolicy]) -> Type[KeepAlivePolicy]:
        key = name.upper()
        if key in _REGISTRY:
            raise ValueError(f"policy {key!r} is already registered")
        _REGISTRY[key] = cls
        cls.name = key
        return cls

    return decorator


def create_policy(name: str, **kwargs) -> KeepAlivePolicy:
    """Instantiate a registered policy by its short name.

    >>> policy = create_policy("LRU")
    >>> policy.name
    'LRU'
    """
    key = name.upper()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_policies() -> List[str]:
    """Names of all registered policies, sorted."""
    return sorted(_REGISTRY)

"""Clairvoyant (Belady-style) keep-alive — the offline upper bound.

Belady's MIN evicts the entry whose next use lies furthest in the
future; it is optimal for unit-size, unit-cost caches and the standard
upper bound any online policy is judged against. The paper frames
Landlord's competitive ratio against exactly such an "optimal offline
algorithm that knows future requests" (Section 4.2).

This policy is given the trace up front and evicts the idle container
whose function's **next invocation is furthest away** (infinitely far
for functions never invoked again). With variable sizes and costs,
furthest-next-use is no longer provably optimal — the generalized
problem is NP-hard — but it remains the customary clairvoyant
reference, and a cost/size-aware variant
(:class:`CostAwareOraclePolicy`) divides the time-to-next-use decision
by the Greedy-Dual value density so expensive-to-restart functions are
held longer.

Only meaningful in trace-driven simulation; a live system cannot run
it (which is the point).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy
from repro.traces.model import Trace, TraceFunction

__all__ = ["OraclePolicy", "CostAwareOraclePolicy"]


class _FutureIndex:
    """Per-function sorted arrival times, for next-use queries."""

    def __init__(self, trace: Trace) -> None:
        self._arrivals: Dict[str, List[float]] = {}
        for invocation in trace:
            self._arrivals.setdefault(invocation.function_name, []).append(
                invocation.time_s
            )
        for times in self._arrivals.values():
            times.sort()

    def next_use_after(self, function_name: str, now_s: float) -> float:
        """First arrival strictly after ``now_s``; inf if none."""
        times = self._arrivals.get(function_name)
        if not times:
            return math.inf
        index = bisect.bisect_right(times, now_s)
        if index >= len(times):
            return math.inf
        return times[index]


@register_policy("ORACLE")
class OraclePolicy(KeepAlivePolicy):
    """Furthest-next-use eviction with full knowledge of the trace."""

    def __init__(self, trace: Trace) -> None:
        super().__init__()
        self._future = _FutureIndex(trace)

    def priority(self, container: Container, now_s: float) -> float:
        next_use = self._future.next_use_after(container.function.name, now_s)
        if math.isinf(next_use):
            return -math.inf  # never used again: evict first
        # Lower priority evicts first: sooner next use = higher priority.
        return -next_use


@register_policy("ORACLE-CS")
class CostAwareOraclePolicy(OraclePolicy):
    """Clairvoyant eviction weighted by the Greedy-Dual value density.

    The victim score is ``time-to-next-use * size / cost``: evict what
    is not needed for a long time, is large, and is cheap to restart.
    Functions never used again always go first.
    """

    def priority(self, container: Container, now_s: float) -> float:
        function: TraceFunction = container.function
        next_use = self._future.next_use_after(function.name, now_s)
        if math.isinf(next_use):
            return -math.inf
        wait = max(next_use - now_s, 0.0)
        cost = max(function.init_time_s, 1e-9)
        return -(wait * function.memory_mb / cost)

"""LRU keep-alive.

Section 4.2: using only the access clock as the priority in the
Greedy-Dual framework yields LRU. We use the (strictly increasing)
wall-clock time of last use directly, which induces the same eviction
order as a logical access clock while avoiding ties.

Resource-conserving: containers are evicted only under memory
pressure, in least-recently-used order.
"""

from __future__ import annotations

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy
from repro.core.pool import ContainerPool

__all__ = ["LRUPolicy"]


@register_policy("LRU")
class LRUPolicy(KeepAlivePolicy):
    """Least-recently-used keep-alive."""

    # last_used_s never decreases, so the lazy victim index applies.
    monotone_priority = True

    def priority(self, container: Container, now_s: float) -> float:
        return container.last_used_s

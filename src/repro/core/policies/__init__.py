"""Keep-alive policies (Section 4 of the paper).

Importing this package registers every built-in policy under the short
names used in the paper's figures: ``GD``, ``TTL``, ``LRU``, ``HIST``,
``SIZE``, ``LND``, and ``FREQ``.
"""

from repro.core.policies.base import (
    KeepAlivePolicy,
    PrewarmRequest,
    available_policies,
    create_policy,
    register_policy,
)
from repro.core.policies.arc import ARCPolicy
from repro.core.policies.baselines import FIFOPolicy, RandomPolicy
from repro.core.policies.doorkeeper import DoorkeeperPolicy
from repro.core.policies.gds import GreedyDualSizePolicy
from repro.core.policies.greedy_dual import GreedyDualPolicy
from repro.core.policies.histogram import FunctionHistogram, HistogramPolicy
from repro.core.policies.hyperbolic import HyperbolicPolicy
from repro.core.policies.landlord import LandlordPolicy
from repro.core.policies.lfu import LFUPolicy
from repro.core.policies.lru import LRUPolicy
from repro.core.policies.lruk import LRUKPolicy
from repro.core.policies.oracle import CostAwareOraclePolicy, OraclePolicy
from repro.core.policies.size import SizePolicy
from repro.core.policies.slru import SegmentedLRUPolicy
from repro.core.policies.ttl import OPENWHISK_DEFAULT_TTL_S, TTLPolicy

#: The policy lineup of Figures 5 and 6, in the paper's legend order.
PAPER_POLICIES = ("GD", "TTL", "LRU", "HIST", "SIZE", "LND", "FREQ")

#: Additional classic policies from the caching literature the paper
#: surveys (Section 2.2), adapted to variable-size keep-alive.
EXTENDED_POLICIES = ("GDS", "ARC", "SLRU", "LRUK", "HYPERBOLIC", "FIFO", "RAND")

#: Policies needing construction arguments (a trace for the oracles, a
#: wrapped policy for the doorkeeper); excluded from name-only sweeps.
PARAMETRIC_POLICIES = ("ORACLE", "ORACLE-CS", "DOORKEEPER")

__all__ = [
    "KeepAlivePolicy",
    "PrewarmRequest",
    "available_policies",
    "create_policy",
    "register_policy",
    "ARCPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "DoorkeeperPolicy",
    "OraclePolicy",
    "CostAwareOraclePolicy",
    "PARAMETRIC_POLICIES",
    "GreedyDualSizePolicy",
    "GreedyDualPolicy",
    "HistogramPolicy",
    "HyperbolicPolicy",
    "FunctionHistogram",
    "LandlordPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "LRUKPolicy",
    "SizePolicy",
    "SegmentedLRUPolicy",
    "TTLPolicy",
    "OPENWHISK_DEFAULT_TTL_S",
    "PAPER_POLICIES",
    "EXTENDED_POLICIES",
]

"""Fixed time-to-live keep-alive (the OpenWhisk default baseline).

OpenWhisk keeps every function container alive for a constant 10
minutes after its last use (Section 1). This policy is **not**
resource-conserving: a container is terminated when its TTL lapses
even if memory is plentiful. Under memory pressure, victims are chosen
in LRU order (Section 7.1: "When the server is full, this TTL policy
evicts containers in an LRU order").
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy
from repro.core.pool import ContainerPool

__all__ = ["TTLPolicy", "OPENWHISK_DEFAULT_TTL_S"]

#: OpenWhisk's default container time-to-live: 10 minutes.
OPENWHISK_DEFAULT_TTL_S = 600.0


@register_policy("TTL")
class TTLPolicy(KeepAlivePolicy):
    """Constant TTL expiry with LRU eviction under pressure."""

    # Pressure evictions are LRU-ordered (last_used_s, monotone), so
    # the lazy victim index applies; TTL expiry is a separate path.
    monotone_priority = True

    def __init__(self, ttl_s: float = OPENWHISK_DEFAULT_TTL_S) -> None:
        super().__init__()
        if ttl_s <= 0:
            raise ValueError(f"ttl must be positive, got {ttl_s}")
        self.ttl_s = ttl_s

    def expired_containers(
        self, pool: ContainerPool, now_s: float
    ) -> List[Tuple[Container, float]]:
        expired = []
        for container in pool.idle_containers():
            expiry = container.last_used_s + self.ttl_s
            if expiry <= now_s:
                expired.append((container, expiry))
        expired.sort(key=lambda pair: pair[1])
        return expired

    def priority(self, container: Container, now_s: float) -> float:
        # LRU order under memory pressure.
        return container.last_used_s

    def __repr__(self) -> str:
        return f"TTLPolicy(ttl_s={self.ttl_s})"

"""Fixed time-to-live keep-alive (the OpenWhisk default baseline).

OpenWhisk keeps every function container alive for a constant 10
minutes after its last use (Section 1). This policy is **not**
resource-conserving: a container is terminated when its TTL lapses
even if memory is plentiful. Under memory pressure, victims are chosen
in LRU order (Section 7.1: "When the server is full, this TTL policy
evicts containers in an LRU order").
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy
from repro.core.pool import ContainerPool

__all__ = ["TTLPolicy", "OPENWHISK_DEFAULT_TTL_S"]

#: OpenWhisk's default container time-to-live: 10 minutes.
OPENWHISK_DEFAULT_TTL_S = 600.0


@register_policy("TTL")
class TTLPolicy(KeepAlivePolicy):
    """Constant TTL expiry with LRU eviction under pressure."""

    # Pressure evictions are LRU-ordered (last_used_s, monotone), so
    # the lazy victim index applies; TTL expiry is a separate path.
    monotone_priority = True

    def __init__(self, ttl_s: float = OPENWHISK_DEFAULT_TTL_S) -> None:
        super().__init__()
        if ttl_s <= 0:
            raise ValueError(f"ttl must be positive, got {ttl_s}")
        self.ttl_s = ttl_s

    # ------------------------------------------------------------------
    # Expiry via the pool's incremental index
    # ------------------------------------------------------------------
    #
    # A container's TTL clock restarts at its last use, and
    # ``last_used_s`` lands on ``busy_until_s`` when the invocation
    # finishes — which is already known when the start hooks fire (the
    # invoker starts the invocation before notifying the policy). So
    # each start schedules the post-completion deadline directly and
    # ``expired_containers`` is a heap peek instead of a pool rescan.
    # The index defers busy containers internally, preserving the old
    # scan's semantics of only expiring idle ones.

    def _schedule(self, container: Container, pool: ContainerPool) -> None:
        pool.schedule_expiry(container, container.busy_until_s + self.ttl_s)

    def on_warm_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._schedule(container, pool)

    def on_cold_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._schedule(container, pool)

    def _fallback_deadline(self, container: Container) -> float:
        """Deadline for containers added without lifecycle hooks
        (manually assembled pools): TTL after the last use."""
        return container.last_used_s + self.ttl_s

    def expired_containers(
        self, pool: ContainerPool, now_s: float
    ) -> List[Tuple[Container, float]]:
        return pool.pop_expired(now_s, self._fallback_deadline)

    def next_expiry_s(self, pool: ContainerPool) -> float:
        # Every deadline lives in the pool's expiry index (the peek
        # reports -inf while unscheduled containers exist, so the
        # fallback-scan case never skips the phase).
        return pool.next_expiry_s()

    def priority(self, container: Container, now_s: float) -> float:
        # LRU order under memory pressure.
        return container.last_used_s

    def __repr__(self) -> str:
        return f"TTLPolicy(ttl_s={self.ttl_s})"

"""Trivial eviction baselines: FIFO and RANDOM.

Neither appears in the paper's evaluation, but both are the standard
sanity floors any caching study is read against: FIFO ignores reuse
entirely (eviction order is creation order), and RANDOM is the
zero-information policy. Both are resource-conserving like the other
caching policies — they evict only under memory pressure.
"""

from __future__ import annotations

import random

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy

__all__ = ["FIFOPolicy", "RandomPolicy"]


@register_policy("FIFO")
class FIFOPolicy(KeepAlivePolicy):
    """Evict the oldest-created idle container first."""

    # Creation time is constant per container, so the lazy victim
    # index applies.
    monotone_priority = True

    def priority(self, container: Container, now_s: float) -> float:
        return container.created_at_s


@register_policy("RAND")
class RandomPolicy(KeepAlivePolicy):
    """Evict a uniformly random idle container.

    Deterministic for a given seed: the priority of a container is a
    stable pseudo-random number derived from its id, so repeated runs
    of the same trace produce identical evictions.
    """

    # The pseudo-random priority is constant per container, so the
    # lazy victim index applies.
    monotone_priority = True

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = seed

    def priority(self, container: Container, now_s: float) -> float:
        return random.Random(
            (self._seed << 32) ^ container.container_id
        ).random()

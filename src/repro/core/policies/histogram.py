"""Histogram keep-alive (the paper's HIST baseline).

A best-effort reproduction of the hybrid histogram policy of Shahrad
et al. [Serverless in the Wild, ATC 2020], as described in Section 7.1
of the FaasCache paper — effectively "TTL + prefetching":

* Each function's inter-arrival times (IATs) are recorded in
  minute-granularity buckets, tracking up to four hours between
  executions.
* The coefficient of variation (CoV) of the IATs is maintained with
  Welford's online algorithm. A function with CoV <= 2 is
  *predictable*: its containers use a customized pre-warm time (the
  head, 5th-percentile IAT) and keep-alive time (the tail,
  99th-percentile IAT), with safety margins (85% of the head, 115% of
  the tail).
* Unpredictable functions fall back to a generic TTL of two hours.
* When an invocation is anticipated (the head window opens), the
  function is brought into memory and kept there until its TTL
  expires.

Like the paper, we omit the ARIMA branch for IATs beyond the four-hour
window (it covered ~0.56% of invocations); such IATs simply mark the
function as out-of-window and push it toward the unpredictable class.

Under memory pressure (which Shahrad et al. do not model), victims are
the containers whose next invocation is predicted to be furthest in
the future.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import Welford
from repro.core.container import Container
from repro.core.policies.base import (
    KeepAlivePolicy,
    PrewarmRequest,
    register_policy,
)
from repro.core.pool import ContainerPool
from repro.traces.model import TraceFunction

__all__ = ["HistogramPolicy", "FunctionHistogram"]

_MINUTE_S = 60.0


@dataclass
class FunctionHistogram:
    """Per-function IAT histogram in minute buckets plus online CoV.

    Percentile queries are answered from a Fenwick (binary-indexed)
    tree maintained alongside the plain ``buckets`` list: the policy
    asks for the head and tail on *every* container start, so the old
    full-bucket scans (O(window) each, three per plan) dominated the
    HIST replay hot path. The tree answers a nearest-rank query in
    O(log window) and costs O(log window) per recorded arrival.
    """

    window_minutes: int
    buckets: List[int] = field(default_factory=list)
    welford: Welford = field(default_factory=Welford)
    out_of_window: int = 0
    last_arrival_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.buckets:
            self.buckets = [0] * self.window_minutes
        # Fenwick tree over the buckets (1-based), plus the largest
        # power of two <= window for the descending prefix search.
        self._fenwick = [0] * (self.window_minutes + 1)
        msb = 1
        while msb * 2 <= self.window_minutes:
            msb *= 2
        self._fenwick_msb = msb
        self._total = 0
        for bucket, count in enumerate(self.buckets):
            if count:
                self._fenwick_add(bucket, count)

    def _fenwick_add(self, bucket: int, delta: int) -> None:
        self._total += delta
        tree = self._fenwick
        i = bucket + 1
        n = self.window_minutes
        while i <= n:
            tree[i] += delta
            i += i & -i

    def _nearest_rank_bucket(self, target: int) -> int:
        """Smallest 0-based bucket whose cumulative count reaches
        ``target`` (callers guarantee ``1 <= target <= total``)."""
        tree = self._fenwick
        n = self.window_minutes
        pos = 0
        remaining = target
        bit = self._fenwick_msb
        while bit:
            nxt = pos + bit
            if nxt <= n and tree[nxt] < remaining:
                remaining -= tree[nxt]
                pos = nxt
            bit >>= 1
        return pos

    def record_arrival(self, now_s: float) -> None:
        if self.last_arrival_s is not None:
            iat_minutes = (now_s - self.last_arrival_s) / _MINUTE_S
            bucket = int(iat_minutes)
            if bucket < self.window_minutes:
                self.buckets[bucket] += 1
                self._fenwick_add(bucket, 1)
                self.welford.update(iat_minutes)
            else:
                self.out_of_window += 1
        self.last_arrival_s = now_s

    @property
    def in_window_count(self) -> int:
        return self.welford.count

    def is_predictable(self, cov_threshold: float, min_samples: int) -> bool:
        """CoV <= threshold, enough samples, mostly in-window IATs."""
        if self.in_window_count < min_samples:
            return False
        total = self.in_window_count + self.out_of_window
        if self.out_of_window > total / 2:
            return False
        return self.welford.coefficient_of_variation <= cov_threshold

    def percentile_minutes(self, q: float) -> float:
        """Nearest-rank percentile over the minute-bucket histogram.

        Returns the *upper edge* of the bucket so the returned window
        covers every IAT that fell in it.
        """
        total = self._total
        if total == 0:
            return 0.0
        target = max(1, int(round(q / 100.0 * total)))
        if target > total:
            return float(self.window_minutes)
        return float(self._nearest_rank_bucket(target) + 1)

    def head_s(self) -> float:
        """Pre-warm window: 5th-percentile IAT, lower bucket edge."""
        total = self._total
        if total == 0:
            return 0.0
        target = max(1, int(round(0.05 * total)))
        if target > total:
            return 0.0
        return float(self._nearest_rank_bucket(target)) * _MINUTE_S

    def tail_s(self) -> float:
        """Keep-alive window: 99th-percentile IAT, upper bucket edge."""
        return self.percentile_minutes(99.0) * _MINUTE_S

    def mean_iat_s(self) -> Optional[float]:
        if self.welford.count == 0:
            return None
        return self.welford.mean * _MINUTE_S


@register_policy("HIST")
class HistogramPolicy(KeepAlivePolicy):
    """Hybrid histogram TTL + prefetch keep-alive."""

    def __init__(
        self,
        window_minutes: int = 240,
        cov_threshold: float = 2.0,
        generic_ttl_s: float = 7200.0,
        head_margin: float = 0.85,
        tail_margin: float = 1.15,
        min_samples: int = 2,
        release_threshold_s: float = 60.0,
    ) -> None:
        super().__init__()
        self.window_minutes = window_minutes
        self.cov_threshold = cov_threshold
        self.generic_ttl_s = generic_ttl_s
        self.head_margin = head_margin
        self.tail_margin = tail_margin
        self.min_samples = min_samples
        # A head shorter than this keeps the container alive instead of
        # releasing it and pre-warming later.
        self.release_threshold_s = release_threshold_s
        self._histograms: Dict[str, FunctionHistogram] = {}
        # Pending prewarms: heap of (time, seq, request); one per
        # function at a time, replaced on each new invocation.
        self._prewarm_heap: List[Tuple[float, int, PrewarmRequest]] = []
        self._pending_prewarm: Dict[str, PrewarmRequest] = {}
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Histogram maintenance
    # ------------------------------------------------------------------

    def histogram_of(self, function_name: str) -> FunctionHistogram:
        hist = self._histograms.get(function_name)
        if hist is None:
            hist = FunctionHistogram(window_minutes=self.window_minutes)
            self._histograms[function_name] = hist
        return hist

    def on_invocation(
        self,
        function: TraceFunction,
        now_s: float,
        pool: Optional[ContainerPool] = None,
    ) -> None:
        super().on_invocation(function, now_s, pool)
        self.histogram_of(function.name).record_arrival(now_s)
        # The anticipated invocation arrived; cancel any pending
        # prewarm for this function (it will be rescheduled below).
        pending = self._pending_prewarm.pop(function.name, None)
        if pending is not None:
            pending.at_time_s = -1.0  # tombstone, skipped when popped

    # ------------------------------------------------------------------
    # Expiry / prewarm scheduling
    # ------------------------------------------------------------------

    def _plan_for(self, function: TraceFunction, now_s: float) -> Tuple[float, Optional[PrewarmRequest]]:
        """Compute (container expiry, optional prewarm) after an invocation."""
        hist = self.histogram_of(function.name)
        if not hist.is_predictable(self.cov_threshold, self.min_samples):
            return now_s + self.generic_ttl_s, None
        head = hist.head_s()
        tail = max(hist.tail_s(), head + _MINUTE_S)
        if head > self.release_threshold_s:
            # Release soon, pre-warm just before the predicted arrival.
            expiry = now_s + self.release_threshold_s
            prewarm_at = now_s + self.head_margin * head
            prewarm_expiry = now_s + self.tail_margin * tail
            request = PrewarmRequest(function, prewarm_at, prewarm_expiry)
            return expiry, request
        # Frequent function: keep alive through the whole window.
        return now_s + self.tail_margin * tail, None

    def _apply_plan(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        # Deadlines live in the pool's incremental expiry index rather
        # than a policy-side dict: plans are re-issued on every start
        # (and can move a deadline *earlier*), which the index handles
        # by superseding the old entry.
        expiry, request = self._plan_for(container.function, now_s)
        pool.schedule_expiry(container, expiry)
        if request is not None:
            self._pending_prewarm[container.function.name] = request
            heapq.heappush(
                self._prewarm_heap, (request.at_time_s, next(self._seq), request)
            )

    def on_warm_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._apply_plan(container, now_s, pool)

    def on_cold_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._apply_plan(container, now_s, pool)

    def on_prewarm(
        self, container: Container, request: PrewarmRequest, pool: ContainerPool
    ) -> None:
        pool.schedule_expiry(container, request.expiry_s)

    def _fallback_deadline(self, container: Container) -> float:
        """Deadline for containers no hook ever planned (manually
        assembled pools): the generic TTL after the last use."""
        return container.last_used_s + self.generic_ttl_s

    def expired_containers(
        self, pool: ContainerPool, now_s: float
    ) -> List[Tuple[Container, float]]:
        return pool.pop_expired(now_s, self._fallback_deadline)

    def next_expiry_s(self, pool: ContainerPool) -> float:
        # Plans live in the pool's expiry index; its peek honours the
        # unscheduled-container fallback by reporting -inf.
        return pool.next_expiry_s()

    def due_prewarms(self, now_s: float) -> List[PrewarmRequest]:
        due: List[PrewarmRequest] = []
        while self._prewarm_heap and self._prewarm_heap[0][0] <= now_s:
            __, __, request = heapq.heappop(self._prewarm_heap)
            if request.at_time_s < 0:
                continue  # cancelled by a real arrival
            current = self._pending_prewarm.get(request.function.name)
            if current is request:
                del self._pending_prewarm[request.function.name]
                due.append(request)
        return due

    def next_prewarm_s(self) -> float:
        """Earliest live prewarm, purging dead heap tops (cancelled
        tombstones and superseded requests) so a stale entry cannot
        hold the simulator's prewarm phase open forever."""
        heap = self._prewarm_heap
        while heap:
            at_s, __, request = heap[0]
            if (
                request.at_time_s < 0
                or self._pending_prewarm.get(request.function.name)
                is not request
            ):
                heapq.heappop(heap)
                continue
            return at_s
        return float("inf")

    # ------------------------------------------------------------------
    # Memory-pressure eviction
    # ------------------------------------------------------------------

    def priority(self, container: Container, now_s: float) -> float:
        """Evict the container predicted to be needed furthest away."""
        hist = self._histograms.get(container.function.name)
        if hist is not None and hist.is_predictable(
            self.cov_threshold, self.min_samples
        ):
            predicted_next = container.last_used_s + hist.head_s()
        elif hist is not None and hist.mean_iat_s() is not None:
            predicted_next = container.last_used_s + hist.mean_iat_s()
        else:
            predicted_next = container.last_used_s + self.generic_ttl_s
        return -(predicted_next - now_s)

    def reset(self) -> None:
        super().reset()
        self._histograms.clear()
        self._prewarm_heap.clear()
        self._pending_prewarm.clear()

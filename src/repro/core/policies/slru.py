"""Segmented LRU keep-alive.

Segmented LRU [Karedla et al.; cited via the paper's Section 2.2] adds
scan resistance to LRU with two segments:

* **probationary** — where containers land on their first (cold)
  admission;
* **protected** — where a container is promoted on a warm hit,
  capped at a fraction of the cache; promoting past the cap demotes
  the protected segment's LRU tail back to probationary.

Victims always come from the probationary segment first (its LRU
tail), so one-shot functions cannot flush the established working set.
Segment budgets are in megabytes, matching variable-size containers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy
from repro.core.pool import ContainerPool

__all__ = ["SegmentedLRUPolicy"]


@register_policy("SLRU")
class SegmentedLRUPolicy(KeepAlivePolicy):
    """Two-segment LRU with a protected-fraction cap."""

    def __init__(self, protected_fraction: float = 0.8) -> None:
        super().__init__()
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError(
                f"protected fraction must be in (0, 1), got {protected_fraction}"
            )
        self.protected_fraction = protected_fraction
        #: container id -> True if in the protected segment.
        self._protected: Dict[int, bool] = {}

    # ------------------------------------------------------------------

    def _protected_used_mb(self, pool: ContainerPool) -> float:
        return sum(
            c.memory_mb
            for c in pool.all_containers()
            if self._protected.get(c.container_id, False)
        )

    def _demote_overflow(self, pool: ContainerPool, now_s: float) -> None:
        """Push the protected LRU tail back to probationary while the
        segment exceeds its budget."""
        budget = self.protected_fraction * pool.capacity_mb
        while self._protected_used_mb(pool) > budget:
            protected = [
                c
                for c in pool.all_containers()
                if self._protected.get(c.container_id, False)
            ]
            if not protected:
                break
            tail = min(
                protected, key=lambda c: (c.last_used_s, c.container_id)
            )
            self._protected[tail.container_id] = False

    def on_cold_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._protected[container.container_id] = False

    def on_warm_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._protected[container.container_id] = True
        self._demote_overflow(pool, now_s)

    def on_evict(
        self,
        container: Container,
        now_s: float,
        pool: ContainerPool,
        pressure: bool,
    ) -> None:
        self._protected.pop(container.container_id, None)
        super().on_evict(container, now_s, pool, pressure)

    def is_protected(self, container: Container) -> bool:
        return self._protected.get(container.container_id, False)

    def priority(self, container: Container, now_s: float) -> float:
        # Probationary containers sort strictly below protected ones;
        # LRU order within each segment. The offset dominates any
        # realistic timestamp.
        segment_offset = 1e12 if self.is_protected(container) else 0.0
        return segment_offset + container.last_used_s

    def reset(self) -> None:
        super().reset()
        self._protected.clear()

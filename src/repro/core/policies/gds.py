"""Greedy-Dual-Size keep-alive (GDS, without the frequency term).

The original Greedy-Dual-Size algorithm of Cao and Irani [USENIX ITS
1997], which the paper's Section 2.2 cites as the basis of the GDSF
family: ``Priority = Clock + Cost / Size``. Compared to the paper's
GD (GDSF) policy it ignores how often a function is invoked, so a
rarely-used but expensive-to-initialize function ranks as high as a
hot one of the same size — the gap that motivated adding frequency.
"""

from __future__ import annotations

from repro.core.policies.base import register_policy
from repro.core.policies.greedy_dual import GreedyDualPolicy
from repro.traces.model import TraceFunction

__all__ = ["GreedyDualSizePolicy"]


@register_policy("GDS")
class GreedyDualSizePolicy(GreedyDualPolicy):
    """Greedy-Dual-Size: Clock + Cost/Size, frequency-blind."""

    def _value_term(self, function: TraceFunction) -> float:
        return function.init_time_s / function.memory_mb

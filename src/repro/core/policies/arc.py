"""ARC (Adaptive Replacement Cache) keep-alive.

Megiddo & Modha's ARC [FAST 2003], cited in the paper's Section 2.2,
balances recency and frequency with four lists — T1 (seen once), T2
(seen twice or more), and their ghost shadows B1/B2 of recently
evicted entries — plus an adaptive target ``p`` for T1's share of the
cache, nudged whenever a ghost is re-referenced.

Adaptation to FaaS keep-alive (the cache holds variable-size
*containers*, grouped by *function*):

* ARC membership is tracked per **function** — all containers of a
  function share one reference stream, exactly as the Greedy-Dual
  policy shares frequency per function.
* List budgets and the adaptation target ``p`` are in **megabytes**,
  and the ghost-hit nudge is scaled by the re-referenced function's
  size (a returning 1 GB function says more about the needed balance
  than a 64 MB one).
* REPLACE evicts the LRU idle container of the selected side's LRU
  function; a function moves to its ghost list only when its *last*
  container dies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy
from repro.core.pool import ContainerPool
from repro.traces.model import TraceFunction

__all__ = ["ARCPolicy"]


@register_policy("ARC")
class ARCPolicy(KeepAlivePolicy):
    """Adaptive Replacement Cache, per-function, size-weighted."""

    def __init__(self) -> None:
        super().__init__()
        # LRU -> MRU order; values are function sizes in MB.
        self._t1: "OrderedDict[str, float]" = OrderedDict()
        self._t2: "OrderedDict[str, float]" = OrderedDict()
        self._b1: "OrderedDict[str, float]" = OrderedDict()
        self._b2: "OrderedDict[str, float]" = OrderedDict()
        self.p_mb = 0.0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _total(lst: "OrderedDict[str, float]") -> float:
        return sum(lst.values())

    def _trim_ghosts(self, capacity_mb: float) -> None:
        """Bound each ghost list: |T1|+|B1| <= c and |T2|+|B2| <= c."""
        while self._b1 and self._total(self._b1) + self._total(self._t1) > capacity_mb:
            self._b1.popitem(last=False)
        while self._b2 and self._total(self._b2) + self._total(self._t2) > capacity_mb:
            self._b2.popitem(last=False)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_warm_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        name = container.function.name
        size = container.function.memory_mb
        # A hit promotes the function to T2's MRU end.
        self._t1.pop(name, None)
        self._t2[name] = size
        self._t2.move_to_end(name)

    def on_cold_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        name = container.function.name
        size = container.function.memory_mb
        capacity = pool.capacity_mb
        if name in self._b1:
            # Recency ghost hit: T1 was too small; grow p.
            b1, b2 = self._total(self._b1), self._total(self._b2)
            delta = size * max(1.0, (b2 / b1) if b1 > 0 else 1.0)
            self.p_mb = min(self.p_mb + delta, capacity)
            del self._b1[name]
            self._t2[name] = size
        elif name in self._b2:
            # Frequency ghost hit: T2 was too small; shrink p.
            b1, b2 = self._total(self._b1), self._total(self._b2)
            delta = size * max(1.0, (b1 / b2) if b2 > 0 else 1.0)
            self.p_mb = max(self.p_mb - delta, 0.0)
            del self._b2[name]
            self._t2[name] = size
        elif name in self._t2:
            # A concurrent extra container for an established function.
            self._t2.move_to_end(name)
        elif name in self._t1:
            self._t1.move_to_end(name)
        else:
            self._t1[name] = size
        self._trim_ghosts(capacity)

    def on_evict(
        self,
        container: Container,
        now_s: float,
        pool: ContainerPool,
        pressure: bool,
    ) -> None:
        name = container.function.name
        if not pool.has_containers_of(name):
            # Last container died: the function becomes a ghost.
            if name in self._t1:
                size = self._t1.pop(name)
                if pressure:
                    self._b1[name] = size
            elif name in self._t2:
                size = self._t2.pop(name)
                if pressure:
                    self._b2[name] = size
            self._trim_ghosts(pool.capacity_mb)
        super().on_evict(container, now_s, pool, pressure)

    # ------------------------------------------------------------------
    # Victim selection (the REPLACE procedure)
    # ------------------------------------------------------------------

    def _lru_idle_container(
        self, lst: "OrderedDict[str, float]", pool: ContainerPool, chosen: set
    ) -> Optional[Container]:
        """LRU-most function in ``lst`` with an evictable container not
        already selected this round."""
        for name in lst:  # iterates LRU -> MRU
            candidates = [
                c
                for c in pool.containers_of(name)
                if c.is_idle and not c.pinned and c.container_id not in chosen
            ]
            if candidates:
                return min(
                    candidates, key=lambda c: (c.last_used_s, c.container_id)
                )
        return None

    def _replace_once(
        self, pool: ContainerPool, chosen: set
    ) -> Optional[Container]:
        t1_mb = self._total(self._t1)
        prefer_t1 = bool(self._t1) and t1_mb > self.p_mb
        first, second = (
            (self._t1, self._t2) if prefer_t1 else (self._t2, self._t1)
        )
        victim = self._lru_idle_container(first, pool, chosen)
        if victim is None:
            victim = self._lru_idle_container(second, pool, chosen)
        if victim is None:
            # Fall back to any idle container (e.g., prewarmed ones the
            # ARC lists never saw).
            idle = [
                c
                for c in pool.idle_containers()
                if c.container_id not in chosen
            ]
            if idle:
                victim = min(idle, key=lambda c: (c.last_used_s, c.container_id))
        return victim

    def select_victims(
        self, pool: ContainerPool, needed_mb: float, now_s: float
    ) -> Optional[List[Container]]:
        deficit = needed_mb - pool.free_mb
        if deficit <= 1e-9:
            return []
        if pool.evictable_mb() < deficit - 1e-9:
            return None
        victims: List[Container] = []
        reclaimed = 0.0
        chosen: set = set()
        while reclaimed < deficit - 1e-9:
            victim = self._replace_once(pool, chosen)
            if victim is None:
                return None
            chosen.add(victim.container_id)
            victims.append(victim)
            reclaimed += victim.memory_mb
        return victims

    def priority(self, container: Container, now_s: float) -> float:
        # For introspection and deflation: T1 (probationary) below T2,
        # LRU order within each list.
        name = container.function.name
        offset = 1e12 if name in self._t2 else 0.0
        return offset + container.last_used_s

    def reset(self) -> None:
        super().reset()
        self._t1.clear()
        self._t2.clear()
        self._b1.clear()
        self._b2.clear()
        self.p_mb = 0.0

"""Greedy-Dual-Size-Frequency keep-alive (the paper's GD policy).

Section 4.1, Equation 1::

    Priority = Clock + Freq * Cost / Size

* **Clock** — a per-server logical clock that advances on evictions to
  the evicted container's priority (the max over a batch), so that
  priorities age: anything not used since the last eviction round is
  worth less than anything used after it.
* **Freq** — the function's invocation count, shared across its
  containers and reset to zero when its last container dies.
* **Cost** — the termination cost, equal to the initialization time
  (cold minus warm running time): what a future cold start would pay.
* **Size** — the container's memory footprint in MB.

The policy is resource-conserving: containers are only terminated
under memory pressure, never on a timer.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.clock import LogicalClock
from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy
from repro.core.pool import ContainerPool
from repro.traces.model import TraceFunction

__all__ = ["GreedyDualPolicy"]


@register_policy("GD")
class GreedyDualPolicy(KeepAlivePolicy):
    """Greedy-Dual-Size-Frequency (GDSF) keep-alive."""

    # Priority = clock stamp (monotone logical clock) + Freq*Cost/Size
    # (frequency only grows while the function stays resident), so the
    # lazy victim index applies. GDS inherits the same structure.
    monotone_priority = True

    def __init__(
        self,
        frequency_weight: float = 1.0,
        cost_weight: float = 1.0,
        tenant_weights: Optional[Dict[int, float]] = None,
    ) -> None:
        """``frequency_weight`` and ``cost_weight`` scale the Freq and
        Cost terms, allowing the ablations in Section 4.2 (setting one
        to zero recovers simpler family members).

        ``tenant_weights`` maps tenant ids to multiplicative weights on
        the whole value term (docs/multi-tenancy.md): a tenant with
        weight 2 keeps containers as if their cold starts were twice as
        expensive, so paying tenants survive pressure longer. Tenants
        absent from the map get weight 1. The weight is static per
        function, so the monotone-priority contract of the lazy victim
        index still holds. ``None`` (the default) skips the weighting
        multiply entirely, keeping tenant-less priorities bit-identical
        to the unweighted policy.
        """
        super().__init__()
        self.clock = LogicalClock()
        self._frequency_weight = frequency_weight
        self._cost_weight = cost_weight
        if tenant_weights is not None:
            for tid, weight in sorted(tenant_weights.items()):
                # NaN slips past a plain ``< 0`` check and then poisons
                # the monotone priority index (every comparison against
                # NaN is false), so finiteness is part of the invariant.
                if not math.isfinite(weight) or weight < 0:
                    raise ValueError(
                        f"tenant {tid}: weight must be finite and >= 0, "
                        f"got {weight}"
                    )
            tenant_weights = dict(tenant_weights)
        self._tenant_weights = tenant_weights
        # Name of the function whose resident containers were refreshed
        # by the latest pool-aware ``on_invocation``; lets the start
        # hooks skip the sibling sweep they would otherwise repeat.
        self._arrival_refreshed_fn: Optional[str] = None

    # ------------------------------------------------------------------
    # Priority
    # ------------------------------------------------------------------

    def _value_term(self, function: TraceFunction) -> float:
        """The Freq * Cost / Size part of Equation 1, scaled by the
        function's tenant weight when weights are configured."""
        freq = self.frequency_of(function.name)
        cost = function.init_time_s
        value = (
            (self._frequency_weight * freq)
            * (self._cost_weight * cost)
            / function.memory_mb
        )
        if self._tenant_weights is not None:
            # Applied only when configured: the no-weights fast path
            # stays bit-identical to the pre-tenancy policy.
            value *= self._tenant_weights.get(function.tenant_id, 1.0)
        return value

    def _refresh_function_priorities(
        self, function: TraceFunction, pool: ContainerPool
    ) -> None:
        """Recompute priorities of all in-memory containers of a function.

        Containers share the frequency, cost, and size terms but keep
        their individual clock stamps, so the least recently used
        container of a function is still evicted first (tie-breaking,
        Section 4.1).
        """
        value = self._value_term(function)
        for container in pool.containers_of(function.name):
            container.priority = container.clock_stamp + value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    #
    # The Freq term changes in exactly two places: ``on_invocation``
    # increments it, and the base ``on_evict`` resets it when the last
    # container dies (leaving nothing to refresh). Refreshing *here*,
    # at the increment, keeps every resident sibling's cached priority
    # consistent on every path — including arrivals that drop or shed
    # before any start hook runs, which previously left siblings scored
    # with the pre-arrival frequency. The start hooks then only need to
    # stamp and score the one container they were called for.

    def on_invocation(
        self,
        function: TraceFunction,
        now_s: float,
        pool: Optional[ContainerPool] = None,
    ) -> None:
        super().on_invocation(function, now_s, pool)
        if pool is not None:
            self._refresh_function_priorities(function, pool)
            self._arrival_refreshed_fn = function.name
        else:
            self._arrival_refreshed_fn = None

    def _on_start(self, container: Container, pool: ContainerPool) -> None:
        container.clock_stamp = self.clock.value
        if self._arrival_refreshed_fn == container.function.name:
            # Siblings were refreshed when this arrival was announced
            # (their stamps have not changed since); only the started
            # container's own stamp — and hence priority — moved.
            container.priority = container.clock_stamp + self._value_term(
                container.function
            )
        else:
            # Pool-less driver (bare lifecycle tests): fall back to the
            # full sibling sweep so cached priorities stay consistent.
            self._refresh_function_priorities(container.function, pool)

    def on_warm_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._on_start(container, pool)

    def on_cold_start(
        self, container: Container, now_s: float, pool: ContainerPool
    ) -> None:
        self._on_start(container, pool)

    def on_evict(
        self,
        container: Container,
        now_s: float,
        pool: ContainerPool,
        pressure: bool,
    ) -> None:
        if pressure:
            # Clock = max priority over the evicted set; advancing to
            # each evicted priority in turn computes exactly that.
            self.clock.advance_to(container.priority)
        super().on_evict(container, now_s, pool, pressure)

    def priority(self, container: Container, now_s: float) -> float:
        return container.priority

    def reset(self) -> None:
        super().reset()
        self.clock.reset()
        self._arrival_refreshed_fn = None

    def __repr__(self) -> str:
        return f"GreedyDualPolicy(clock={self.clock.value:.4g})"

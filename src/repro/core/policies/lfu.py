"""LFU keep-alive (the paper's FREQ variant).

Section 4.2: using only the frequency term of the Greedy-Dual priority
yields LFU. The frequency is the function's shared invocation count,
reset when its last container dies. Ties (equal frequency) are broken
in LRU order by the base class's victim selection, which sorts by
``(priority, last_used, id)``.
"""

from __future__ import annotations

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, register_policy

__all__ = ["LFUPolicy"]


@register_policy("FREQ")
class LFUPolicy(KeepAlivePolicy):
    """Least-frequently-used keep-alive."""

    # The shared frequency only grows while the function keeps at
    # least one container resident (it resets only when the last one
    # dies, at which point no index entries remain), so the lazy
    # victim index applies.
    monotone_priority = True

    def priority(self, container: Container, now_s: float) -> float:
        return float(self.frequency_of(container.function.name))

"""Logical clock for Greedy-Dual aging.

Greedy-Dual policies age cache entries with a per-server *logical*
clock rather than wall time (Section 4.1). The clock only moves
forward on evictions: when a container with the lowest priority is
terminated, the clock is set to that priority (or, for a batch of
evictions, to the maximum priority in the batch). Every subsequent use
of a surviving container stamps it with this clock value, so recently
used containers always outrank containers that were cheap enough to
evict in the past.
"""

from __future__ import annotations

import time

__all__ = ["LogicalClock", "wall_clock_s"]


def wall_clock_s() -> float:
    """Monotonic wall-clock seconds, for throughput observability only.

    The single sanctioned wall-clock accessor in the deterministic
    layers (lint rule FC001, see ``docs/static-analysis.md``):
    simulation *logic* must never branch on wall time, but the replay
    loop may measure its own duration through this function (e.g.
    ``SimulationMetrics.wall_time_s``).
    """
    return time.perf_counter()


class LogicalClock:
    """Monotone non-decreasing logical clock.

    >>> clock = LogicalClock()
    >>> clock.value
    0.0
    >>> clock.advance_to(3.5)
    >>> clock.value
    3.5
    >>> clock.advance_to(2.0)  # never moves backwards
    >>> clock.value
    3.5
    """

    def __init__(self, initial: float = 0.0) -> None:
        self._value = float(initial)

    @property
    def value(self) -> float:
        return self._value

    def advance_to(self, value: float) -> None:
        """Move the clock forward to ``value``; ignores smaller values."""
        if value > self._value:
            self._value = float(value)

    def reset(self, value: float = 0.0) -> None:
        """Reset the clock (only used when starting a fresh simulation)."""
        self._value = float(value)

    def __repr__(self) -> str:
        return f"LogicalClock(value={self._value})"

"""Clock sources: the logical GD aging clock and the timestamp clocks.

Two unrelated notions of time live here:

* :class:`LogicalClock` — Greedy-Dual policies age cache entries with
  a per-server *logical* clock rather than wall time (Section 4.1).
  The clock only moves forward on evictions: when a container with the
  lowest priority is terminated, the clock is set to that priority
  (or, for a batch of evictions, to the maximum priority in the
  batch). Every subsequent use of a surviving container stamps it with
  this clock value, so recently used containers always outrank
  containers that were cheap enough to evict in the past.

* :class:`Clock` (with :class:`SimClock` and :class:`RealTimeClock`)
  — the *timestamp* source for every ``now_s`` the engine sees. The
  policies and :class:`~repro.core.pool.ContainerPool` are
  clock-agnostic by construction (they only ever receive ``now_s``
  parameters, never read time themselves — audited by lint rule
  FC001); the driver owns the clock. The simulator drives a
  :class:`SimClock` from trace arrival times (byte-identical to
  passing ``invocation.time_s`` directly, because traces are sorted);
  the live serving mode (``repro.live``, docs/live-serving.md) drives
  the *same* engine from a :class:`RealTimeClock`.

This module is the single FC001-exempt module: real-time reads happen
here and nowhere else in the deterministic layers.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

try:  # Protocol is typing-native from 3.8 on.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - no supported interpreter
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls


__all__ = [
    "Clock",
    "LogicalClock",
    "RealTimeClock",
    "SimClock",
    "wall_clock_s",
]


def wall_clock_s() -> float:
    """Monotonic wall-clock seconds, for throughput observability only.

    The single sanctioned wall-clock accessor in the deterministic
    layers (lint rule FC001, see ``docs/static-analysis.md``):
    simulation *logic* must never branch on wall time, but the replay
    loop may measure its own duration through this function (e.g.
    ``SimulationMetrics.wall_time_s``).
    """
    return time.perf_counter()


class LogicalClock:
    """Monotone non-decreasing logical clock.

    >>> clock = LogicalClock()
    >>> clock.value
    0.0
    >>> clock.advance_to(3.5)
    >>> clock.value
    3.5
    >>> clock.advance_to(2.0)  # never moves backwards
    >>> clock.value
    3.5
    """

    def __init__(self, initial: float = 0.0) -> None:
        self._value = float(initial)

    @property
    def value(self) -> float:
        return self._value

    def advance_to(self, value: float) -> None:
        """Move the clock forward to ``value``; ignores smaller values."""
        if value > self._value:
            self._value = float(value)

    def reset(self, value: float = 0.0) -> None:
        """Reset the clock (only used when starting a fresh simulation)."""
        self._value = float(value)

    def __repr__(self) -> str:
        return f"LogicalClock(value={self._value})"


@runtime_checkable
class Clock(Protocol):
    """Timestamp source for the keep-alive engine.

    The one method every driver-facing clock provides: ``now()``
    returns the current time in seconds as a monotone non-decreasing
    float. The engine never calls anything else, so any object with a
    conforming ``now`` (including a test double) is a valid clock.
    """

    def now(self) -> float:
        """Current time in seconds; never decreases between calls."""
        ...  # pragma: no cover - protocol body


class SimClock:
    """Simulated time: advanced explicitly by the replay driver.

    ``advance_to`` stores the given instant verbatim (``float`` of a
    float is the identical float), so a replay that advances the clock
    to each arrival time and reads it back produces timestamps
    byte-identical to passing ``invocation.time_s`` straight through —
    the property the pinned benchmark fingerprints rely on. Like
    :class:`LogicalClock`, it never moves backwards.

    >>> clock = SimClock()
    >>> clock.advance_to(2.5)
    >>> clock.now()
    2.5
    >>> clock.advance_to(1.0)  # stale instants are ignored
    >>> clock.now()
    2.5
    """

    __slots__ = ("_now_s",)

    def __init__(self, start_s: float = 0.0) -> None:
        self._now_s = float(start_s)

    def now(self) -> float:
        return self._now_s

    def advance_to(self, now_s: float) -> None:
        """Move simulated time forward to ``now_s``; ignores smaller
        values so out-of-order ticks cannot rewind the clock."""
        if now_s > self._now_s:
            self._now_s = float(now_s)

    def __repr__(self) -> str:
        return f"SimClock(now_s={self._now_s})"


class RealTimeClock:
    """Wall time, rebased so the serving epoch starts at ``start_s``.

    ``now()`` returns ``time_source() - epoch + start_s`` where the
    epoch is sampled from the source at construction (pass ``epoch_s``
    to pin it — tests use ``epoch_s=0.0`` with a mocked source stepping
    exact trace instants, which makes ``now()`` return the source's
    values unchanged). The default source is the same monotonic counter
    :func:`wall_clock_s` reads, so live timestamps share its
    resolution and can never jump backwards on NTP adjustments.
    """

    __slots__ = ("_source", "_epoch")

    def __init__(
        self,
        time_source: Optional[Callable[[], float]] = None,
        start_s: float = 0.0,
        epoch_s: Optional[float] = None,
    ) -> None:
        self._source = time_source if time_source is not None else time.perf_counter
        if epoch_s is None:
            epoch_s = self._source() - float(start_s)
        self._epoch = float(epoch_s)

    def now(self) -> float:
        return self._source() - self._epoch

    def __repr__(self) -> str:
        return f"RealTimeClock(epoch_s={self._epoch})"

"""Multi-dimensional container sizes (Section 4.1's size discussion).

The Greedy-Dual priority divides by a scalar *size*. The paper uses
container memory alone ("for ease of exposition and practicality"),
but notes that multi-dimensional resource vectors — CPU, memory, I/O —
can be folded into the same formula using standard scalarizations from
multi-dimensional bin-packing:

* **magnitude** — ``||d||``, the Euclidean norm of the demand vector;
* **normalized-sum** — ``sum_j d_j / a_j``, each dimension normalized
  by the server's total resources of that type;
* **cosine-similarity** — how aligned the demand is with the server's
  capacity vector; demand that matches the server's resource mix packs
  well and is scored *smaller* (we use
  ``||d|| * (2 - cos(d, a))`` so misaligned demands cost more).

Each strategy maps a :class:`ResourceVector` to a positive scalar
usable directly as the Greedy-Dual ``Size`` term.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["ResourceVector", "SizingStrategy", "scalar_size"]


@dataclass(frozen=True)
class ResourceVector:
    """A demand (or capacity) across the three paper dimensions."""

    memory_mb: float
    cpu_cores: float = 0.0
    io_mbps: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_mb < 0 or self.cpu_cores < 0 or self.io_mbps < 0:
            raise ValueError("resource demands must be non-negative")
        if self.memory_mb == 0 and self.cpu_cores == 0 and self.io_mbps == 0:
            raise ValueError("resource vector must be non-zero")

    def as_tuple(self) -> tuple:
        return (self.memory_mb, self.cpu_cores, self.io_mbps)

    @property
    def magnitude(self) -> float:
        return math.sqrt(sum(x * x for x in self.as_tuple()))

    def normalized_sum(self, capacity: "ResourceVector") -> float:
        """``sum_j d_j / a_j`` over the dimensions the server offers.

        Dimensions with zero capacity must have zero demand.
        """
        total = 0.0
        for demand, avail in zip(self.as_tuple(), capacity.as_tuple()):
            if avail > 0:
                total += demand / avail
            elif demand > 0:
                raise ValueError(
                    "demand in a dimension the server has no capacity for"
                )
        if total <= 0:
            raise ValueError("normalized size must be positive")
        return total

    def cosine_similarity(self, capacity: "ResourceVector") -> float:
        dot = sum(
            d * a for d, a in zip(self.as_tuple(), capacity.as_tuple())
        )
        return dot / (self.magnitude * capacity.magnitude)


class SizingStrategy(enum.Enum):
    """How to scalarize a resource vector for the Size term."""

    MEMORY_ONLY = "memory-only"
    MAGNITUDE = "magnitude"
    NORMALIZED_SUM = "normalized-sum"
    COSINE = "cosine"


def scalar_size(
    demand: ResourceVector,
    strategy: SizingStrategy = SizingStrategy.MEMORY_ONLY,
    capacity: ResourceVector | None = None,
) -> float:
    """Fold a multi-dimensional demand into a positive scalar size.

    ``capacity`` (the server's total resources) is required for the
    normalized-sum and cosine strategies.

    >>> d = ResourceVector(memory_mb=300.0, cpu_cores=4.0)
    >>> scalar_size(d)  # memory-only, the paper's default
    300.0
    """
    if strategy == SizingStrategy.MEMORY_ONLY:
        if demand.memory_mb <= 0:
            raise ValueError("memory-only sizing needs positive memory")
        return demand.memory_mb
    if strategy == SizingStrategy.MAGNITUDE:
        return demand.magnitude
    if capacity is None:
        raise ValueError(f"strategy {strategy.value} requires a capacity vector")
    if strategy == SizingStrategy.NORMALIZED_SUM:
        return demand.normalized_sum(capacity)
    if strategy == SizingStrategy.COSINE:
        # Aligned demand (cos -> 1) packs well: score approaches the
        # plain magnitude. Misaligned demand (cos -> 0) is penalized
        # toward twice its magnitude.
        cos = demand.cosine_similarity(capacity)
        return demand.magnitude * (2.0 - cos)
    raise ValueError(f"unknown sizing strategy: {strategy!r}")

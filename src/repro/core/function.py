"""Per-function dynamic bookkeeping.

The keep-alive policies need two kinds of per-function state:

* the **frequency** of invocation, shared by all of a function's
  containers and reset when the last container dies (Section 4.1), and
* online **estimates of warm and cold running times**, because a real
  platform (Section 6) does not know them a priori: the first
  invocation's time is taken as the worst-case cold time, and once a
  warm invocation completes the initialization overhead is computed by
  subtracting warm from cold time. When the last container of a
  function is evicted, the learned times are retained for future
  priority computations.

The trace-driven simulator can bypass the estimator (times are known
from the trace); the OpenWhisk substrate uses it as the paper's
implementation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["FunctionStats", "FunctionStatsTable"]


@dataclass
class FunctionStats:
    """Online cold/warm time estimates plus the shared frequency count."""

    name: str
    frequency: int = 0
    cold_time_s: Optional[float] = None
    warm_time_s: Optional[float] = None
    total_invocations: int = 0
    total_cold_starts: int = 0

    def observe_cold(self, elapsed_s: float) -> None:
        """Record a completed cold invocation's end-to-end time."""
        self.total_invocations += 1
        self.total_cold_starts += 1
        if self.cold_time_s is None:
            self.cold_time_s = elapsed_s
        else:
            # Keep the worst case, as the paper's implementation does
            # until warm observations arrive.
            self.cold_time_s = max(self.cold_time_s, elapsed_s)

    def observe_warm(self, elapsed_s: float) -> None:
        """Record a completed warm invocation's end-to-end time."""
        self.total_invocations += 1
        if self.warm_time_s is None:
            self.warm_time_s = elapsed_s
        else:
            # Smooth warm-time observations to damp scheduling noise.
            self.warm_time_s = 0.8 * self.warm_time_s + 0.2 * elapsed_s

    @property
    def init_time_s(self) -> float:
        """Estimated initialization overhead (cold minus warm time).

        Before any observation, assume zero; with only cold
        observations, the whole cold time is attributed to
        initialization (the worst-case assumption the paper describes).
        """
        if self.cold_time_s is None:
            return 0.0
        if self.warm_time_s is None:
            return self.cold_time_s
        return max(0.0, self.cold_time_s - self.warm_time_s)

    def record_invocation(self) -> int:
        """Bump and return the shared frequency counter."""
        self.frequency += 1
        return self.frequency

    def reset_frequency(self) -> None:
        """Called when the last container of this function is evicted.

        The frequency is zeroed (Section 4.1) but the learned cold and
        warm times are retained for future invocations (Section 6).
        """
        self.frequency = 0


class FunctionStatsTable:
    """All known functions' dynamic state, keyed by function name."""

    def __init__(self) -> None:
        self._stats: Dict[str, FunctionStats] = {}

    def get(self, name: str) -> FunctionStats:
        """Fetch (creating on first use) the stats for ``name``."""
        stats = self._stats.get(name)
        if stats is None:
            stats = FunctionStats(name=name)
            self._stats[name] = stats
        return stats

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def items(self):
        return self._stats.items()

    def reset(self) -> None:
        self._stats.clear()

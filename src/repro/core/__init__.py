"""Core keep-alive machinery: containers, pools, clocks, and policies."""

from repro.core.clock import LogicalClock
from repro.core.container import Container, ContainerState
from repro.core.function import FunctionStats, FunctionStatsTable
from repro.core.pool import CapacityError, ContainerPool
from repro.core.sizing import ResourceVector, SizingStrategy, scalar_size

__all__ = [
    "LogicalClock",
    "Container",
    "ContainerState",
    "FunctionStats",
    "FunctionStatsTable",
    "CapacityError",
    "ContainerPool",
    "ResourceVector",
    "SizingStrategy",
    "scalar_size",
]

"""Container state machine.

Each function invocation runs in its own container (Section 3's system
model). At any instant a container is either *running* a function or
sitting *warm* waiting for the next invocation of the same function.
Containers of different functions are never interchangeable.

The container also carries the per-container bookkeeping that the
keep-alive policies maintain: the Greedy-Dual clock stamp and priority,
and the Landlord credit.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.traces.model import TraceFunction

__all__ = ["ContainerState", "Container"]

_container_ids = itertools.count()


class ContainerState(enum.Enum):
    """Lifecycle states of a container."""

    WARM = "warm"        # initialized and idle, ready for a warm start
    RUNNING = "running"  # currently executing an invocation
    DEAD = "dead"        # terminated (evicted or expired)


class Container:
    """One virtual execution environment for one function.

    Policies read and write ``clock_stamp``, ``priority``, and
    ``credit``; the pool and simulator manage the state transitions.
    """

    __slots__ = (
        "container_id",
        "function",
        "state",
        "created_at_s",
        "last_used_s",
        "busy_until_s",
        "clock_stamp",
        "priority",
        "credit",
        "invocation_count",
        "prewarmed",
        "pinned",
        "doomed",
        "pool",
    )

    def __init__(self, function: TraceFunction, created_at_s: float) -> None:
        self.container_id: int = next(_container_ids)
        self.function = function
        self.state = ContainerState.WARM
        self.created_at_s = created_at_s
        self.last_used_s = created_at_s
        self.busy_until_s: float = created_at_s
        # Policy bookkeeping.
        self.clock_stamp: float = 0.0
        self.priority: float = 0.0
        self.credit: float = 0.0
        self.invocation_count: int = 0
        # True if the container was created speculatively by a
        # prefetching policy (HIST) rather than by a cold start.
        self.prewarmed: bool = False
        # True for provisioned-concurrency containers (AWS-style
        # reserved capacity): never evictable, never expiring.
        self.pinned: bool = False
        # True once fault injection has condemned the container (its
        # invocation crashed): it is terminated when the invocation
        # finishes instead of returning to the warm pool.
        self.doomed: bool = False
        # Back-reference to the owning ContainerPool (set by the pool
        # on add/evict) so busy/idle transitions keep the pool's O(1)
        # evictable-memory accounting current.
        self.pool = None

    @property
    def memory_mb(self) -> float:
        return self.function.memory_mb

    @property
    def is_idle(self) -> bool:
        return self.state == ContainerState.WARM

    @property
    def is_running(self) -> bool:
        return self.state == ContainerState.RUNNING

    def start_invocation(self, now_s: float, duration_s: float) -> None:
        """Transition to RUNNING for ``duration_s`` seconds."""
        if self.state != ContainerState.WARM:
            raise RuntimeError(
                f"container {self.container_id} ({self.function.name}) "
                f"cannot start an invocation in state {self.state.value}"
            )
        self.state = ContainerState.RUNNING
        self.last_used_s = now_s
        self.busy_until_s = now_s + duration_s
        self.invocation_count += 1
        if self.pool is not None:
            self.pool._container_became_busy(self)

    def finish_invocation(self, now_s: float) -> None:
        """Transition back to WARM once the invocation completes."""
        if self.state != ContainerState.RUNNING:
            raise RuntimeError(
                f"container {self.container_id} ({self.function.name}) "
                f"is not running"
            )
        self.state = ContainerState.WARM
        self.last_used_s = max(self.last_used_s, now_s)
        if self.pool is not None:
            self.pool._container_became_idle(self)

    def terminate(self) -> None:
        """Transition to DEAD; a dead container can never be reused."""
        if self.state == ContainerState.RUNNING:
            raise RuntimeError(
                f"container {self.container_id} ({self.function.name}) "
                f"cannot be terminated while running"
            )
        self.state = ContainerState.DEAD

    def idle_time_s(self, now_s: float) -> float:
        """Seconds since the container last finished / was last used."""
        return max(0.0, now_s - self.last_used_s)

    def __repr__(self) -> str:
        return (
            f"Container(id={self.container_id}, fn={self.function.name!r}, "
            f"state={self.state.value}, priority={self.priority:.4g})"
        )

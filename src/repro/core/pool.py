"""The container pool: capacity accounting and eviction mechanics.

The pool is the keep-alive cache. It tracks every live container on a
server, enforces the memory capacity, and provides the queries that
keep-alive policies need for victim selection. Which containers to
terminate is the *policy's* decision (Section 4); the pool only
executes it and maintains the invariants:

* total memory of live containers never exceeds capacity,
* a running container is never evicted,
* a dead container is never handed out again.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, insort
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.checks.sanitize import SanitizeError, sanitize_enabled
from repro.core.container import Container, ContainerState
from repro.traces.model import TraceFunction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.tracer import Tracer

__all__ = ["ContainerPool", "CapacityError", "TENANT_MODES"]

#: Valid pool tenant modes (docs/multi-tenancy.md): ``shared`` is the
#: single-owner behavior (tenant identity tracked but never acted on),
#: ``partitioned`` gives every tenant a hard capacity slice, ``quota``
#: gives soft limits under which an over-quota tenant becomes
#: preferentially evictable.
TENANT_MODES = ("shared", "partitioned", "quota")

#: Heap key a container is enrolled with before any policy has scored
#: it. Compares below every real ``(priority, last_used, id)`` key, so
#: the first pop revalidates and rescores the entry.
_UNSCORED_KEY = (float("-inf"), float("-inf"), -1)


class CapacityError(Exception):
    """Raised when an operation would exceed the pool's memory capacity."""


class ContainerPool:
    """All live containers on one server, bounded by a memory capacity."""

    def __init__(
        self,
        capacity_mb: float,
        tracer: Optional["Tracer"] = None,
        tenant_mode: str = "shared",
        tenant_limits_mb: Optional[Dict[int, float]] = None,
    ) -> None:
        if capacity_mb <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mb}")
        if tenant_mode not in TENANT_MODES:
            raise ValueError(
                f"tenant_mode must be one of {TENANT_MODES}, got "
                f"{tenant_mode!r}"
            )
        limits: Dict[int, float] = {}
        for tid, limit in sorted((tenant_limits_mb or {}).items()):
            if tid < 0:
                raise ValueError(f"tenant id must be >= 0, got {tid}")
            # Finiteness matters as much as sign: a NaN limit makes
            # every quota comparison false and an inf slice defeats the
            # partition-sum capacity check below.
            if not math.isfinite(limit) or limit < 0:
                raise ValueError(
                    f"tenant {tid}: limit must be finite and >= 0, "
                    f"got {limit}"
                )
            limits[int(tid)] = float(limit)
        if tenant_mode == "shared" and limits:
            raise ValueError("tenant limits are meaningless in shared mode")
        if tenant_mode != "shared" and not limits:
            raise ValueError(
                f"tenant_mode={tenant_mode!r} requires per-tenant limits"
            )
        if tenant_mode == "partitioned":
            total = sum(limits.values())
            if total > capacity_mb * (1.0 + 1e-9):
                raise CapacityError(
                    f"partition slices sum to {total:.1f} MB but capacity "
                    f"is {capacity_mb:.1f} MB"
                )
        self._tenant_mode = tenant_mode
        self._tenant_limits_mb = limits
        # The limits as configured, before any harvest rescaling.
        # ``deflate_to`` shrinks partitioned slices proportionally and
        # restores them from this baseline when capacity returns.
        self._base_tenant_limits_mb = dict(limits)
        # Pending graceful-shrink target (docs/robustness.md): set when
        # ``deflate_to`` could not reach its target because busy
        # containers hold memory; ``resume_deflation`` retries as they
        # finish. ``None`` means no deflation is in flight.
        self._deflation_target_mb: Optional[float] = None
        # Per-tenant incremental accounting (memory + population),
        # maintained in every mode — shared pools answer tenant-usage
        # queries too — at the cost of two dict updates per add/evict.
        # Keys are dropped when a tenant's population returns to zero,
        # so the dicts never outgrow the live tenant set.
        self._tenant_used_mb: Dict[int, float] = {}
        self._tenant_count: Dict[int, int] = {}
        # Normalized to ``None`` when tracing is disabled so admission
        # pays exactly one ``is None`` test (see repro.obs.tracer).
        self._tracer = (
            tracer
            if tracer is not None and getattr(tracer, "enabled", True)
            else None
        )
        self._capacity_mb = float(capacity_mb)
        # Capacity-relative float slack: repeated add/evict cycles can
        # leave ``_used_mb`` a few ULPs away from the exact sum, and an
        # ULP of a large capacity is far bigger than any absolute 1e-9.
        self._slack_mb = 1e-9 * self._capacity_mb
        self._used_mb = 0.0
        self._containers: Dict[int, Container] = {}
        # Per-function container ids in ascending (creation) order.
        # Ids come from a global monotone counter, so admission appends
        # and every lookup walks an already-sorted list instead of
        # paying a per-call ``sorted()``.
        self._by_function: Dict[str, List[int]] = {}
        # Lazy victim index: a min-heap of (key, container_id) entries,
        # at most one live entry per container. Entries are pushed with
        # a sentinel key on admission and revalidated against the
        # policy's current key on pop (see :meth:`iter_victims`);
        # entries of evicted containers are discarded lazily.
        self._victim_heap: List[Tuple[Tuple[float, float, int], int]] = []
        # Incremental expiry index: a min-heap of (deadline, id)
        # entries validated against the authoritative deadline map on
        # pop. Unlike the victim index, expiry deadlines are NOT
        # monotone (a HIST re-plan can pull a deadline earlier), so
        # every schedule_expiry pushes a fresh entry and stale ones are
        # discarded when popped (see :meth:`pop_expired`).
        self._expiry_heap: List[Tuple[float, int]] = []
        self._expiry_deadline: Dict[int, float] = {}
        # Containers no policy has scheduled a deadline for yet. The
        # simulator schedules every container through the policy
        # lifecycle hooks, so this is empty on the hot path; manually
        # assembled pools (unit tests, external drivers) fall back to a
        # scan over exactly these containers.
        self._unscheduled: Dict[int, Container] = {}
        # Idle, unpinned memory, maintained incrementally through the
        # containers' busy/idle notifications so the unsatisfiable-
        # deficit check on every drop is O(1) instead of a pool scan.
        # ``_idle_unpinned`` counts the same population, so the
        # drift-cleanup clamp below can fire only when the idle set is
        # actually empty instead of masking real accounting bugs.
        self._evictable_mb = 0.0
        self._idle_unpinned = 0
        # Victim-index entries consumed by :meth:`take_victims` whose
        # containers have not been evicted yet. ``evict`` discards the
        # pending entry; a caller that walks away without evicting gets
        # its entries restored at the start of the next selection.
        self._taken: Dict[int, Tuple[Tuple[float, float, int], int]] = {}
        # Victim-index entries whose containers were busy when popped.
        # Instead of re-pushing them for the *next* selection to pop
        # and skip again (running containers dominate the heap front
        # under eviction pressure), they wait here and re-enter the
        # heap when the container actually goes idle — the stored key
        # is unchanged, so selection order is identical.
        self._parked: Dict[int, Tuple[Tuple[float, float, int], int]] = {}
        # Runtime sanitizer flag, captured once at construction
        # (docs/static-analysis.md): when off, admission/eviction pay
        # exactly one attribute test.
        self._sanitize = sanitize_enabled()

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def capacity_mb(self) -> float:
        return self._capacity_mb

    @property
    def used_mb(self) -> float:
        return self._used_mb

    @property
    def free_mb(self) -> float:
        return self._capacity_mb - self._used_mb

    def can_fit(self, memory_mb: float) -> bool:
        # Tolerate float rounding from repeated add/remove cycles. The
        # slack is relative to capacity: accumulated drift scales with
        # the magnitudes being summed, not with an absolute constant.
        return memory_mb <= self.free_mb + self._slack_mb

    def set_capacity(self, capacity_mb: float) -> None:
        """Resize the pool (vertical scaling).

        Shrinking below the currently used memory is allowed only if
        the caller has already evicted enough idle containers; the pool
        refuses to be put into an over-committed state.
        """
        if capacity_mb <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mb}")
        if capacity_mb < self._used_mb - 1e-9 * max(
            self._capacity_mb, float(capacity_mb)
        ):
            raise CapacityError(
                f"cannot shrink capacity to {capacity_mb} MB while "
                f"{self._used_mb} MB is in use"
            )
        if self._tenant_mode == "partitioned":
            total = sum(self._tenant_limits_mb.values())
            if total > capacity_mb * (1.0 + 1e-9):
                raise CapacityError(
                    f"cannot shrink capacity to {capacity_mb} MB below "
                    f"the {total:.1f} MB sum of partition slices"
                )
        self._capacity_mb = float(capacity_mb)
        self._slack_mb = 1e-9 * self._capacity_mb

    # ------------------------------------------------------------------
    # Graceful deflation (harvested / time-varying capacity)
    # ------------------------------------------------------------------

    @property
    def deflation_target_mb(self) -> Optional[float]:
        """The pending graceful-shrink target, or ``None``."""
        return self._deflation_target_mb

    @property
    def deflation_deferred_mb(self) -> float:
        """Memory still to be freed before a deferred shrink lands."""
        if self._deflation_target_mb is None:
            return 0.0
        return max(0.0, self._used_mb - self._deflation_target_mb)

    def deflate_to(
        self,
        capacity_mb: float,
        key_of: Callable[[Container], Tuple[float, float, int]],
    ) -> List[Container]:
        """Gracefully resize toward ``capacity_mb``, evicting idle
        containers in the policy's victim order as needed.

        The harvest-capacity counterpart of :meth:`set_capacity`:
        instead of refusing a shrink below used memory, the pool frees
        idle containers lowest-``key_of`` first (through the same lazy
        monotone victim index as pressure eviction — never a sort) and,
        when busy containers still hold more than the target, *defers*
        the remainder: nominal capacity is clamped to the used memory
        so nothing new can be admitted, and :meth:`resume_deflation`
        finishes the shrink as containers go idle. Growth (target at or
        above used memory) applies immediately.

        Tenant modes: partitioned slices scale proportionally with the
        target (and are restored from the configured baseline when
        capacity grows back); any tenant left over its scaled slice is
        deflated down to it. Quota limits stay absolute — they are soft
        guarantees, not slices — but over-quota tenants' containers are
        evicted first, matching pressure-path victim selection.

        Returns the evicted containers in eviction order; the caller
        owns policy-state cleanup and event emission for them.
        :meth:`set_capacity` keeps its strict never-over-committed
        contract; only this path may shrink below used memory.
        """
        if capacity_mb <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mb}")
        target = float(capacity_mb)
        if self._tenant_mode == "partitioned":
            self._tenant_limits_mb = self._scaled_tenant_limits(target)
        self._deflation_target_mb = target
        return self._advance_deflation(key_of)

    def resume_deflation(
        self,
        key_of: Callable[[Container], Tuple[float, float, int]],
    ) -> List[Container]:
        """Continue a deferred shrink; no-op unless one is pending."""
        if self._deflation_target_mb is None:
            return []
        return self._advance_deflation(key_of)

    def _scaled_tenant_limits(self, target_mb: float) -> Dict[int, float]:
        """Partition slices scaled proportionally to ``target_mb``
        (never above the configured baseline)."""
        base = self._base_tenant_limits_mb
        total = sum(base.values())
        if total <= 0.0 or total <= target_mb * (1.0 + 1e-9):
            return dict(base)
        scale = target_mb / total
        return {tid: limit * scale for tid, limit in base.items()}

    def _advance_deflation(
        self,
        key_of: Callable[[Container], Tuple[float, float, int]],
    ) -> List[Container]:
        target = self._deflation_target_mb
        if target is None:  # pragma: no cover - guarded by callers
            return []
        settle_slack = 1e-9 * max(self._capacity_mb, target)
        if self._tenant_mode == "partitioned":
            # Each tenant within its scaled slice implies the global
            # target: the scaled slices sum to at most the target.
            selected = self._over_slice_victims(key_of, settle_slack)
        else:
            deficit = self._used_mb - target
            if deficit <= settle_slack:
                selected = []
            elif self._tenant_mode == "quota":
                selected = self._quota_deflation_victims(
                    key_of, deficit, settle_slack
                )
            else:
                selected = self._shared_deflation_victims(key_of, deficit)
        for container in selected:
            self.evict(container)
        settle_slack = 1e-9 * max(self._capacity_mb, target)
        if self._used_mb - target <= settle_slack:
            # Target reached (or the pool was never above it): land the
            # shrink/growth through the strict contract.
            self._deflation_target_mb = None
            self.set_capacity(target)
        else:
            # Busy containers hold more than the target: clamp nominal
            # capacity to exactly what is in use — no new admissions —
            # and wait for resume_deflation as they finish.
            self._capacity_mb = self._used_mb
            self._slack_mb = 1e-9 * self._capacity_mb
        return selected

    def _shared_deflation_victims(
        self,
        key_of: Callable[[Container], Tuple[float, float, int]],
        deficit_mb: float,
    ) -> List[Container]:
        """Lowest-key idle containers covering ``deficit_mb`` — or the
        whole idle set when it cannot (the deferral case)."""
        selected: List[Container] = []
        freed = 0.0
        for container in self.iter_victims(key_of):
            selected.append(container)
            freed += container.memory_mb
            if freed >= deficit_mb - self._slack_mb:
                break
        return selected

    def _quota_deflation_victims(
        self,
        key_of: Callable[[Container], Tuple[float, float, int]],
        deficit_mb: float,
        slack_mb: float,
    ) -> List[Container]:
        """Deflation victims with quota fairness: over-quota tenants'
        containers first (in key order), then everyone else's."""
        over = self.over_quota_tenants()
        if not over:
            return self._shared_deflation_victims(key_of, deficit_mb)
        preferred: List[Container] = []
        rest: List[Container] = []
        freed = 0.0
        for container in self.iter_victims(key_of):
            if container.function.tenant_id in over:
                preferred.append(container)
                freed += container.memory_mb
                if freed >= deficit_mb - slack_mb:
                    return preferred
            else:
                rest.append(container)
        selected = preferred
        for container in rest:
            if freed >= deficit_mb - slack_mb:
                break
            selected.append(container)
            freed += container.memory_mb
        return selected

    def _over_slice_victims(
        self,
        key_of: Callable[[Container], Tuple[float, float, int]],
        slack_mb: float,
    ) -> List[Container]:
        """Partitioned-mode deflation victims: for every tenant over
        its (scaled) slice, its lowest-key idle containers until the
        slice fits."""
        limits = self._tenant_limits_mb
        excess: Dict[int, float] = {}
        for tid, used_t in self._tenant_used_mb.items():
            over_by = used_t - limits.get(tid, 0.0)
            if over_by > slack_mb:
                excess[tid] = over_by
        if not excess:
            return []
        selected: List[Container] = []
        for container in self.iter_victims(key_of):
            tid = container.function.tenant_id
            remaining = excess.get(tid)
            if remaining is None:
                continue
            selected.append(container)
            remaining -= container.memory_mb
            if remaining > slack_mb:
                excess[tid] = remaining
            else:
                del excess[tid]
                if not excess:
                    break
        return selected

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add(self, container: Container) -> None:
        """Admit a container; raises :class:`CapacityError` if it won't fit."""
        if container.state == ContainerState.DEAD:
            raise ValueError("cannot add a dead container")
        if container.container_id in self._containers:
            raise ValueError(f"container {container.container_id} already pooled")
        if not self.can_fit(container.memory_mb):
            raise CapacityError(
                f"container needs {container.memory_mb} MB but only "
                f"{self.free_mb:.1f} MB is free"
            )
        if self._tenant_mode == "partitioned":
            tenant_id = container.function.tenant_id
            free_t = self.tenant_free_mb(tenant_id)
            if container.memory_mb > free_t + self._slack_mb:
                raise CapacityError(
                    f"tenant {tenant_id} needs {container.memory_mb} MB "
                    f"but its partition has only {free_t:.1f} MB free"
                )
        if container.pool is not None:
            raise ValueError(
                f"container {container.container_id} already belongs "
                "to a pool"
            )
        container.pool = self
        self._containers[container.container_id] = container
        peers = self._by_function.setdefault(container.function.name, [])
        if peers and container.container_id < peers[-1]:
            # Only reachable with externally-built containers; ids from
            # the global counter always append in ascending order.
            insort(peers, container.container_id)
        else:
            peers.append(container.container_id)
        self._used_mb += container.memory_mb
        tenant_id = container.function.tenant_id
        self._tenant_used_mb[tenant_id] = (
            self._tenant_used_mb.get(tenant_id, 0.0) + container.memory_mb
        )
        self._tenant_count[tenant_id] = (
            self._tenant_count.get(tenant_id, 0) + 1
        )
        if self._tracer is not None:
            self._tracer.emit(
                "container_spawned",
                container.created_at_s,
                function=container.function.name,
                container_id=container.container_id,
                memory_mb=container.memory_mb,
                pinned=container.pinned,
                prewarmed=container.prewarmed,
            )
        if not container.pinned:
            # Pinned containers are never eviction candidates; everyone
            # else enters the victim index unscored and the expiry
            # index unscheduled (until a policy hook sets a deadline).
            heapq.heappush(
                self._victim_heap, (_UNSCORED_KEY, container.container_id)
            )
            self._unscheduled[container.container_id] = container
            if container.is_idle:
                self._evictable_mb += container.memory_mb
                self._idle_unpinned += 1
        if self._sanitize:
            self._sanitize_accounting()

    def evict(self, container: Container) -> None:
        """Terminate and remove an idle container.

        Returns silently having removed the container; raises if the
        container is running or not in this pool.
        """
        if container.container_id not in self._containers:
            raise KeyError(f"container {container.container_id} not in pool")
        if container.pinned:
            raise ValueError(
                f"container {container.container_id} is pinned "
                "(provisioned concurrency) and cannot be evicted"
            )
        container.terminate()  # raises if RUNNING
        container.pool = None
        del self._containers[container.container_id]
        peers = self._by_function[container.function.name]
        del peers[bisect_left(peers, container.container_id)]
        if not peers:
            del self._by_function[container.function.name]
        self._used_mb -= container.memory_mb
        # Drift cleanup, not error masking: only reset the accumulator
        # when the pool is *actually* empty and the residual is within
        # the float-drift slack. A near-zero value with containers
        # still pooled — or a large residual on an empty pool — is a
        # real bug and must stay visible to the sanitizer.
        if not self._containers and abs(self._used_mb) <= self._slack_mb:
            self._used_mb = 0.0
        tenant_id = container.function.tenant_id
        self._tenant_used_mb[tenant_id] -= container.memory_mb
        remaining = self._tenant_count[tenant_id] - 1
        if remaining:
            self._tenant_count[tenant_id] = remaining
        elif abs(self._tenant_used_mb[tenant_id]) <= self._slack_mb:
            # Same drift-cleanup rule as ``_used_mb``: only forget a
            # tenant when its population is genuinely empty and the
            # residual is float noise; a large residual stays visible
            # to the sanitizer.
            del self._tenant_count[tenant_id]
            del self._tenant_used_mb[tenant_id]
        else:
            self._tenant_count[tenant_id] = 0
        # Expiry bookkeeping: dropping the authoritative deadline turns
        # any heap entries for this id into stale tombstones, discarded
        # when popped.
        self._expiry_deadline.pop(container.container_id, None)
        self._unscheduled.pop(container.container_id, None)
        self._taken.pop(container.container_id, None)
        self._parked.pop(container.container_id, None)
        # An evicted container was necessarily idle (terminate refuses
        # RUNNING ones) and unpinned, so it was counted as evictable.
        self._evictable_mb -= container.memory_mb
        self._idle_unpinned -= 1
        if self._idle_unpinned == 0 and abs(self._evictable_mb) <= self._slack_mb:
            self._evictable_mb = 0.0
        if self._sanitize:
            self._sanitize_accounting()

    def _sanitize_accounting(self) -> None:
        """REPRO_SANITIZE hook: recompute the incremental memory
        accounting from scratch and fail loudly on any drift."""
        used = sum(c.memory_mb for c in self._containers.values())
        if abs(used - self._used_mb) > 1e-6 * max(1.0, used):
            raise SanitizeError(
                f"memory conservation violated: containers hold "
                f"{used:.3f} MB but the pool accounts "
                f"{self._used_mb:.3f} MB"
            )
        evictable = sum(
            c.memory_mb
            for c in self._containers.values()
            if c.is_idle and not c.pinned
        )
        if abs(evictable - self._evictable_mb) > 1e-6 * max(1.0, evictable):
            raise SanitizeError(
                f"evictable-memory accounting violated: idle unpinned "
                f"containers hold {evictable:.3f} MB but the pool "
                f"accounts {self._evictable_mb:.3f} MB"
            )
        idle_unpinned = sum(
            1
            for c in self._containers.values()
            if c.is_idle and not c.pinned
        )
        if idle_unpinned != self._idle_unpinned:
            raise SanitizeError(
                f"idle-container accounting violated: {idle_unpinned} "
                f"idle unpinned containers but the pool counts "
                f"{self._idle_unpinned}"
            )
        # Per-tenant accounting must agree with a from-scratch
        # recompute, tenant keys must never dangle, and in partitioned
        # mode no tenant may exceed its slice.
        tenant_used: Dict[int, float] = {}
        tenant_count: Dict[int, int] = {}
        for c in self._containers.values():
            tid = c.function.tenant_id
            tenant_used[tid] = tenant_used.get(tid, 0.0) + c.memory_mb
            tenant_count[tid] = tenant_count.get(tid, 0) + 1
        for tid in sorted(set(self._tenant_used_mb) | set(tenant_used)):
            used_t = tenant_used.get(tid, 0.0)
            booked_t = self._tenant_used_mb.get(tid, 0.0)
            if abs(used_t - booked_t) > 1e-6 * max(1.0, used_t):
                raise SanitizeError(
                    f"tenant {tid} memory accounting violated: containers "
                    f"hold {used_t:.3f} MB but the pool accounts "
                    f"{booked_t:.3f} MB"
                )
            if tenant_count.get(tid, 0) != self._tenant_count.get(tid, 0):
                raise SanitizeError(
                    f"tenant {tid} population accounting violated: "
                    f"{tenant_count.get(tid, 0)} containers pooled but "
                    f"the pool counts {self._tenant_count.get(tid, 0)}"
                )
            if (
                self._tenant_mode == "partitioned"
                # A deferred deflation legitimately leaves tenants over
                # their freshly-scaled slice until busy containers
                # finish; the invariant is re-checked once it lands.
                and self._deflation_target_mb is None
            ):
                limit = self._tenant_limits_mb.get(tid, 0.0)
                if used_t > limit + 1e-6 * max(1.0, limit):
                    raise SanitizeError(
                        f"tenant {tid} exceeds its partition slice: "
                        f"{used_t:.3f} MB used of {limit:.3f} MB"
                    )
        # Every unpinned container is either awaiting its first
        # deadline or carried by the expiry index — never both, never
        # neither, and never a dangling id.
        for cid in self._expiry_deadline:
            if cid not in self._containers:
                raise SanitizeError(
                    f"expiry index holds deadline for container {cid} "
                    "which is not pooled"
                )
            if cid in self._unscheduled:
                raise SanitizeError(
                    f"container {cid} is both scheduled and unscheduled "
                    "in the expiry index"
                )
        for cid in self._unscheduled:
            if cid not in self._containers:
                raise SanitizeError(
                    f"expiry index tracks unscheduled container {cid} "
                    "which is not pooled"
                )
        # Parked victim-index entries exist only for pooled containers
        # that are genuinely not idle; an idle parked container would
        # be invisible to victim selection.
        for cid in self._parked:
            container = self._containers.get(cid)
            if container is None:
                raise SanitizeError(
                    f"victim index parks container {cid} which is not "
                    "pooled"
                )
            if container.is_idle:
                raise SanitizeError(
                    f"victim index parks idle container {cid}; it would "
                    "never be offered for eviction"
                )

    # ------------------------------------------------------------------
    # Queries for policies and the simulator
    # ------------------------------------------------------------------

    def idle_warm_container(self, function_name: str) -> Optional[Container]:
        """An idle warm container for ``function_name``, if any.

        When several are idle, the least recently used one is returned
        so that hot containers stay hot (matching the original
        simulator's behaviour of reusing the oldest match). Ties on
        ``last_used_s`` break toward the lowest container id; the
        per-function index is kept in ascending id order, so the scan
        is allocation-free and hash-seed independent.
        """
        ids = self._by_function.get(function_name)
        if not ids:
            return None
        containers = self._containers
        best: Optional[Container] = None
        best_last = 0.0
        for cid in ids:
            container = containers[cid]
            if not container.is_idle:
                continue
            if best is None or container.last_used_s < best_last:
                best = container
                best_last = container.last_used_s
        return best

    def containers_of(self, function_name: str) -> List[Container]:
        """All containers of ``function_name``, in ascending
        container-id (creation) order.

        The index is maintained in sorted id order, so this is a plain
        copy: deterministic (no raw set-iteration order, the FC003
        blind spot the ROADMAP flagged) without a per-call sort.
        """
        ids = self._by_function.get(function_name)
        if not ids:
            return []
        containers = self._containers
        return [containers[i] for i in ids]

    def has_containers_of(self, function_name: str) -> bool:
        return bool(self._by_function.get(function_name))

    def idle_containers(self) -> List[Container]:
        """All containers eligible for eviction: warm, not running,
        and not pinned (provisioned concurrency is reserved capacity
        no policy may reclaim)."""
        return [
            c
            for c in self._containers.values()
            if c.is_idle and not c.pinned
        ]

    def running_containers(self) -> List[Container]:
        return [c for c in self._containers.values() if c.is_running]

    def all_containers(self) -> List[Container]:
        return list(self._containers.values())

    def evictable_mb(self) -> float:
        """Total memory reclaimable by evicting every idle container.

        O(1): maintained incrementally via the containers' busy/idle
        notifications instead of scanning the pool.
        """
        return self._evictable_mb

    # ------------------------------------------------------------------
    # Tenant accounting (docs/multi-tenancy.md)
    # ------------------------------------------------------------------

    @property
    def tenant_mode(self) -> str:
        return self._tenant_mode

    def tenant_limit_mb(self, tenant_id: int) -> Optional[float]:
        """The tenant's slice (partitioned) or soft quota (quota), or
        ``None`` when no limit is configured for it."""
        return self._tenant_limits_mb.get(tenant_id)

    def tenant_used_mb(self, tenant_id: int) -> float:
        """Memory currently held by the tenant's containers. O(1)."""
        return self._tenant_used_mb.get(tenant_id, 0.0)

    def tenant_container_count(self, tenant_id: int) -> int:
        """Live containers owned by the tenant. O(1)."""
        return self._tenant_count.get(tenant_id, 0)

    def tenant_usage(self) -> Dict[int, float]:
        """Per-tenant used memory for every tenant with containers,
        in ascending tenant-id order (deterministic)."""
        return {
            tid: self._tenant_used_mb[tid]
            for tid in sorted(self._tenant_used_mb)
        }

    def tenant_free_mb(self, tenant_id: int) -> float:
        """Free memory within the tenant's partition slice.

        In ``partitioned`` mode a tenant with no configured slice has
        zero free memory — it can never admit a container (the
        zero-quota degenerate case). In the other modes the limit is
        not an admission bound, so the global free memory is returned.
        """
        if self._tenant_mode != "partitioned":
            return self.free_mb
        limit = self._tenant_limits_mb.get(tenant_id, 0.0)
        return limit - self.tenant_used_mb(tenant_id)

    def can_admit(self, function: TraceFunction) -> bool:
        """Whether a container for ``function`` may be admitted now.

        The tenant-aware generalization of :meth:`can_fit`: shared and
        quota pools bound admission only by global capacity (quota
        limits are soft — enforced through preferential eviction, not
        admission), while partitioned pools additionally require the
        owning tenant's slice to fit the container.
        """
        if not self.can_fit(function.memory_mb):
            return False
        if self._tenant_mode != "partitioned":
            return True
        return (
            function.memory_mb
            <= self.tenant_free_mb(function.tenant_id) + self._slack_mb
        )

    def quota_exceeded_by(self, tenant_id: int, memory_mb: float) -> bool:
        """Whether admitting ``memory_mb`` for ``tenant_id`` would put
        it strictly over its configured limit (beyond the float slack).

        ``False`` for tenants with no configured limit and in shared
        mode. Quota-mode victim selection uses this to decide whether a
        miss may displace within-quota tenants or must feed on its own
        tenant's (and over-quota tenants') containers.
        """
        limit = self._tenant_limits_mb.get(tenant_id)
        if limit is None:
            return False
        used = self._tenant_used_mb.get(tenant_id, 0.0)
        return used + memory_mb > limit + self._slack_mb

    def over_quota_tenants(self) -> frozenset:
        """Tenants currently holding more than their soft quota.

        Meaningful in ``quota`` mode, where victim selection ranks
        these tenants' idle containers ahead of everyone else's.
        Usage must *strictly* exceed the limit beyond the float slack,
        so a tenant exactly at quota is not yet preferentially
        evictable — but a zero-quota tenant becomes so the moment it
        holds anything.
        """
        return frozenset(
            tid
            for tid, used in self._tenant_used_mb.items()
            if used > self._tenant_limits_mb.get(tid, float("inf")) + self._slack_mb
        )

    # ------------------------------------------------------------------
    # State-change notifications from containers
    # ------------------------------------------------------------------

    def _container_became_busy(self, container: Container) -> None:
        if not container.pinned:
            self._evictable_mb -= container.memory_mb
            self._idle_unpinned -= 1
            # Same rule as eviction: reset the accumulator only when
            # the idle set is genuinely empty and the residual is mere
            # float drift, so real accounting bugs stay observable.
            if (
                self._idle_unpinned == 0
                and abs(self._evictable_mb) <= self._slack_mb
            ):
                self._evictable_mb = 0.0

    def _container_became_idle(self, container: Container) -> None:
        entry = self._parked.pop(container.container_id, None)
        if entry is not None:
            # Re-enroll the victim-index entry parked while the
            # container was running (a pinned one is discarded on pop).
            heapq.heappush(self._victim_heap, entry)
        if not container.pinned:
            self._evictable_mb += container.memory_mb
            self._idle_unpinned += 1

    def iter_victims(
        self,
        key_of: Callable[[Container], Tuple[float, float, int]],
    ) -> Iterator[Container]:
        """Idle, unpinned containers in ascending ``key_of`` order.

        The lazy priority index behind the policies' victim selection:
        instead of sorting every idle container on each miss, entries
        sit in a min-heap under the key they were last scored with and
        are revalidated when popped. A popped entry whose stored key no
        longer matches the container's current key is re-pushed under
        the fresh key and the scan continues, so each selection costs
        O((victims + touched) * log n), where *touched* is the number
        of containers whose key changed since the last selection — not
        the whole idle population.

        Correctness requires **monotone keys**: a container's key must
        never decrease while it stays in the pool (see
        :attr:`KeepAlivePolicy.monotone_priority`). Under that
        contract the first entry that revalidates equals the true
        minimum, because every other entry's stored key is a lower
        bound on its current key.

        Running containers are set aside and restored when the
        iterator closes; yielded containers keep their index entry, so
        callers may evict all, some, or none of them afterwards —
        entries of evicted containers are discarded on a later pop.
        """
        if self._taken:
            self._restore_taken()
        heap = self._victim_heap
        restore: List[Tuple[Tuple[float, float, int], int]] = []
        # Sanitizer: the monotone-key contract implies yielded keys
        # never decrease; a regression here would silently evict the
        # wrong containers.
        last_yielded: Optional[Tuple[float, float, int]] = None
        try:
            while heap:
                stored_key, container_id = heapq.heappop(heap)
                container = self._containers.get(container_id)
                if container is None:
                    continue  # evicted since enrollment: drop the entry
                if container.pinned:
                    continue  # reserved capacity: never a candidate
                if not container.is_idle:
                    # Busy right now; park the entry until the container
                    # goes idle again (its key can only have grown by
                    # then, and a running container can never be a
                    # candidate, so re-pushing it for every scan to pop
                    # and skip again is pure churn).
                    self._parked[container_id] = (stored_key, container_id)
                    continue
                current_key = key_of(container)
                if current_key != stored_key:
                    heapq.heappush(heap, (current_key, container_id))
                    continue
                if self._sanitize:
                    if last_yielded is not None and current_key < last_yielded:
                        raise SanitizeError(
                            f"victim-index monotonicity violated: key "
                            f"{current_key} yielded after {last_yielded} "
                            "(policy key decreased while pooled)"
                        )
                    last_yielded = current_key
                restore.append((stored_key, container_id))
                yield container
        finally:
            for entry in restore:
                heapq.heappush(heap, entry)

    def _restore_taken(self) -> None:
        """Re-enroll entries a previous :meth:`take_victims` consumed
        for containers the caller never evicted. Dict iteration is
        insertion-ordered, so this is deterministic."""
        heap = self._victim_heap
        for entry in self._taken.values():
            heapq.heappush(heap, entry)
        self._taken.clear()

    def take_victims(
        self,
        key_of: Callable[[Container], Tuple[float, float, int]],
        deficit_mb: float,
    ) -> Optional[List[Container]]:
        """Lowest-``key_of`` idle unpinned containers covering
        ``deficit_mb``, or ``None`` when the whole idle set is not
        enough (everything is then restored and the caller drops).

        The consuming variant of :meth:`iter_victims` for callers that
        evict every selected victim (the simulator's pressure path):
        selected entries leave the heap immediately and the subsequent
        :meth:`evict` just discards the pending record, saving the
        restore-push and the later dead-entry pop that the iterator
        pays per victim. Selection order and the monotone-key contract
        are identical to :meth:`iter_victims`; a caller that does not
        evict a returned container loses nothing — its entry is
        re-enrolled at the start of the next selection.
        """
        if self._taken:
            self._restore_taken()
        heap = self._victim_heap
        taken = self._taken
        containers = self._containers
        victims: List[Container] = []
        reclaimed = 0.0
        last_yielded: Optional[Tuple[float, float, int]] = None
        covered = False
        while heap:
            entry = heapq.heappop(heap)
            stored_key, container_id = entry
            container = containers.get(container_id)
            if container is None:
                continue  # evicted since enrollment: drop the entry
            if container.pinned:
                continue  # reserved capacity: never a candidate
            if not container.is_idle:
                # Parked until the container goes idle again — see
                # :meth:`iter_victims`.
                self._parked[container_id] = entry
                continue
            current_key = key_of(container)
            if current_key != stored_key:
                heapq.heappush(heap, (current_key, container_id))
                continue
            if self._sanitize:
                if last_yielded is not None and current_key < last_yielded:
                    raise SanitizeError(
                        f"victim-index monotonicity violated: key "
                        f"{current_key} yielded after {last_yielded} "
                        "(policy key decreased while pooled)"
                    )
                last_yielded = current_key
            victims.append(container)
            taken[container_id] = entry
            reclaimed += container.memory_mb
            if reclaimed >= deficit_mb - 1e-9:
                covered = True
                break
        if not covered:
            # Insufficient idle memory: nothing will be evicted, so
            # put every consumed entry back.
            self._restore_taken()
            return None
        return victims

    # ------------------------------------------------------------------
    # Incremental expiry index
    # ------------------------------------------------------------------

    def schedule_expiry(self, container: Container, deadline_s: float) -> None:
        """Set ``container``'s time-based expiry deadline.

        Policies call this from their lifecycle hooks instead of
        rescanning the pool on every event; :meth:`pop_expired` then
        surfaces only containers whose deadline has actually passed.
        Rescheduling is cheap and deadlines need not be monotone: each
        call pushes a fresh heap entry and the deadline map is the
        single source of truth, so superseded entries die on pop. A
        pinned container never expires; scheduling one is a no-op.
        """
        cid = container.container_id
        if cid not in self._containers or container.pinned:
            return
        previous = self._expiry_deadline.get(cid)
        if previous is not None and previous == deadline_s:
            return  # unchanged: the live heap entry still matches
        self._unscheduled.pop(cid, None)
        self._expiry_deadline[cid] = deadline_s
        heapq.heappush(self._expiry_heap, (deadline_s, cid))

    def expiry_deadline_of(self, container: Container) -> Optional[float]:
        """The scheduled expiry deadline, or ``None`` if unscheduled."""
        return self._expiry_deadline.get(container.container_id)

    def next_expiry_s(self) -> float:
        """Earliest moment anything *could* expire; ``inf`` if nothing
        is scheduled.

        The O(1) peek behind the simulator's batched event dispatch:
        while ``now < next_expiry_s()`` the whole expiry phase — the
        policy call, :meth:`pop_expired`, and its result list — is
        skipped. Stale heap tops (evicted or rescheduled entries) are
        purged here so a dead earliest-deadline cannot pin the wake-up
        time in the past forever. Containers nothing ever scheduled
        (manually assembled pools) may expire via a fallback scan this
        peek knows nothing about, so their presence disables the fast
        path by reporting ``-inf``.
        """
        if self._unscheduled:
            return float("-inf")
        heap = self._expiry_heap
        deadlines = self._expiry_deadline
        while heap:
            deadline, cid = heap[0]
            current = deadlines.get(cid)
            if current is None or current != deadline:
                heapq.heappop(heap)  # stale: superseded or evicted
                continue
            return deadline
        return float("inf")

    def pop_expired(
        self,
        now_s: float,
        fallback_deadline: Optional[Callable[[Container], float]] = None,
    ) -> List[Tuple[Container, float]]:
        """Idle, unpinned containers whose deadline has passed, as
        ``(container, deadline)`` pairs in ascending
        ``(deadline, container_id)`` order.

        This is the hot-path replacement for the policies' former
        full-pool rescans: when nothing is due, the cost is one peek
        at the heap top. Entries are validated against the deadline
        map on pop — stale ones (evicted containers, superseded
        reschedules) are discarded for good, while reported and
        busy-past-deadline entries are re-pushed, so the call does not
        consume anything the caller chooses not to evict. The ordering
        matches the old scan exactly: a stable sort by deadline over
        creation-ordered containers is precisely ascending
        ``(deadline, container_id)``.

        Containers no policy ever scheduled are covered by a scan with
        ``fallback_deadline`` (in creation order); the simulator
        schedules every container through lifecycle hooks, so that
        scan sees an empty dict on the hot path.
        """
        expired: List[Tuple[Container, float]] = []
        heap = self._expiry_heap
        deadlines = self._expiry_deadline
        restore: List[Tuple[float, int]] = []
        while heap and heap[0][0] <= now_s:
            deadline, cid = heapq.heappop(heap)
            current = deadlines.get(cid)
            if current is None or current != deadline:
                continue  # evicted or rescheduled since this push
            container = self._containers[cid]
            restore.append((deadline, cid))
            if container.is_idle:
                expired.append((container, deadline))
            # else: busy past its deadline — deferred; the restored
            # entry resurfaces it on the first check after it idles.
        for entry in restore:
            heapq.heappush(heap, entry)
        if self._unscheduled and fallback_deadline is not None:
            for cid in sorted(self._unscheduled):
                container = self._unscheduled[cid]
                if not container.is_idle or container.pinned:
                    continue
                deadline = fallback_deadline(container)
                if deadline <= now_s:
                    expired.append((container, deadline))
            expired.sort(key=lambda pair: (pair[1], pair[0].container_id))
        return expired

    def function_names(self) -> List[str]:
        """Names of all functions with pooled containers, sorted.

        Sorted rather than returned as the raw ``set`` keys so callers
        iterating the result stay hash-seed independent.
        """
        return sorted(self._by_function)

    def __len__(self) -> int:
        return len(self._containers)

    def __contains__(self, container: Container) -> bool:
        return container.container_id in self._containers

    def __repr__(self) -> str:
        return (
            f"ContainerPool(capacity={self._capacity_mb:.0f} MB, "
            f"used={self._used_mb:.0f} MB, containers={len(self)})"
        )

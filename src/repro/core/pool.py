"""The container pool: capacity accounting and eviction mechanics.

The pool is the keep-alive cache. It tracks every live container on a
server, enforces the memory capacity, and provides the queries that
keep-alive policies need for victim selection. Which containers to
terminate is the *policy's* decision (Section 4); the pool only
executes it and maintains the invariants:

* total memory of live containers never exceeds capacity,
* a running container is never evicted,
* a dead container is never handed out again.
"""

from __future__ import annotations

import heapq
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.checks.sanitize import SanitizeError, sanitize_enabled
from repro.core.container import Container, ContainerState
from repro.traces.model import TraceFunction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.tracer import Tracer

__all__ = ["ContainerPool", "CapacityError"]

#: Heap key a container is enrolled with before any policy has scored
#: it. Compares below every real ``(priority, last_used, id)`` key, so
#: the first pop revalidates and rescores the entry.
_UNSCORED_KEY = (float("-inf"), float("-inf"), -1)


class CapacityError(Exception):
    """Raised when an operation would exceed the pool's memory capacity."""


class ContainerPool:
    """All live containers on one server, bounded by a memory capacity."""

    def __init__(
        self, capacity_mb: float, tracer: Optional["Tracer"] = None
    ) -> None:
        if capacity_mb <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mb}")
        # Normalized to ``None`` when tracing is disabled so admission
        # pays exactly one ``is None`` test (see repro.obs.tracer).
        self._tracer = (
            tracer
            if tracer is not None and getattr(tracer, "enabled", True)
            else None
        )
        self._capacity_mb = float(capacity_mb)
        self._used_mb = 0.0
        self._containers: Dict[int, Container] = {}
        self._by_function: Dict[str, Set[int]] = {}
        # Lazy victim index: a min-heap of (key, container_id) entries,
        # at most one live entry per container. Entries are pushed with
        # a sentinel key on admission and revalidated against the
        # policy's current key on pop (see :meth:`iter_victims`);
        # entries of evicted containers are discarded lazily.
        self._victim_heap: List[Tuple[Tuple[float, float, int], int]] = []
        # Idle, unpinned memory, maintained incrementally through the
        # containers' busy/idle notifications so the unsatisfiable-
        # deficit check on every drop is O(1) instead of a pool scan.
        self._evictable_mb = 0.0
        # Runtime sanitizer flag, captured once at construction
        # (docs/static-analysis.md): when off, admission/eviction pay
        # exactly one attribute test.
        self._sanitize = sanitize_enabled()

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def capacity_mb(self) -> float:
        return self._capacity_mb

    @property
    def used_mb(self) -> float:
        return self._used_mb

    @property
    def free_mb(self) -> float:
        return self._capacity_mb - self._used_mb

    def can_fit(self, memory_mb: float) -> bool:
        # Tolerate float rounding from repeated add/remove cycles.
        return memory_mb <= self.free_mb + 1e-9

    def set_capacity(self, capacity_mb: float) -> None:
        """Resize the pool (vertical scaling).

        Shrinking below the currently used memory is allowed only if
        the caller has already evicted enough idle containers; the pool
        refuses to be put into an over-committed state.
        """
        if capacity_mb <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mb}")
        if capacity_mb < self._used_mb - 1e-9:
            raise CapacityError(
                f"cannot shrink capacity to {capacity_mb} MB while "
                f"{self._used_mb} MB is in use"
            )
        self._capacity_mb = float(capacity_mb)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add(self, container: Container) -> None:
        """Admit a container; raises :class:`CapacityError` if it won't fit."""
        if container.state == ContainerState.DEAD:
            raise ValueError("cannot add a dead container")
        if container.container_id in self._containers:
            raise ValueError(f"container {container.container_id} already pooled")
        if not self.can_fit(container.memory_mb):
            raise CapacityError(
                f"container needs {container.memory_mb} MB but only "
                f"{self.free_mb:.1f} MB is free"
            )
        if container.pool is not None:
            raise ValueError(
                f"container {container.container_id} already belongs "
                "to a pool"
            )
        container.pool = self
        self._containers[container.container_id] = container
        self._by_function.setdefault(container.function.name, set()).add(
            container.container_id
        )
        self._used_mb += container.memory_mb
        if self._tracer is not None:
            self._tracer.emit(
                "container_spawned",
                container.created_at_s,
                function=container.function.name,
                container_id=container.container_id,
                memory_mb=container.memory_mb,
                pinned=container.pinned,
                prewarmed=container.prewarmed,
            )
        if not container.pinned:
            # Pinned containers are never eviction candidates; everyone
            # else enters the victim index unscored.
            heapq.heappush(
                self._victim_heap, (_UNSCORED_KEY, container.container_id)
            )
            if container.is_idle:
                self._evictable_mb += container.memory_mb
        if self._sanitize:
            self._sanitize_accounting()

    def evict(self, container: Container) -> None:
        """Terminate and remove an idle container.

        Returns silently having removed the container; raises if the
        container is running or not in this pool.
        """
        if container.container_id not in self._containers:
            raise KeyError(f"container {container.container_id} not in pool")
        if container.pinned:
            raise ValueError(
                f"container {container.container_id} is pinned "
                "(provisioned concurrency) and cannot be evicted"
            )
        container.terminate()  # raises if RUNNING
        container.pool = None
        del self._containers[container.container_id]
        peers = self._by_function[container.function.name]
        peers.discard(container.container_id)
        if not peers:
            del self._by_function[container.function.name]
        self._used_mb -= container.memory_mb
        if self._used_mb < 1e-9:
            self._used_mb = 0.0
        # An evicted container was necessarily idle (terminate refuses
        # RUNNING ones) and unpinned, so it was counted as evictable.
        self._evictable_mb -= container.memory_mb
        if self._evictable_mb < 1e-9:
            self._evictable_mb = 0.0
        if self._sanitize:
            self._sanitize_accounting()

    def _sanitize_accounting(self) -> None:
        """REPRO_SANITIZE hook: recompute the incremental memory
        accounting from scratch and fail loudly on any drift."""
        used = sum(c.memory_mb for c in self._containers.values())
        if abs(used - self._used_mb) > 1e-6 * max(1.0, used):
            raise SanitizeError(
                f"memory conservation violated: containers hold "
                f"{used:.3f} MB but the pool accounts "
                f"{self._used_mb:.3f} MB"
            )
        evictable = sum(
            c.memory_mb
            for c in self._containers.values()
            if c.is_idle and not c.pinned
        )
        if abs(evictable - self._evictable_mb) > 1e-6 * max(1.0, evictable):
            raise SanitizeError(
                f"evictable-memory accounting violated: idle unpinned "
                f"containers hold {evictable:.3f} MB but the pool "
                f"accounts {self._evictable_mb:.3f} MB"
            )

    # ------------------------------------------------------------------
    # Queries for policies and the simulator
    # ------------------------------------------------------------------

    def idle_warm_container(self, function_name: str) -> Optional[Container]:
        """An idle warm container for ``function_name``, if any.

        When several are idle, the least recently used one is returned
        so that hot containers stay hot (matching the original
        simulator's behaviour of reusing the oldest match).
        """
        ids = self._by_function.get(function_name)
        if not ids:
            return None
        idle = [self._containers[i] for i in ids if self._containers[i].is_idle]
        if not idle:
            return None
        return min(idle, key=lambda c: c.last_used_s)

    def containers_of(self, function_name: str) -> List[Container]:
        ids = self._by_function.get(function_name, set())
        return [self._containers[i] for i in ids]

    def has_containers_of(self, function_name: str) -> bool:
        return bool(self._by_function.get(function_name))

    def idle_containers(self) -> List[Container]:
        """All containers eligible for eviction: warm, not running,
        and not pinned (provisioned concurrency is reserved capacity
        no policy may reclaim)."""
        return [
            c
            for c in self._containers.values()
            if c.is_idle and not c.pinned
        ]

    def running_containers(self) -> List[Container]:
        return [c for c in self._containers.values() if c.is_running]

    def all_containers(self) -> List[Container]:
        return list(self._containers.values())

    def evictable_mb(self) -> float:
        """Total memory reclaimable by evicting every idle container.

        O(1): maintained incrementally via the containers' busy/idle
        notifications instead of scanning the pool.
        """
        return self._evictable_mb

    # ------------------------------------------------------------------
    # State-change notifications from containers
    # ------------------------------------------------------------------

    def _container_became_busy(self, container: Container) -> None:
        if not container.pinned:
            self._evictable_mb -= container.memory_mb
            if self._evictable_mb < 1e-9:
                self._evictable_mb = 0.0

    def _container_became_idle(self, container: Container) -> None:
        if not container.pinned:
            self._evictable_mb += container.memory_mb

    def iter_victims(
        self,
        key_of: Callable[[Container], Tuple[float, float, int]],
    ) -> Iterator[Container]:
        """Idle, unpinned containers in ascending ``key_of`` order.

        The lazy priority index behind the policies' victim selection:
        instead of sorting every idle container on each miss, entries
        sit in a min-heap under the key they were last scored with and
        are revalidated when popped. A popped entry whose stored key no
        longer matches the container's current key is re-pushed under
        the fresh key and the scan continues, so each selection costs
        O((victims + touched) * log n), where *touched* is the number
        of containers whose key changed since the last selection — not
        the whole idle population.

        Correctness requires **monotone keys**: a container's key must
        never decrease while it stays in the pool (see
        :attr:`KeepAlivePolicy.monotone_priority`). Under that
        contract the first entry that revalidates equals the true
        minimum, because every other entry's stored key is a lower
        bound on its current key.

        Running containers are set aside and restored when the
        iterator closes; yielded containers keep their index entry, so
        callers may evict all, some, or none of them afterwards —
        entries of evicted containers are discarded on a later pop.
        """
        heap = self._victim_heap
        restore: List[Tuple[Tuple[float, float, int], int]] = []
        # Sanitizer: the monotone-key contract implies yielded keys
        # never decrease; a regression here would silently evict the
        # wrong containers.
        last_yielded: Optional[Tuple[float, float, int]] = None
        try:
            while heap:
                stored_key, container_id = heapq.heappop(heap)
                container = self._containers.get(container_id)
                if container is None:
                    continue  # evicted since enrollment: drop the entry
                if container.pinned:
                    continue  # reserved capacity: never a candidate
                if not container.is_idle:
                    # Busy right now; re-enroll unchanged once the scan
                    # finishes (its key can only have grown by then).
                    restore.append((stored_key, container_id))
                    continue
                current_key = key_of(container)
                if current_key != stored_key:
                    heapq.heappush(heap, (current_key, container_id))
                    continue
                if self._sanitize:
                    if last_yielded is not None and current_key < last_yielded:
                        raise SanitizeError(
                            f"victim-index monotonicity violated: key "
                            f"{current_key} yielded after {last_yielded} "
                            "(policy key decreased while pooled)"
                        )
                    last_yielded = current_key
                restore.append((stored_key, container_id))
                yield container
        finally:
            for entry in restore:
                heapq.heappush(heap, entry)

    def function_names(self) -> Set[str]:
        return set(self._by_function)

    def __len__(self) -> int:
        return len(self._containers)

    def __contains__(self, container: Container) -> bool:
        return container.container_id in self._containers

    def __repr__(self) -> str:
        return (
            f"ContainerPool(capacity={self._capacity_mb:.0f} MB, "
            f"used={self._used_mb:.0f} MB, containers={len(self)})"
        )

"""The container pool: capacity accounting and eviction mechanics.

The pool is the keep-alive cache. It tracks every live container on a
server, enforces the memory capacity, and provides the queries that
keep-alive policies need for victim selection. Which containers to
terminate is the *policy's* decision (Section 4); the pool only
executes it and maintains the invariants:

* total memory of live containers never exceeds capacity,
* a running container is never evicted,
* a dead container is never handed out again.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.core.container import Container, ContainerState
from repro.traces.model import TraceFunction

__all__ = ["ContainerPool", "CapacityError"]


class CapacityError(Exception):
    """Raised when an operation would exceed the pool's memory capacity."""


class ContainerPool:
    """All live containers on one server, bounded by a memory capacity."""

    def __init__(self, capacity_mb: float) -> None:
        if capacity_mb <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mb}")
        self._capacity_mb = float(capacity_mb)
        self._used_mb = 0.0
        self._containers: Dict[int, Container] = {}
        self._by_function: Dict[str, Set[int]] = {}

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def capacity_mb(self) -> float:
        return self._capacity_mb

    @property
    def used_mb(self) -> float:
        return self._used_mb

    @property
    def free_mb(self) -> float:
        return self._capacity_mb - self._used_mb

    def can_fit(self, memory_mb: float) -> bool:
        # Tolerate float rounding from repeated add/remove cycles.
        return memory_mb <= self.free_mb + 1e-9

    def set_capacity(self, capacity_mb: float) -> None:
        """Resize the pool (vertical scaling).

        Shrinking below the currently used memory is allowed only if
        the caller has already evicted enough idle containers; the pool
        refuses to be put into an over-committed state.
        """
        if capacity_mb <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mb}")
        if capacity_mb < self._used_mb - 1e-9:
            raise CapacityError(
                f"cannot shrink capacity to {capacity_mb} MB while "
                f"{self._used_mb} MB is in use"
            )
        self._capacity_mb = float(capacity_mb)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add(self, container: Container) -> None:
        """Admit a container; raises :class:`CapacityError` if it won't fit."""
        if container.state == ContainerState.DEAD:
            raise ValueError("cannot add a dead container")
        if container.container_id in self._containers:
            raise ValueError(f"container {container.container_id} already pooled")
        if not self.can_fit(container.memory_mb):
            raise CapacityError(
                f"container needs {container.memory_mb} MB but only "
                f"{self.free_mb:.1f} MB is free"
            )
        self._containers[container.container_id] = container
        self._by_function.setdefault(container.function.name, set()).add(
            container.container_id
        )
        self._used_mb += container.memory_mb

    def evict(self, container: Container) -> None:
        """Terminate and remove an idle container.

        Returns silently having removed the container; raises if the
        container is running or not in this pool.
        """
        if container.container_id not in self._containers:
            raise KeyError(f"container {container.container_id} not in pool")
        if container.pinned:
            raise ValueError(
                f"container {container.container_id} is pinned "
                "(provisioned concurrency) and cannot be evicted"
            )
        container.terminate()  # raises if RUNNING
        del self._containers[container.container_id]
        peers = self._by_function[container.function.name]
        peers.discard(container.container_id)
        if not peers:
            del self._by_function[container.function.name]
        self._used_mb -= container.memory_mb
        if self._used_mb < 1e-9:
            self._used_mb = 0.0

    # ------------------------------------------------------------------
    # Queries for policies and the simulator
    # ------------------------------------------------------------------

    def idle_warm_container(self, function_name: str) -> Optional[Container]:
        """An idle warm container for ``function_name``, if any.

        When several are idle, the least recently used one is returned
        so that hot containers stay hot (matching the original
        simulator's behaviour of reusing the oldest match).
        """
        ids = self._by_function.get(function_name)
        if not ids:
            return None
        idle = [self._containers[i] for i in ids if self._containers[i].is_idle]
        if not idle:
            return None
        return min(idle, key=lambda c: c.last_used_s)

    def containers_of(self, function_name: str) -> List[Container]:
        ids = self._by_function.get(function_name, set())
        return [self._containers[i] for i in ids]

    def has_containers_of(self, function_name: str) -> bool:
        return bool(self._by_function.get(function_name))

    def idle_containers(self) -> List[Container]:
        """All containers eligible for eviction: warm, not running,
        and not pinned (provisioned concurrency is reserved capacity
        no policy may reclaim)."""
        return [
            c
            for c in self._containers.values()
            if c.is_idle and not c.pinned
        ]

    def running_containers(self) -> List[Container]:
        return [c for c in self._containers.values() if c.is_running]

    def all_containers(self) -> List[Container]:
        return list(self._containers.values())

    def evictable_mb(self) -> float:
        """Total memory reclaimable by evicting every idle container."""
        return sum(c.memory_mb for c in self.idle_containers())

    def function_names(self) -> Set[str]:
        return set(self._by_function)

    def __len__(self) -> int:
        return len(self._containers)

    def __contains__(self, container: Container) -> bool:
        return container.container_id in self._containers

    def __repr__(self) -> str:
        return (
            f"ContainerPool(capacity={self._capacity_mb:.0f} MB, "
            f"used={self._used_mb:.0f} MB, containers={len(self)})"
        )

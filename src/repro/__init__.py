"""FaasCache reproduction: greedy-dual keep-alive caching for serverless.

A full reimplementation of *FaasCache: Keeping Serverless Computing
Alive with Greedy-Dual Caching* (Fuerst & Sharma, ASPLOS 2021):

* ``repro.core`` — the keep-alive policies (Greedy-Dual, TTL, LRU,
  LFU, SIZE, Landlord, HIST) and the container-pool machinery.
* ``repro.sim`` — the trace-driven discrete-event keep-alive
  simulator.
* ``repro.traces`` — workload substrates: a synthetic Azure-like
  dataset generator with the paper's preprocessing and samplers,
  FunctionBench application models, and litmus workloads.
* ``repro.provisioning`` — reuse distances, hit-ratio curves, SHARDS
  sampling, static provisioning, and the proportional vertical-scaling
  controller with cascade deflation.
* ``repro.openwhisk`` — a simulated OpenWhisk invoker for the
  empirical FaasCache-vs-vanilla comparison.
* ``repro.analysis`` — statistics helpers, figure-series builders, and
  text reporting used by the benchmark harness.

Quickstart::

    from repro import simulate, skewed_frequency_trace

    result = simulate(skewed_frequency_trace(), policy="GD", memory_mb=4096)
    print(result.metrics.summary())
"""

from repro.core.policies import (
    PAPER_POLICIES,
    available_policies,
    create_policy,
)
from repro.provisioning import (
    HitRatioCurve,
    ProportionalController,
    StaticProvisioner,
    curve_from_trace,
    reuse_distances,
)
from repro.sim import KeepAliveSimulator, SimulationResult, simulate
from repro.traces import (
    Trace,
    TraceFunction,
    functionbench_apps,
    generate_azure_dataset,
    make_paper_traces,
    skewed_frequency_trace,
)

__version__ = "1.0.0"

__all__ = [
    "PAPER_POLICIES",
    "available_policies",
    "create_policy",
    "HitRatioCurve",
    "ProportionalController",
    "StaticProvisioner",
    "curve_from_trace",
    "reuse_distances",
    "KeepAliveSimulator",
    "SimulationResult",
    "simulate",
    "Trace",
    "TraceFunction",
    "functionbench_apps",
    "generate_azure_dataset",
    "make_paper_traces",
    "skewed_frequency_trace",
    "__version__",
]

"""Columnar (struct-of-arrays) trace representation.

A million-invocation object :class:`~repro.traces.model.Trace` spends
most of its footprint on per-invocation ``Invocation`` instances and
interned name strings — roughly 100+ bytes each. Replaying at the
ROADMAP's month-long scale wants the transpose: one float64 array of
arrival times plus one int32 array of function-table indices, ~12
bytes per invocation, iterated in cache-friendly chunks.

:class:`ColumnarTrace` is that transpose. It is a *representation*
change only: :meth:`ColumnarTrace.from_trace` /
:meth:`ColumnarTrace.to_trace` round-trip losslessly, replay order is
the object trace's canonical ``(time_s, function_name)`` order, and
the simulator produces byte-identical metrics from either form (the
differential suite in ``tests/test_columnar_differential.py`` holds
the two paths to equal fingerprints).

Static per-function data lives once in a :class:`FunctionTable`:
parallel arrays of memory/warm/cold columns plus the interned
:class:`~repro.traces.model.TraceFunction` objects the object-based
simulator hooks expect.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.traces.model import Invocation, Trace, TraceFunction

__all__ = ["FunctionTable", "ColumnarTrace", "DEFAULT_CHUNK_INVOCATIONS"]

#: Default replay-chunk granularity: big enough to amortize the
#: per-chunk ``tolist`` and dispatch overhead, small enough that a
#: chunk of times + ids stays around a megabyte.
DEFAULT_CHUNK_INVOCATIONS = 65_536


class FunctionTable:
    """Static function characteristics as parallel columns.

    Row *i* describes the function with id *i*; invocation arrays
    refer to functions by these ids. Names are unique, and the
    column order is the insertion order of the functions given to the
    constructor (deterministic, never hash order).
    """

    def __init__(self, functions: Iterable[TraceFunction]) -> None:
        objects: List[TraceFunction] = []
        index: Dict[str, int] = {}
        for func in functions:
            if func.name in index:
                raise ValueError(f"duplicate function name {func.name!r}")
            index[func.name] = len(objects)
            objects.append(func)
        self._objects: Tuple[TraceFunction, ...] = tuple(objects)
        self._index = index
        self.names: Tuple[str, ...] = tuple(f.name for f in objects)
        self.memory_mb = np.array(
            [f.memory_mb for f in objects], dtype=np.float64
        )
        self.warm_time_s = np.array(
            [f.warm_time_s for f in objects], dtype=np.float64
        )
        self.cold_time_s = np.array(
            [f.cold_time_s for f in objects], dtype=np.float64
        )
        self.tenant_id = np.array(
            [f.tenant_id for f in objects], dtype=np.int32
        )

    def __len__(self) -> int:
        return len(self._objects)

    def index_of(self, name: str) -> int:
        return self._index[name]

    def object_of(self, function_id: int) -> TraceFunction:
        return self._objects[function_id]

    def objects(self) -> Tuple[TraceFunction, ...]:
        """The interned :class:`TraceFunction` row objects, by id."""
        return self._objects

    def as_dict(self) -> Dict[str, TraceFunction]:
        """Name-to-function mapping (the object ``Trace`` contract)."""
        return {f.name: f for f in self._objects}

    @property
    def has_tenants(self) -> bool:
        """True when any row carries a real (non-zero) tenant id."""
        return bool(self.tenant_id.size) and bool(np.any(self.tenant_id != 0))

    def __repr__(self) -> str:
        return f"FunctionTable(functions={len(self._objects)})"


class ColumnarTrace:
    """A replayable workload in struct-of-arrays form.

    ``times_s`` (float64) and ``function_ids`` (int32, indices into
    ``functions``) are parallel arrays in replay order. Replay order
    is the canonical object-trace order — ascending ``(time_s,
    function_name)`` — which :meth:`from_trace` inherits and direct
    constructions must provide (times are validated; tie order is the
    caller's contract, exactly as ``Trace`` trusts ``sorted``).
    """

    def __init__(
        self,
        functions: FunctionTable,
        times_s: np.ndarray,
        function_ids: np.ndarray,
        name: str = "trace",
    ) -> None:
        times_s = np.ascontiguousarray(times_s, dtype=np.float64)
        function_ids = np.ascontiguousarray(function_ids, dtype=np.int32)
        if times_s.shape != function_ids.shape or times_s.ndim != 1:
            raise ValueError(
                f"times and function ids must be parallel 1-D arrays, got "
                f"shapes {times_s.shape} and {function_ids.shape}"
            )
        if times_s.size:
            if float(times_s[0]) < 0.0:
                raise ValueError(
                    f"invocation times must be >= 0, got {times_s[0]}"
                )
            if np.any(times_s[1:] < times_s[:-1]):
                raise ValueError("invocation times must be non-decreasing")
            lo = int(function_ids.min())
            hi = int(function_ids.max())
            if lo < 0 or hi >= len(functions):
                raise ValueError(
                    f"function ids must be within [0, {len(functions)}), "
                    f"got range [{lo}, {hi}]"
                )
        self.name = name
        self.functions_table = functions
        self.times_s = times_s
        self.function_ids = function_ids

    # ------------------------------------------------------------------
    # Conversions (the differential-testing bridge)
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Transpose an object trace; replay order is preserved."""
        table = FunctionTable(trace.functions.values())
        invocations = trace.invocations
        times = np.fromiter(
            (inv.time_s for inv in invocations),
            dtype=np.float64,
            count=len(invocations),
        )
        ids = np.fromiter(
            (table.index_of(inv.function_name) for inv in invocations),
            dtype=np.int32,
            count=len(invocations),
        )
        return cls(table, times, ids, name=trace.name)

    def to_trace(self) -> Trace:
        """Materialize the object form (the differential oracle)."""
        names = self.functions_table.names
        return Trace(
            functions=self.functions_table.objects(),
            invocations=[
                Invocation(t, names[i])
                for t, i in zip(
                    self.times_s.tolist(), self.function_ids.tolist()
                )
            ],
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Replay access
    # ------------------------------------------------------------------

    def iter_chunks(
        self, chunk_invocations: int = DEFAULT_CHUNK_INVOCATIONS
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(times, function_ids)`` array views in replay order."""
        if chunk_invocations < 1:
            raise ValueError(
                f"chunk size must be >= 1, got {chunk_invocations}"
            )
        total = self.times_s.size
        for start in range(0, total, chunk_invocations):
            stop = min(start + chunk_invocations, total)
            yield self.times_s[start:stop], self.function_ids[start:stop]

    # ------------------------------------------------------------------
    # Object-Trace-compatible surface (what the simulator reads)
    # ------------------------------------------------------------------

    @property
    def functions(self) -> Dict[str, TraceFunction]:
        return self.functions_table.as_dict()

    @property
    def duration_s(self) -> float:
        if not self.times_s.size:
            return 0.0
        return float(self.times_s[-1]) - float(self.times_s[0])

    @property
    def num_functions(self) -> int:
        return len(self.functions_table)

    @property
    def has_tenants(self) -> bool:
        return self.functions_table.has_tenants

    def tenant_ids(self) -> Tuple[int, ...]:
        """Sorted distinct tenant ids (the object ``Trace`` contract)."""
        return tuple(
            int(t) for t in np.unique(self.functions_table.tenant_id)
        )

    @property
    def nbytes(self) -> int:
        """Bytes held by the invocation columns (~12 per invocation)."""
        return int(self.times_s.nbytes + self.function_ids.nbytes)

    def per_function_counts(self) -> Dict[str, int]:
        counts = np.bincount(
            self.function_ids, minlength=len(self.functions_table)
        )
        return {
            name: int(count)
            for name, count in zip(self.functions_table.names, counts.tolist())
        }

    def __len__(self) -> int:
        return int(self.times_s.size)

    def __repr__(self) -> str:
        return (
            f"ColumnarTrace(name={self.name!r}, "
            f"functions={len(self.functions_table)}, "
            f"invocations={self.times_s.size}, "
            f"nbytes={self.nbytes})"
        )

"""Workload traces: data model, synthetic Azure generator, samplers."""

from repro.traces.azure import (
    AzureApplication,
    AzureDataset,
    AzureFunctionRecord,
    AzureGeneratorConfig,
    generate_azure_dataset,
)
from repro.traces.io import (
    load_trace_csv,
    load_trace_json,
    save_trace_csv,
    save_trace_json,
)
from repro.traces.functionbench import (
    TABLE1_ROWS,
    functionbench_app,
    functionbench_apps,
)
from repro.traces.columnar import (
    DEFAULT_CHUNK_INVOCATIONS,
    ColumnarTrace,
    FunctionTable,
)
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.preprocess import (
    dataset_to_trace,
    minute_bucket_times,
    trace_function_from_record,
)
from repro.traces.sampling import (
    TABLE2_TARGET_RATES,
    make_paper_traces,
    random_sample,
    rare_sample,
    representative_sample,
    scale_trace_rate,
)
from repro.traces.streaming import STREAM_IAT_CHOICES_S, StreamingChurnTrace
from repro.traces.synth import (
    bursty_arrivals,
    cyclic_trace,
    figure8_trace,
    multitenant_trace,
    noisy_neighbor_trace,
    periodic_arrivals,
    skewed_frequency_trace,
    skewed_size_trace,
)

__all__ = [
    "AzureApplication",
    "AzureDataset",
    "AzureFunctionRecord",
    "AzureGeneratorConfig",
    "generate_azure_dataset",
    "TABLE1_ROWS",
    "load_trace_csv",
    "load_trace_json",
    "save_trace_csv",
    "save_trace_json",
    "functionbench_app",
    "functionbench_apps",
    "Invocation",
    "Trace",
    "TraceFunction",
    "ColumnarTrace",
    "FunctionTable",
    "DEFAULT_CHUNK_INVOCATIONS",
    "StreamingChurnTrace",
    "STREAM_IAT_CHOICES_S",
    "dataset_to_trace",
    "minute_bucket_times",
    "trace_function_from_record",
    "TABLE2_TARGET_RATES",
    "make_paper_traces",
    "random_sample",
    "rare_sample",
    "representative_sample",
    "scale_trace_rate",
    "bursty_arrivals",
    "cyclic_trace",
    "figure8_trace",
    "multitenant_trace",
    "noisy_neighbor_trace",
    "periodic_arrivals",
    "skewed_frequency_trace",
    "skewed_size_trace",
]

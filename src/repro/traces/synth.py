"""Synthetic litmus workloads for the OpenWhisk evaluation (Section 7.2).

Figure 7 uses three kinds of skewed workload traces — a skewed
*frequency* workload (one function invoked much more often than the
rest), a *cyclic* access pattern, and a skewed *size* workload (two
memory-size classes). Figure 8 uses the Table 1 FunctionBench
applications with the paper's stated inter-arrival times: 1500 ms for
the CNN, disk-bench, and web-serving functions and 400 ms for the
floating-point function.

All generators are deterministic given a seed: arrivals are periodic
with optional exponential jitter so container reuse patterns are
realistic rather than metronomic.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.traces.functionbench import functionbench_apps
from repro.traces.model import Invocation, Trace, TraceFunction

__all__ = [
    "periodic_arrivals",
    "bursty_arrivals",
    "skewed_frequency_trace",
    "cyclic_trace",
    "skewed_size_trace",
    "figure8_trace",
    "multitenant_trace",
    "noisy_neighbor_trace",
    "harvest_day_trace",
]


def periodic_arrivals(
    function_name: str,
    interarrival_s: float,
    duration_s: float,
    start_s: float = 0.0,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
) -> List[Invocation]:
    """Periodic arrivals with optional multiplicative exponential jitter.

    ``jitter`` of 0 gives exact periodicity; 1.0 gives a Poisson
    process with the same mean rate (each gap drawn exponentially).
    Intermediate values interpolate linearly between the two.
    """
    if interarrival_s <= 0:
        raise ValueError(f"interarrival must be positive, got {interarrival_s}")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be in [0, 1], got {jitter}")
    if jitter > 0 and rng is None:
        rng = random.Random(0)
    arrivals: List[Invocation] = []
    t = start_s
    while t < start_s + duration_s:
        arrivals.append(Invocation(t, function_name))
        gap = interarrival_s
        if jitter > 0:
            exponential = rng.expovariate(1.0 / interarrival_s)
            gap = (1.0 - jitter) * interarrival_s + jitter * exponential
        t += max(gap, 1e-6)
    return arrivals


def bursty_arrivals(
    function_name: str,
    burst_rate_per_s: float,
    burst_duration_s: float,
    idle_duration_s: float,
    total_duration_s: float,
    start_s: float = 0.0,
    rng: Optional[random.Random] = None,
) -> List[Invocation]:
    """On/off (interrupted-Poisson) arrivals: Poisson bursts separated
    by idle gaps.

    FaaS workloads are bursty, not just diurnal — the controller and
    keep-alive experiments need arrival processes whose short-term
    rate departs violently from the mean. Burst and idle lengths are
    exponential with the given means; within a burst, arrivals are
    Poisson at ``burst_rate_per_s``.
    """
    if burst_rate_per_s <= 0:
        raise ValueError("burst rate must be positive")
    if burst_duration_s <= 0 or idle_duration_s < 0:
        raise ValueError("durations must be positive (idle may be zero)")
    rng = rng if rng is not None else random.Random(0)
    arrivals: List[Invocation] = []
    t = start_s
    end = start_s + total_duration_s
    while t < end:
        burst_end = t + rng.expovariate(1.0 / burst_duration_s)
        while t < min(burst_end, end):
            arrivals.append(Invocation(t, function_name))
            t += rng.expovariate(burst_rate_per_s)
        if idle_duration_s > 0:
            t = burst_end + rng.expovariate(1.0 / idle_duration_s)
        else:
            t = burst_end
    return arrivals


def skewed_frequency_trace(
    duration_s: float = 7200.0,
    hot_interarrival_s: float = 0.4,
    cold_interarrival_s: float = 1.5,
    jitter: float = 0.3,
    seed: int = 42,
) -> Trace:
    """One function invoked far more frequently than the others.

    Mirrors the paper's skewed-frequency workload: the floating-point
    function arrives every 400 ms while the CNN, disk-bench, and
    web-serving functions arrive every 1500 ms.
    """
    rng = random.Random(seed)
    apps = functionbench_apps()
    hot = apps["floating-point"]
    cold_names = ("ml-inference-cnn", "disk-bench-dd", "web-serving")
    invocations = periodic_arrivals(
        hot.name, hot_interarrival_s, duration_s, jitter=jitter, rng=rng
    )
    for name in cold_names:
        invocations += periodic_arrivals(
            name,
            cold_interarrival_s,
            duration_s,
            start_s=rng.uniform(0, cold_interarrival_s),
            jitter=jitter,
            rng=rng,
        )
    functions = [hot] + [apps[name] for name in cold_names]
    return Trace(functions, invocations, name="skewed-frequency")


def cyclic_trace(
    num_functions: int = 12,
    cycle_gap_s: float = 2.0,
    num_cycles: int = 400,
    memory_choices_mb: Sequence[float] = (128.0, 256.0, 384.0, 512.0),
    init_choices_s: Sequence[float] = (4.0, 3.0, 2.0, 1.0),
    warm_time_s: float = 0.5,
    seed: int = 42,
) -> Trace:
    """A strict cyclic access pattern: f0, f1, ..., fN-1, f0, f1, ...

    Cyclic access is the classic LRU-adversarial pattern: when the
    cache is smaller than the working set, LRU misses every access.
    The cycle's functions are *heterogeneous* (sizes and init costs
    drawn round-robin from the choice lists, deliberately out of
    phase), so value-aware policies like Greedy-Dual can pin the
    high-value subset (small and expensive-to-initialize functions)
    while recency-only policies thrash.

    With identical functions, Greedy-Dual provably degenerates to LRU
    (equal value terms leave only the clock), so heterogeneity is what
    makes this workload discriminating.
    """
    if num_functions < 2:
        raise ValueError("a cycle needs at least 2 functions")
    functions = [
        TraceFunction(
            name=f"cyclic-{i:03d}",
            memory_mb=memory_choices_mb[i % len(memory_choices_mb)],
            warm_time_s=warm_time_s,
            cold_time_s=warm_time_s + init_choices_s[i % len(init_choices_s)],
        )
        for i in range(num_functions)
    ]
    invocations: List[Invocation] = []
    t = 0.0
    for __ in range(num_cycles):
        for func in functions:
            invocations.append(Invocation(t, func.name))
            t += cycle_gap_s
    return Trace(functions, invocations, name="cyclic")


def skewed_size_trace(
    duration_s: float = 7200.0,
    interarrival_s: float = 1.0,
    num_small: int = 6,
    num_large: int = 6,
    small_mb: float = 128.0,
    large_mb: float = 1024.0,
    warm_time_s: float = 0.5,
    init_time_s: float = 2.0,
    jitter: float = 0.3,
    seed: int = 42,
) -> Trace:
    """Two memory-size classes with equal request rates.

    Size-aware policies shine here: evicting one large container frees
    as much memory as evicting eight small ones, at the same future
    cold-start cost.
    """
    rng = random.Random(seed)
    functions: List[TraceFunction] = []
    for i in range(num_small):
        functions.append(
            TraceFunction(
                name=f"small-{i:03d}",
                memory_mb=small_mb,
                warm_time_s=warm_time_s,
                cold_time_s=warm_time_s + init_time_s,
            )
        )
    for i in range(num_large):
        functions.append(
            TraceFunction(
                name=f"large-{i:03d}",
                memory_mb=large_mb,
                warm_time_s=warm_time_s,
                cold_time_s=warm_time_s + init_time_s,
            )
        )
    invocations: List[Invocation] = []
    for func in functions:
        invocations += periodic_arrivals(
            func.name,
            interarrival_s * len(functions),
            duration_s,
            start_s=rng.uniform(0, interarrival_s * len(functions)),
            jitter=jitter,
            rng=rng,
        )
    return Trace(functions, invocations, name="skewed-size")


def figure8_trace(
    duration_s: float = 7200.0,
    jitter: float = 0.2,
    seed: int = 42,
) -> Trace:
    """The Figure 8 foreground workload: Table 1 apps at the paper's rates.

    CNN, disk-bench (dd), and web-serving arrive every 1500 ms; the
    floating-point function arrives every 400 ms. The paper replays
    this against a 48 GB server for two hours.
    """
    return skewed_frequency_trace(
        duration_s=duration_s,
        hot_interarrival_s=0.4,
        cold_interarrival_s=1.5,
        jitter=jitter,
        seed=seed,
    )


#: Background-tenant classes for :func:`multitenant_trace`: memory MB
#: mapped to (init time s, base inter-arrival s). Large functions are
#: cheap to initialize but frequent; small ones expensive but rarer —
#: the recency-vs-value contradiction of real Azure-style populations
#: (Section 2.1: sizes and rates vary by orders of magnitude).
_TENANT_CLASSES = {
    64.0: (6.0, 25.0),
    128.0: (5.0, 30.0),
    256.0: (4.0, 40.0),
    512.0: (2.0, 20.0),
    1024.0: (1.0, 12.0),
    2048.0: (0.5, 15.0),
}


def multitenant_trace(
    duration_s: float = 7200.0,
    num_tenants: int = 48,
    tenant_warm_time_s: float = 0.4,
    jitter: float = 0.15,
    seed: int = 7,
) -> Trace:
    """The Figure 8 workload on a realistically shared server.

    The paper measures the four Table 1 foreground functions on an
    invoker that — per Section 3.1 — concurrently runs hundreds of
    other short-lived functions. This trace combines
    :func:`figure8_trace` with ``num_tenants`` heterogeneous
    background tenants drawn from Azure-like size/cost/frequency
    classes, producing the sustained memory pressure under which the
    keep-alive policy choice decides who stays warm.
    """
    rng = random.Random(seed)
    foreground = figure8_trace(duration_s=duration_s, jitter=jitter, seed=seed)
    functions: List[TraceFunction] = list(foreground.functions.values())
    invocations: List[Invocation] = list(foreground.invocations)
    classes = list(_TENANT_CLASSES.items())
    for i in range(num_tenants):
        memory_mb, (init_s, base_iat_s) = classes[i % len(classes)]
        function = TraceFunction(
            name=f"tenant-{i:02d}-{int(memory_mb)}mb",
            memory_mb=memory_mb,
            warm_time_s=tenant_warm_time_s,
            cold_time_s=tenant_warm_time_s + init_s,
        )
        functions.append(function)
        iat = base_iat_s * rng.uniform(0.8, 1.2)
        invocations += periodic_arrivals(
            function.name,
            iat,
            duration_s,
            start_s=rng.uniform(0, iat),
            jitter=jitter,
            rng=rng,
        )
    return Trace(functions, invocations, name="fig8-multitenant")


def noisy_neighbor_trace(
    duration_s: float = 3600.0,
    num_victims: int = 24,
    num_attacker_functions: int = 8,
    attacker_memory_mb: float = 512.0,
    victim_memory_mb: float = 128.0,
    victim_interarrival_s: float = 120.0,
    victim_init_s: float = 2.0,
    burst_rate_per_s: float = 4.0,
    burst_duration_s: float = 90.0,
    idle_duration_s: float = 60.0,
    jitter: float = 0.2,
    seed: int = 11,
) -> Trace:
    """One bursty tenant attacking a long tail of small tenants.

    The multi-tenancy litmus workload (docs/multi-tenancy.md): tenant
    ``1`` — the *noisy neighbor* — owns ``num_attacker_functions``
    large functions driven by on/off Poisson bursts, while tenants
    ``2..num_victims+1`` each own a single small function with slow
    periodic arrivals and an expensive cold start. In a ``shared``
    pool the attacker's bursts flood the warm pool and evict the
    victims between their arrivals; under ``quota`` the attacker goes
    over its soft limit and becomes preferentially evictable, so the
    victims keep their containers. Jain's fairness index over
    per-tenant hit ratios quantifies the gap (gated by the
    ``tenant-fairness`` CI job).

    Deterministic given ``seed``; tenant id 0 is never used so the
    trace always reads as tenant-carrying.
    """
    if num_victims < 1:
        raise ValueError(f"need at least one victim, got {num_victims}")
    if num_attacker_functions < 1:
        raise ValueError(
            f"need at least one attacker function, got {num_attacker_functions}"
        )
    rng = random.Random(seed)
    functions: List[TraceFunction] = []
    invocations: List[Invocation] = []
    for i in range(num_attacker_functions):
        function = TraceFunction(
            name=f"attacker-{i:03d}",
            memory_mb=attacker_memory_mb,
            warm_time_s=0.2,
            cold_time_s=0.7,
            tenant_id=1,
        )
        functions.append(function)
        invocations += bursty_arrivals(
            function.name,
            burst_rate_per_s=burst_rate_per_s,
            burst_duration_s=burst_duration_s,
            idle_duration_s=idle_duration_s,
            total_duration_s=duration_s,
            start_s=rng.uniform(0.0, burst_duration_s),
            rng=rng,
        )
    for i in range(num_victims):
        function = TraceFunction(
            name=f"victim-{i:03d}",
            memory_mb=victim_memory_mb,
            warm_time_s=0.2,
            cold_time_s=0.2 + victim_init_s,
            tenant_id=i + 2,
        )
        functions.append(function)
        invocations += periodic_arrivals(
            function.name,
            victim_interarrival_s,
            duration_s,
            start_s=rng.uniform(0.0, victim_interarrival_s),
            jitter=jitter,
            rng=rng,
        )
    return Trace(functions, invocations, name="noisy-neighbor")


def harvest_day_trace(
    duration_s: float = 3600.0,
    num_steady: int = 24,
    num_bursty: int = 6,
    steady_interarrival_s: float = 20.0,
    burst_rate_per_s: float = 3.0,
    burst_duration_s: float = 60.0,
    idle_duration_s: float = 120.0,
    jitter: float = 0.2,
    seed: int = 13,
) -> Trace:
    """The harvested-capacity litmus workload (docs/robustness.md).

    A server living on harvested/spot resources sees its memory shrink
    and grow underneath a *full* warm pool — so this trace is built to
    keep the pool full: ``num_steady`` heterogeneous functions (sizes
    and init costs from the Azure-like tenant classes) arrive steadily
    enough that each stays warm between invocations, plus
    ``num_bursty`` larger on/off functions whose bursts re-fill any
    memory a harvest shrink reclaimed. Replayed with a harvest/spot
    :class:`~repro.faults.FaultSpec`, every shrink must deflate
    gracefully (victim-order evictions, deferral while busy) rather
    than raise a ``CapacityError`` — the property the ``chaos-replay``
    CI job pins byte-for-byte.

    Deterministic given ``seed``; functions carry no tenant ids so the
    workload composes with any tenant mode.
    """
    if num_steady < 1:
        raise ValueError(f"need at least one steady function, got {num_steady}")
    if num_bursty < 0:
        raise ValueError(f"bursty count must be >= 0, got {num_bursty}")
    rng = random.Random(seed)
    classes = list(_TENANT_CLASSES.items())
    functions: List[TraceFunction] = []
    invocations: List[Invocation] = []
    for i in range(num_steady):
        memory_mb, (init_s, __) = classes[i % len(classes)]
        function = TraceFunction(
            name=f"steady-{i:03d}",
            memory_mb=memory_mb,
            warm_time_s=0.3,
            cold_time_s=0.3 + init_s,
        )
        functions.append(function)
        iat = steady_interarrival_s * rng.uniform(0.7, 1.3)
        invocations += periodic_arrivals(
            function.name,
            iat,
            duration_s,
            start_s=rng.uniform(0.0, iat),
            jitter=jitter,
            rng=rng,
        )
    for i in range(num_bursty):
        function = TraceFunction(
            name=f"bursty-{i:03d}",
            memory_mb=768.0,
            warm_time_s=0.2,
            cold_time_s=1.0,
        )
        functions.append(function)
        invocations += bursty_arrivals(
            function.name,
            burst_rate_per_s=burst_rate_per_s,
            burst_duration_s=burst_duration_s,
            idle_duration_s=idle_duration_s,
            total_duration_s=duration_s,
            start_s=rng.uniform(0.0, burst_duration_s + idle_duration_s),
            rng=rng,
        )
    return Trace(functions, invocations, name="harvest-day")

"""Synthetic Azure-Functions-like dataset generator.

The paper's trace-driven evaluation (Section 7) replays samples of the
Azure Functions 2019 trace [Shahrad et al.]. That dataset is not
available offline, so this module generates a statistically faithful
synthetic equivalent in the *same format* the real dataset uses —
per-function invocation counts in minute-wide buckets over one day,
per-function average/maximum execution durations, and per-application
memory allocations — so the paper's exact preprocessing pipeline
(:mod:`repro.traces.preprocess`) applies unchanged.

The generator reproduces the workload properties the paper's analysis
hinges on (Sections 2.1 and 3):

* **Heavy-tailed popularity** — per-function daily invocation counts
  are log-normal with a multi-decade spread, so "inter-arrival times
  ... vary by more than three orders of magnitude" and a few heavy
  hitters dominate total volume.
* **Heavy-tailed memory** — per-application memory is log-normal
  across roughly two orders of magnitude.
* **Diurnal dynamism** — arrival rates follow a sinusoidal day profile
  with the paper's "peak is about 2x the average" property.
* **Cold-start overheads** — the maximum duration exceeds the average
  duration by a heavy-tailed margin, which the paper's preprocessing
  turns into the cold-start penalty (max - avg).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "AzureFunctionRecord",
    "AzureApplication",
    "AzureDataset",
    "AzureGeneratorConfig",
    "generate_azure_dataset",
]

MINUTES_PER_DAY = 1440


@dataclass(frozen=True)
class AzureFunctionRecord:
    """One function's row in the (synthetic) Azure dataset."""

    function_id: str
    app_id: str
    #: Invocation count per minute bucket over the captured day.
    minute_counts: Tuple[int, ...]
    avg_duration_ms: float
    max_duration_ms: float

    @property
    def total_invocations(self) -> int:
        return sum(self.minute_counts)

    def __post_init__(self) -> None:
        if self.max_duration_ms < self.avg_duration_ms:
            raise ValueError(
                f"function {self.function_id}: max duration must be >= avg"
            )


@dataclass(frozen=True)
class AzureApplication:
    """An application: a memory allocation shared by its functions."""

    app_id: str
    memory_mb: float
    function_ids: Tuple[str, ...]


class AzureDataset:
    """A day of synthetic Azure Functions data."""

    def __init__(
        self,
        functions: Sequence[AzureFunctionRecord],
        applications: Sequence[AzureApplication],
    ) -> None:
        self.functions: Dict[str, AzureFunctionRecord] = {
            f.function_id: f for f in functions
        }
        self.applications: Dict[str, AzureApplication] = {
            a.app_id: a for a in applications
        }
        for app in applications:
            for fid in app.function_ids:
                if fid not in self.functions:
                    raise ValueError(
                        f"app {app.app_id} references unknown function {fid}"
                    )

    @property
    def num_functions(self) -> int:
        return len(self.functions)

    def app_of(self, function_id: str) -> AzureApplication:
        app_id = self.functions[function_id].app_id
        return self.applications[app_id]

    def total_invocations(self) -> int:
        return sum(f.total_invocations for f in self.functions.values())

    def functions_by_popularity(self) -> List[AzureFunctionRecord]:
        """Functions sorted by total invocations, rarest first."""
        return sorted(self.functions.values(), key=lambda f: f.total_invocations)

    def __repr__(self) -> str:
        return (
            f"AzureDataset(functions={self.num_functions}, "
            f"apps={len(self.applications)}, "
            f"invocations={self.total_invocations()})"
        )


@dataclass(frozen=True)
class AzureGeneratorConfig:
    """Knobs of the synthetic generator; defaults match the paper's
    qualitative description of the Azure workload."""

    num_functions: int = 2000
    minutes: int = MINUTES_PER_DAY
    #: Log-normal daily invocation counts: exp(mu) is the median.
    popularity_median: float = 8.0
    popularity_sigma: float = 2.2
    max_daily_invocations: int = 300_000
    #: Log-normal per-application memory (MB).
    memory_median_mb: float = 170.0
    memory_sigma: float = 1.1
    memory_min_mb: float = 64.0
    memory_max_mb: float = 4096.0
    #: Log-normal average (warm) durations (ms).
    duration_median_ms: float = 400.0
    duration_sigma: float = 1.4
    duration_min_ms: float = 10.0
    duration_max_ms: float = 120_000.0
    #: Log-normal cold-start overhead (max - avg duration, ms); scaled
    #: by a weak power of the app memory (bigger images, longer inits).
    overhead_median_ms: float = 400.0
    overhead_sigma: float = 1.0
    overhead_min_ms: float = 50.0
    overhead_max_ms: float = 30_000.0
    overhead_memory_exponent: float = 0.4
    #: Diurnal modulation amplitude: 1.0 makes the peak 2x the mean.
    diurnal_amplitude: float = 1.0
    #: Mean functions per application (geometric distribution).
    mean_app_size: float = 1.8


def _lognormal(
    rng: np.random.Generator,
    median: float,
    sigma: float,
    size: int,
    low: float,
    high: float,
) -> np.ndarray:
    values = rng.lognormal(mean=np.log(median), sigma=sigma, size=size)
    return np.clip(values, low, high)


def generate_azure_dataset(
    config: AzureGeneratorConfig | None = None,
    seed: int = 0,
) -> AzureDataset:
    """Generate one synthetic day of Azure-like FaaS workload.

    Deterministic for a given (config, seed).

    >>> dataset = generate_azure_dataset(AzureGeneratorConfig(num_functions=50), seed=1)
    >>> dataset.num_functions
    50
    """
    if config is None:
        config = AzureGeneratorConfig()
    rng = np.random.default_rng(seed)
    n = config.num_functions

    # --- Applications: geometric sizes, functions assigned in order.
    app_sizes: List[int] = []
    remaining = n
    p = 1.0 / max(config.mean_app_size, 1.0)
    while remaining > 0:
        size = min(int(rng.geometric(p)), remaining)
        app_sizes.append(size)
        remaining -= size
    app_memories = _lognormal(
        rng,
        config.memory_median_mb,
        config.memory_sigma,
        len(app_sizes),
        config.memory_min_mb,
        config.memory_max_mb,
    )

    # --- Per-function marginals.
    daily_counts = _lognormal(
        rng,
        config.popularity_median,
        config.popularity_sigma,
        n,
        1.0,
        float(config.max_daily_invocations),
    )
    avg_durations = _lognormal(
        rng,
        config.duration_median_ms,
        config.duration_sigma,
        n,
        config.duration_min_ms,
        config.duration_max_ms,
    )
    overheads = _lognormal(
        rng,
        config.overhead_median_ms,
        config.overhead_sigma,
        n,
        config.overhead_min_ms,
        config.overhead_max_ms,
    )

    # --- Diurnal minute weights, shared day shape with per-function
    # phase jitter (individual workloads peak at slightly different
    # times, but the aggregate stays strongly diurnal).
    minutes = np.arange(config.minutes)
    phase_jitter = rng.normal(0.0, 45.0, size=n)  # minutes
    functions: List[AzureFunctionRecord] = []
    applications: List[AzureApplication] = []

    func_index = 0
    for app_index, size in enumerate(app_sizes):
        app_id = f"app-{app_index:05d}"
        function_ids: List[str] = []
        for __ in range(size):
            i = func_index
            function_id = f"fn-{i:05d}"
            weights = 1.0 + config.diurnal_amplitude * np.sin(
                2.0 * np.pi * (minutes - 480.0 - phase_jitter[i]) / MINUTES_PER_DAY
            )
            weights = np.maximum(weights, 0.0)
            weights_sum = weights.sum()
            if weights_sum <= 0:
                weights = np.ones_like(weights)
                weights_sum = weights.sum()
            expected = daily_counts[i] * weights / weights_sum
            counts = rng.poisson(expected)
            avg_ms = float(avg_durations[i])
            overhead_scale = float(
                (app_memories[app_index] / config.memory_median_mb)
                ** config.overhead_memory_exponent
            )
            max_ms = avg_ms + float(overheads[i]) * overhead_scale
            functions.append(
                AzureFunctionRecord(
                    function_id=function_id,
                    app_id=app_id,
                    minute_counts=tuple(int(c) for c in counts),
                    avg_duration_ms=avg_ms,
                    max_duration_ms=max_ms,
                )
            )
            function_ids.append(function_id)
            func_index += 1
        applications.append(
            AzureApplication(
                app_id=app_id,
                memory_mb=float(app_memories[app_index]),
                function_ids=tuple(function_ids),
            )
        )
    return AzureDataset(functions, applications)

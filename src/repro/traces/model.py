"""Workload trace data model.

A *trace* is what the keep-alive simulator replays: a time-ordered
sequence of invocations, each referring to a function with known
memory footprint, warm running time, and cold-start overhead. This
mirrors the serialized format of the original FaasCache simulator
(``LambdaData`` plus timestamped invocation lists) while staying
independent of any particular source (synthetic Azure-like traces,
FunctionBench models, or hand-built litmus workloads).

All times are in **seconds**; memory is in **megabytes**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

__all__ = ["TraceFunction", "Invocation", "Trace"]


@dataclass(frozen=True)
class TraceFunction:
    """Static characteristics of one serverless function.

    Equivalent to the original simulator's ``LambdaData``: a name, the
    memory a container for it occupies, and its warm and cold running
    times. ``cold_time`` includes the initialization overhead, so the
    cold-start *penalty* is ``cold_time - warm_time``.

    ``tenant_id`` identifies the function's owner in multi-tenant
    workloads (docs/multi-tenancy.md). Tenant ``0`` means *untenanted*
    — the pre-tenancy single-owner world — and is the default, so every
    existing trace constructor, serialized file, and columnar layout
    keeps working unchanged. Real tenants are positive integers.
    """

    name: str
    memory_mb: float
    warm_time_s: float
    cold_time_s: float
    tenant_id: int = 0

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError(
                f"function {self.name!r}: memory must be positive, "
                f"got {self.memory_mb}"
            )
        if self.tenant_id < 0:
            raise ValueError(
                f"function {self.name!r}: tenant_id must be >= 0, "
                f"got {self.tenant_id}"
            )
        if self.warm_time_s < 0 or self.cold_time_s < 0:
            raise ValueError(
                f"function {self.name!r}: running times must be non-negative"
            )
        if self.cold_time_s < self.warm_time_s:
            raise ValueError(
                f"function {self.name!r}: cold time ({self.cold_time_s}) "
                f"must be >= warm time ({self.warm_time_s})"
            )

    @property
    def init_time_s(self) -> float:
        """Initialization overhead: the cost a cold start pays."""
        return self.cold_time_s - self.warm_time_s


@dataclass(frozen=True, order=True)
class Invocation:
    """One function invocation request at an absolute time."""

    time_s: float
    function_name: str

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"invocation time must be >= 0, got {self.time_s}")


class Trace:
    """A replayable workload: functions plus time-ordered invocations.

    Invocations are sorted by time at construction so replay order is
    deterministic regardless of how the trace was assembled.
    """

    def __init__(
        self,
        functions: Iterable[TraceFunction],
        invocations: Iterable[Invocation],
        name: str = "trace",
    ) -> None:
        self.name = name
        self._functions: Dict[str, TraceFunction] = {}
        for func in functions:
            if func.name in self._functions:
                raise ValueError(f"duplicate function name {func.name!r}")
            self._functions[func.name] = func
        self._invocations: List[Invocation] = sorted(invocations)
        missing = {
            inv.function_name
            for inv in self._invocations
            if inv.function_name not in self._functions
        }
        if missing:
            raise ValueError(
                f"invocations reference unknown functions: {sorted(missing)[:5]}"
            )

    @property
    def functions(self) -> Dict[str, TraceFunction]:
        """Mapping from function name to its static characteristics."""
        return dict(self._functions)

    @property
    def invocations(self) -> Sequence[Invocation]:
        return tuple(self._invocations)

    def function(self, name: str) -> TraceFunction:
        return self._functions[name]

    def __len__(self) -> int:
        return len(self._invocations)

    def __iter__(self) -> Iterator[Invocation]:
        return iter(self._invocations)

    @property
    def duration_s(self) -> float:
        """Time span from the first to the last invocation."""
        if not self._invocations:
            return 0.0
        return self._invocations[-1].time_s - self._invocations[0].time_s

    @property
    def num_functions(self) -> int:
        return len(self._functions)

    def arrival_rate(self) -> float:
        """Average invocations per second over the trace duration."""
        duration = self.duration_s
        if duration <= 0:
            return 0.0
        return len(self._invocations) / duration

    def mean_interarrival_s(self) -> float:
        """Mean inter-arrival time across *all* invocations (Table 2)."""
        if len(self._invocations) < 2:
            return 0.0
        return self.duration_s / (len(self._invocations) - 1)

    def per_function_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {name: 0 for name in self._functions}
        for inv in self._invocations:
            counts[inv.function_name] += 1
        return counts

    def tenant_ids(self) -> Tuple[int, ...]:
        """Sorted distinct tenant ids appearing in this trace."""
        return tuple(sorted({f.tenant_id for f in self._functions.values()}))

    @property
    def has_tenants(self) -> bool:
        """True when any function carries a real (non-zero) tenant id.

        The simulator uses this once-per-run flag to decide whether to
        record per-tenant metrics and attach ``tenant`` event fields;
        tenant-less traces take exactly the legacy code path, keeping
        their event streams and fingerprints byte-identical.
        """
        return any(f.tenant_id != 0 for f in self._functions.values())

    def restrict(self, function_names: Iterable[str], name: str | None = None) -> "Trace":
        """A sub-trace containing only the given functions' invocations."""
        keep = set(function_names)
        unknown = keep - set(self._functions)
        if unknown:
            raise ValueError(f"unknown functions: {sorted(unknown)[:5]}")
        return Trace(
            functions=[self._functions[n] for n in sorted(keep)],
            invocations=[
                inv for inv in self._invocations if inv.function_name in keep
            ],
            name=name or f"{self.name}-restricted",
        )

    def shifted(self, offset_s: float, name: str | None = None) -> "Trace":
        """The same trace with every invocation moved by ``offset_s``."""
        return Trace(
            functions=self._functions.values(),
            invocations=[
                Invocation(inv.time_s + offset_s, inv.function_name)
                for inv in self._invocations
            ],
            name=name or self.name,
        )

    def truncated(self, end_s: float, name: str | None = None) -> "Trace":
        """Only invocations at or before ``end_s``."""
        return Trace(
            functions=self._functions.values(),
            invocations=[inv for inv in self._invocations if inv.time_s <= end_s],
            name=name or f"{self.name}-truncated",
        )

    def merged_with(self, other: "Trace", name: str | None = None) -> "Trace":
        """Union of two traces; shared function names must agree exactly."""
        for fname, func in other._functions.items():
            if fname in self._functions and self._functions[fname] != func:
                raise ValueError(
                    f"function {fname!r} differs between merged traces"
                )
        functions = dict(self._functions)
        functions.update(other._functions)
        return Trace(
            functions=functions.values(),
            invocations=list(self._invocations) + list(other._invocations),
            name=name or f"{self.name}+{other.name}",
        )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, functions={self.num_functions}, "
            f"invocations={len(self._invocations)})"
        )

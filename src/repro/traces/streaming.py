"""Streaming synthetic trace generation.

A full-day, million-invocation synthetic workload never needs to
exist in memory at once: each function's arrival process is an
independent seeded stream, so the whole trace is a deterministic
*merge* of per-function streams that can be produced chunk by chunk.

:class:`StreamingChurnTrace` generates the benchmark churn workload
(periodic per-function arrivals with seeded inter-arrival jitter, the
same shape as :func:`repro.bench.churn_trace`) that way:

* every function owns a :class:`random.Random` seeded from
  ``(seed, function index)``, so its arrival stream is independent of
  every other function's and of the chunk size;
* a heap merges the per-function streams into global
  ``(time, function name)`` replay order — the object ``Trace``'s
  canonical sort order — holding one pending arrival per function;
* :meth:`chunks` yields columnar ``(times, function_ids)`` arrays of
  at most ``chunk_invocations`` entries, so peak memory is
  ``O(num_functions + chunk_invocations)`` regardless of duration.

Iteration is restartable: every :meth:`chunks` call reseeds the
per-function streams, so two passes (or a pass after a fallback)
yield byte-identical arrivals. :meth:`materialize` concatenates the
chunks into a :class:`~repro.traces.columnar.ColumnarTrace` — the
differential-testing bridge, sensible only at small scale.
"""

from __future__ import annotations

import heapq
import random
from typing import Iterator, List, Tuple

import numpy as np

from repro.traces.columnar import ColumnarTrace, FunctionTable
from repro.traces.model import TraceFunction

__all__ = ["StreamingChurnTrace", "STREAM_IAT_CHOICES_S"]

#: Per-function inter-arrival choices (seconds), as in the benchmark
#: churn workload: a short-IAT majority that stays warm under keep-
#: alive and a long-IAT tail that expires between arrivals.
STREAM_IAT_CHOICES_S = (60.0, 120.0, 240.0, 480.0, 960.0)

#: Multiplier decorrelating per-function stream seeds from the trace
#: seed (a large prime, so adjacent trace seeds share no streams).
_STREAM_SEED_STRIDE = 1_000_003


class StreamingChurnTrace:
    """Chunked generator for the churn workload at unbounded scale."""

    def __init__(
        self,
        num_functions: int = 1620,
        duration_s: float = 9600.0,
        seed: int = 0,
        chunk_invocations: int = 65_536,
        memory_mb: float = 128.0,
        warm_time_s: float = 0.2,
        cold_time_s: float = 1.2,
        name: str = "stream-churn",
        num_tenants: int = 0,
    ) -> None:
        if num_functions < 1:
            raise ValueError(
                f"need at least one function, got {num_functions}"
            )
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        if chunk_invocations < 1:
            raise ValueError(
                f"chunk size must be >= 1, got {chunk_invocations}"
            )
        if num_tenants < 0:
            raise ValueError(
                f"num_tenants must be >= 0, got {num_tenants}"
            )
        self.num_functions = num_functions
        self.num_tenants = num_tenants
        self.duration_s = duration_s
        self.seed = seed
        self.chunk_invocations = chunk_invocations
        self.name = name
        # Zero-padded names make (time, function id) merge order equal
        # the object trace's (time, function name) sort order.
        width = len(str(num_functions - 1)) if num_functions > 1 else 1
        # num_tenants > 0 deals functions round-robin to tenants
        # 1..num_tenants (0 is reserved for "untenanted"); the default
        # of 0 keeps every function untenanted and the generated
        # arrivals byte-identical to the pre-tenancy streams — tenant
        # assignment never perturbs the seeded arrival RNGs.
        self.functions_table = FunctionTable(
            TraceFunction(
                name=f"{name}-{i:0{width}d}",
                memory_mb=memory_mb,
                warm_time_s=warm_time_s,
                cold_time_s=cold_time_s,
                tenant_id=(i % num_tenants) + 1 if num_tenants else 0,
            )
            for i in range(num_functions)
        )

    @property
    def functions(self):
        """Name-to-function mapping (the object ``Trace`` contract)."""
        return self.functions_table.as_dict()

    def _streams(self) -> List[Tuple[float, int, float, random.Random]]:
        """Fresh per-function stream states: (next_t, id, iat, rng)."""
        heap: List[Tuple[float, int, float, random.Random]] = []
        for i in range(self.num_functions):
            rng = random.Random(self.seed * _STREAM_SEED_STRIDE + i)
            iat = STREAM_IAT_CHOICES_S[
                rng.randrange(len(STREAM_IAT_CHOICES_S))
            ]
            t = rng.uniform(0.0, iat)
            if t < self.duration_s:
                heap.append((round(t, 6), i, iat, rng))
        heapq.heapify(heap)
        return heap

    def chunks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(times, function_ids)`` arrays in replay order.

        Restartable: every call regenerates the same arrivals from the
        per-function seeds.
        """
        heap = self._streams()
        chunk = self.chunk_invocations
        times: List[float] = []
        ids: List[int] = []
        while heap:
            t, i, iat, rng = heapq.heappop(heap)
            times.append(t)
            ids.append(i)
            # Advance from the emitted (rounded) time, so the stream
            # is a pure function of the per-function seed and restarts
            # reproduce it exactly.
            nxt = t + iat * rng.uniform(0.7, 1.3)
            if nxt < self.duration_s:
                heapq.heappush(heap, (round(nxt, 6), i, iat, rng))
            if len(times) >= chunk:
                yield (
                    np.array(times, dtype=np.float64),
                    np.array(ids, dtype=np.int32),
                )
                times = []
                ids = []
        if times:
            yield (
                np.array(times, dtype=np.float64),
                np.array(ids, dtype=np.int32),
            )

    def materialize(self) -> ColumnarTrace:
        """Concatenate all chunks (small-scale differential oracle)."""
        times: List[np.ndarray] = []
        ids: List[np.ndarray] = []
        for chunk_times, chunk_ids in self.chunks():
            times.append(chunk_times)
            ids.append(chunk_ids)
        if not times:
            times = [np.empty(0, dtype=np.float64)]
            ids = [np.empty(0, dtype=np.int32)]
        return ColumnarTrace(
            self.functions_table,
            np.concatenate(times),
            np.concatenate(ids),
            name=self.name,
        )

    def __repr__(self) -> str:
        return (
            f"StreamingChurnTrace(name={self.name!r}, "
            f"functions={self.num_functions}, "
            f"duration_s={self.duration_s}, seed={self.seed})"
        )

"""The paper's Azure-trace preprocessing pipeline.

Section 7, "Adapting the Azure Functions Trace", lists the exact rules
used to turn the raw dataset into a replayable workload; this module
implements each of them:

1. Use the first day's data; **drop functions with fewer than two
   invocations** (never-reused functions tell keep-alive policies
   nothing).
2. The trace provides memory at the *application* level, so **split
   the application's memory allocation evenly** among its functions.
3. Invocations come in minute-wide buckets. A minute with one
   invocation injects it **at the beginning of the minute**; a minute
   with several spaces them **equally throughout the minute**.
4. The **cold-start overhead is estimated as maximum minus average
   runtime**; the average runtime is the warm running time, so the
   cold running time equals the maximum runtime.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.traces.azure import AzureDataset, AzureFunctionRecord
from repro.traces.model import Invocation, Trace, TraceFunction

__all__ = [
    "minute_bucket_times",
    "trace_function_from_record",
    "dataset_to_trace",
]

_MINUTE_S = 60.0
_MS_PER_S = 1000.0


def minute_bucket_times(minute_index: int, count: int) -> List[float]:
    """Injection times (seconds) for ``count`` invocations in one minute.

    One invocation lands at the beginning of the minute; several are
    spaced equally throughout it (Section 7).

    >>> minute_bucket_times(2, 1)
    [120.0]
    >>> minute_bucket_times(0, 3)
    [0.0, 20.0, 40.0]
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    start = minute_index * _MINUTE_S
    if count == 0:
        return []
    if count == 1:
        return [start]
    spacing = _MINUTE_S / count
    return [start + i * spacing for i in range(count)]


def trace_function_from_record(
    record: AzureFunctionRecord,
    functions_in_app: int,
    app_memory_mb: float,
) -> TraceFunction:
    """Apply the memory-split and cold-overhead rules to one function."""
    if functions_in_app < 1:
        raise ValueError("an application must contain at least one function")
    memory_mb = max(app_memory_mb / functions_in_app, 1.0)
    warm_time_s = record.avg_duration_ms / _MS_PER_S
    cold_time_s = record.max_duration_ms / _MS_PER_S
    return TraceFunction(
        name=record.function_id,
        memory_mb=memory_mb,
        warm_time_s=warm_time_s,
        cold_time_s=cold_time_s,
    )


def dataset_to_trace(
    dataset: AzureDataset,
    function_ids: Optional[Iterable[str]] = None,
    name: str = "azure",
    min_invocations: int = 2,
) -> Trace:
    """Build a replayable trace from (a subset of) an Azure dataset.

    ``function_ids`` restricts the trace to a sample (as the paper's
    RARE / REPRESENTATIVE / RANDOM workloads do); by default every
    function with at least ``min_invocations`` invocations is included.
    """
    if function_ids is None:
        selected = list(dataset.functions)
    else:
        selected = list(function_ids)
        unknown = [fid for fid in selected if fid not in dataset.functions]
        if unknown:
            raise ValueError(f"unknown function ids: {unknown[:5]}")

    trace_functions: List[TraceFunction] = []
    invocations: List[Invocation] = []
    for fid in selected:
        record = dataset.functions[fid]
        if record.total_invocations < min_invocations:
            continue
        app = dataset.applications[record.app_id]
        trace_functions.append(
            trace_function_from_record(record, len(app.function_ids), app.memory_mb)
        )
        for minute_index, count in enumerate(record.minute_counts):
            for t in minute_bucket_times(minute_index, count):
                invocations.append(Invocation(t, fid))
    return Trace(trace_functions, invocations, name=name)

"""FunctionBench application models (Table 1 of the paper).

The paper's empirical evaluation (Section 7.2) drives the FaasCache
OpenWhisk implementation with applications from the FunctionBench
suite [Kim & Lee 2019]. Table 1 gives their complete resource and
timing characteristics — memory footprint, total running time, and
initialization time — which is everything the keep-alive policies and
our simulated invoker consume.

Table 1 reports the *total* running time (initialization plus actual
execution, Section 3), so the warm running time is the difference
between the run-time and init-time columns.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.traces.model import TraceFunction

__all__ = [
    "TABLE1_ROWS",
    "functionbench_apps",
    "functionbench_app",
]

#: (name, memory MB, total run time s, init time s) — Table 1 verbatim.
TABLE1_ROWS: Tuple[Tuple[str, float, float, float], ...] = (
    ("ml-inference-cnn", 512.0, 6.5, 4.5),
    ("video-encoding", 500.0, 56.0, 3.0),
    ("matrix-multiply", 256.0, 2.5, 2.2),
    ("disk-bench-dd", 256.0, 2.2, 1.8),
    ("web-serving", 64.0, 2.4, 2.0),
    ("floating-point", 128.0, 2.0, 1.7),
)


def functionbench_apps() -> Dict[str, TraceFunction]:
    """All six Table 1 applications, keyed by name.

    >>> apps = functionbench_apps()
    >>> apps["ml-inference-cnn"].init_time_s
    4.5
    """
    apps: Dict[str, TraceFunction] = {}
    for name, memory_mb, run_time_s, init_time_s in TABLE1_ROWS:
        apps[name] = TraceFunction(
            name=name,
            memory_mb=memory_mb,
            warm_time_s=run_time_s - init_time_s,
            cold_time_s=run_time_s,
        )
    return apps


def functionbench_app(name: str) -> TraceFunction:
    """One Table 1 application by name."""
    apps = functionbench_apps()
    try:
        return apps[name]
    except KeyError:
        raise ValueError(
            f"unknown FunctionBench app {name!r}; available: {sorted(apps)}"
        ) from None

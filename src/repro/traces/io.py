"""Trace serialization.

The original artifact serialized Azure trace samples into pickle files
consumed by the simulator. We provide an equivalent, but in two
portable formats instead of raw pickles:

* **JSON** — one self-describing document with the function table and
  the invocation list; convenient and versioned.
* **CSV pair** — ``<stem>.functions.csv`` and
  ``<stem>.invocations.csv``; convenient for spreadsheets and other
  tools.

Both round-trip exactly (function order, invocation timestamps to
full float precision via JSON/CSV decimal repr).
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Union

from repro.traces.model import Invocation, Trace, TraceFunction

__all__ = ["save_trace_json", "load_trace_json", "save_trace_csv", "load_trace_csv"]

_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def save_trace_json(trace: Trace, path: PathLike) -> None:
    """Write a trace as one JSON document."""
    document = {
        "format": "repro-trace",
        "version": _FORMAT_VERSION,
        "name": trace.name,
        # tenant_id is written only when non-zero, so tenant-less
        # traces serialize byte-identically to the pre-tenancy format
        # (and old readers never see an unknown key).
        "functions": [
            {
                "name": f.name,
                "memory_mb": f.memory_mb,
                "warm_time_s": f.warm_time_s,
                "cold_time_s": f.cold_time_s,
                **({"tenant_id": f.tenant_id} if f.tenant_id else {}),
            }
            for f in trace.functions.values()
        ],
        "invocations": [
            [inv.time_s, inv.function_name] for inv in trace.invocations
        ],
    }
    pathlib.Path(path).write_text(json.dumps(document))


def load_trace_json(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_trace_json`."""
    document = json.loads(pathlib.Path(path).read_text())
    if document.get("format") != "repro-trace":
        raise ValueError(f"{path}: not a repro trace file")
    if document.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported trace version {document.get('version')}"
        )
    functions = [
        TraceFunction(
            name=f["name"],
            memory_mb=f["memory_mb"],
            warm_time_s=f["warm_time_s"],
            cold_time_s=f["cold_time_s"],
            tenant_id=int(f.get("tenant_id", 0)),
        )
        for f in document["functions"]
    ]
    invocations = [
        Invocation(time_s, name) for time_s, name in document["invocations"]
    ]
    return Trace(functions, invocations, name=document.get("name", "trace"))


def _csv_paths(stem: PathLike) -> tuple:
    stem = pathlib.Path(stem)
    return (
        stem.with_suffix(".functions.csv"),
        stem.with_suffix(".invocations.csv"),
    )


def save_trace_csv(trace: Trace, stem: PathLike) -> None:
    """Write ``<stem>.functions.csv`` and ``<stem>.invocations.csv``."""
    functions_path, invocations_path = _csv_paths(stem)
    # The tenant column appears only for tenant-carrying traces, so
    # tenant-less exports stay byte-identical to the pre-tenancy CSVs.
    tenants = trace.has_tenants
    with open(functions_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["name", "memory_mb", "warm_time_s", "cold_time_s"]
        if tenants:
            header.append("tenant_id")
        writer.writerow(header)
        for f in trace.functions.values():
            row = [
                f.name, repr(f.memory_mb), repr(f.warm_time_s), repr(f.cold_time_s)
            ]
            if tenants:
                row.append(str(f.tenant_id))
            writer.writerow(row)
    with open(invocations_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", "function_name"])
        for inv in trace.invocations:
            writer.writerow([repr(inv.time_s), inv.function_name])


def load_trace_csv(stem: PathLike, name: str = "trace") -> Trace:
    """Read a trace written by :func:`save_trace_csv`."""
    functions_path, invocations_path = _csv_paths(stem)
    functions = []
    with open(functions_path, newline="") as handle:
        for row in csv.DictReader(handle):
            functions.append(
                TraceFunction(
                    name=row["name"],
                    memory_mb=float(row["memory_mb"]),
                    warm_time_s=float(row["warm_time_s"]),
                    cold_time_s=float(row["cold_time_s"]),
                    tenant_id=int(row.get("tenant_id") or 0),
                )
            )
    invocations = []
    with open(invocations_path, newline="") as handle:
        for row in csv.DictReader(handle):
            invocations.append(
                Invocation(float(row["time_s"]), row["function_name"])
            )
    return Trace(functions, invocations, name=name)

"""Loader for the real Azure Functions 2019 dataset CSV format.

The paper's workloads come from the public Azure Functions trace
(``AzureFunctionsDataset2019``). Our synthetic generator stands in for
it offline, but users who have downloaded the real dataset can load it
here and run the exact pipeline the paper used. The schema, per the
dataset's documentation:

* **invocations** (``invocations_per_function_md.anon.d01.csv``):
  ``HashOwner, HashApp, HashFunction, Trigger, 1, 2, ..., 1440`` —
  per-minute invocation counts over one day.
* **durations** (``function_durations_percentiles.anon.d01.csv``):
  ``HashOwner, HashApp, HashFunction, Average, Count, Minimum,
  Maximum, percentile_* ...`` — execution times in milliseconds.
* **memory** (``app_memory_percentiles.anon.d01.csv``):
  ``HashOwner, HashApp, SampleCount, AverageAllocatedMb,
  AverageAllocatedMb_pct* ...`` — memory at the *application* level.

The loader joins the three files into an :class:`AzureDataset`, after
which everything downstream — the paper's preprocessing rules, the
samplers, the simulator — applies unchanged. Functions missing
duration or memory rows are dropped (the dataset's own documentation
notes the joins are partial); the returned report says how many.
"""

from __future__ import annotations

import csv
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.traces.azure import (
    AzureApplication,
    AzureDataset,
    AzureFunctionRecord,
    MINUTES_PER_DAY,
)

__all__ = ["AzureCsvLoadReport", "load_azure_dataset_csv"]

PathLike = Union[str, pathlib.Path]

#: Default per-application memory when the memory file lacks the app.
DEFAULT_APP_MEMORY_MB = 170.0


@dataclass(frozen=True)
class AzureCsvLoadReport:
    """What the join kept and dropped."""

    functions_loaded: int
    functions_without_durations: int
    apps_without_memory: int

    @property
    def total_seen(self) -> int:
        return self.functions_loaded + self.functions_without_durations


def _function_key(row: Dict[str, str]) -> Tuple[str, str, str]:
    return (row["HashOwner"], row["HashApp"], row["HashFunction"])


def _read_rows(path: PathLike) -> List[Dict[str, str]]:
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def load_azure_dataset_csv(
    invocations_csv: PathLike,
    durations_csv: PathLike,
    memory_csv: PathLike,
    minutes: int = MINUTES_PER_DAY,
) -> Tuple[AzureDataset, AzureCsvLoadReport]:
    """Join one day of the real Azure trace into an AzureDataset.

    Returns the dataset plus a load report. Raises ``ValueError`` on
    files that do not match the documented schema.
    """
    invocation_rows = _read_rows(invocations_csv)
    duration_rows = _read_rows(durations_csv)
    memory_rows = _read_rows(memory_csv)
    if not invocation_rows:
        raise ValueError(f"{invocations_csv}: no invocation rows")
    required = {"HashOwner", "HashApp", "HashFunction"}
    if not required <= set(invocation_rows[0]):
        raise ValueError(
            f"{invocations_csv}: missing columns {required - set(invocation_rows[0])}"
        )

    durations: Dict[Tuple[str, str, str], Tuple[float, float]] = {}
    for row in duration_rows:
        try:
            avg = float(row["Average"])
            maximum = float(row["Maximum"])
        except (KeyError, ValueError) as exc:
            raise ValueError(
                f"{durations_csv}: bad duration row ({exc})"
            ) from None
        if avg <= 0:
            continue
        durations[_function_key(row)] = (avg, max(maximum, avg))

    app_memory: Dict[Tuple[str, str], float] = {}
    for row in memory_rows:
        try:
            memory = float(row["AverageAllocatedMb"])
        except (KeyError, ValueError) as exc:
            raise ValueError(f"{memory_csv}: bad memory row ({exc})") from None
        if memory > 0:
            app_memory[(row["HashOwner"], row["HashApp"])] = memory

    minute_columns = [str(i) for i in range(1, minutes + 1)]
    functions: List[AzureFunctionRecord] = []
    app_functions: Dict[Tuple[str, str], List[str]] = {}
    dropped_durations = 0
    for row in invocation_rows:
        key = _function_key(row)
        if key not in durations:
            dropped_durations += 1
            continue
        counts = tuple(
            int(float(row.get(col, "0") or "0")) for col in minute_columns
        )
        avg_ms, max_ms = durations[key]
        function_id = "-".join(key)
        app_key = (key[0], key[1])
        functions.append(
            AzureFunctionRecord(
                function_id=function_id,
                app_id=f"{key[0]}-{key[1]}",
                minute_counts=counts,
                avg_duration_ms=avg_ms,
                max_duration_ms=max_ms,
            )
        )
        app_functions.setdefault(app_key, []).append(function_id)

    apps_without_memory = 0
    applications: List[AzureApplication] = []
    for app_key, function_ids in app_functions.items():
        memory = app_memory.get(app_key)
        if memory is None:
            apps_without_memory += 1
            memory = DEFAULT_APP_MEMORY_MB
        applications.append(
            AzureApplication(
                app_id=f"{app_key[0]}-{app_key[1]}",
                memory_mb=memory,
                function_ids=tuple(function_ids),
            )
        )

    dataset = AzureDataset(functions, applications)
    report = AzureCsvLoadReport(
        functions_loaded=len(functions),
        functions_without_durations=dropped_durations,
        apps_without_memory=apps_without_memory,
    )
    return dataset, report

"""Trace samplers reproducing the paper's three evaluation workloads.

Section 7 evaluates keep-alive policies on three samples of the Azure
trace, replayed at server-level intensities (Table 2):

* **RARE** — 1000 of the rarest, most infrequently invoked functions
  (sampled from the rarest quartile, matching the artifact's
  ``gen_rare.py``); ~30 requests/s, mean IAT 36 ms.
* **REPRESENTATIVE** — 400 functions sampled evenly from each
  popularity quartile, yielding higher diversity; ~190 requests/s,
  mean IAT 5.4 ms.
* **RANDOM** — 200 functions sampled uniformly; ~600 requests/s, mean
  IAT 1.8 ms.

The Table 2 request rates are far above the natural day-long rates of
such samples; :func:`scale_trace_rate` can time-compress a trace to a
target rate while preserving the relative reuse structure. Keep-alive
*policy comparisons* (Figures 5 and 6), however, must replay in
natural time: the 10-minute TTL baseline only expires containers when
real inter-arrival times straddle 600 s, so compression would erase
exactly the effect the paper measures. ``make_paper_traces`` therefore
does **not** compress by default — pass ``TABLE2_TARGET_RATES`` as
``target_rates`` to reproduce the Table 2 load intensities.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.traces.azure import AzureDataset
from repro.traces.model import Invocation, Trace
from repro.traces.preprocess import dataset_to_trace

__all__ = [
    "rare_sample",
    "representative_sample",
    "random_sample",
    "scale_trace_rate",
    "make_paper_traces",
    "TABLE2_TARGET_RATES",
]

#: Requests per second of each Table 2 workload.
TABLE2_TARGET_RATES: Dict[str, float] = {
    "representative": 190.0,
    "rare": 30.0,
    "random": 600.0,
}


def _reused_functions(dataset: AzureDataset) -> List[str]:
    """Function ids with at least two invocations, rarest first."""
    return [
        record.function_id
        for record in dataset.functions_by_popularity()
        if record.total_invocations >= 2
    ]


def rare_sample(
    dataset: AzureDataset,
    n: int = 1000,
    rarest_fraction: float = 0.25,
    seed: int = 0,
) -> List[str]:
    """A random sample of ``n`` functions from the rarest quartile."""
    if not 0.0 < rarest_fraction <= 1.0:
        raise ValueError(f"rarest_fraction must be in (0, 1], got {rarest_fraction}")
    candidates = _reused_functions(dataset)
    pool_size = max(int(len(candidates) * rarest_fraction), 1)
    pool = candidates[:pool_size]
    rng = random.Random(seed)
    if n >= len(pool):
        return list(pool)
    return rng.sample(pool, n)


def representative_sample(
    dataset: AzureDataset,
    n: int = 400,
    seed: int = 0,
) -> List[str]:
    """``n`` functions sampled evenly from each popularity quartile."""
    candidates = _reused_functions(dataset)
    if not candidates:
        return []
    rng = random.Random(seed)
    quartile = max(len(candidates) // 4, 1)
    per_quartile = n // 4
    sample: List[str] = []
    for q in range(4):
        lo = q * quartile
        hi = len(candidates) if q == 3 else (q + 1) * quartile
        pool = candidates[lo:hi]
        take = min(per_quartile, len(pool))
        sample += rng.sample(pool, take)
    # Top up from the whole population if quartiles were too small.
    if len(sample) < n:
        chosen = set(sample)
        leftovers = [fid for fid in candidates if fid not in chosen]
        take = min(n - len(sample), len(leftovers))
        sample += rng.sample(leftovers, take)
    return sample


def random_sample(
    dataset: AzureDataset,
    n: int = 200,
    seed: int = 0,
) -> List[str]:
    """``n`` functions sampled uniformly from all reused functions."""
    candidates = _reused_functions(dataset)
    rng = random.Random(seed)
    if n >= len(candidates):
        return list(candidates)
    return rng.sample(candidates, n)


def scale_trace_rate(trace: Trace, target_rate_per_s: float) -> Trace:
    """Time-compress (or dilate) a trace to a target request rate.

    Timestamps are multiplied by ``current_rate / target_rate``, which
    preserves arrival order and relative gaps exactly.
    """
    if target_rate_per_s <= 0:
        raise ValueError(f"target rate must be positive, got {target_rate_per_s}")
    current = trace.arrival_rate()
    if current <= 0:
        return trace
    factor = current / target_rate_per_s
    first = trace.invocations[0].time_s if len(trace) else 0.0
    return Trace(
        functions=trace.functions.values(),
        invocations=[
            Invocation((inv.time_s - first) * factor, inv.function_name)
            for inv in trace.invocations
        ],
        name=trace.name,
    )


def make_paper_traces(
    dataset: AzureDataset,
    sizes: Optional[Dict[str, int]] = None,
    target_rates: Optional[Dict[str, float]] = None,
    seed: int = 0,
) -> Dict[str, Trace]:
    """Build the three Table 2 workloads from a dataset.

    ``sizes`` overrides the per-workload function counts (paper
    defaults: rare 1000, representative 400, random 200); pass smaller
    values for quick experiments. ``target_rates`` maps workload name
    to a requests-per-second replay rate (e.g. ``TABLE2_TARGET_RATES``);
    by default traces replay in natural (uncompressed) time.
    """
    sizes = dict(sizes or {})
    rates = target_rates or {}
    samples = {
        "rare": rare_sample(dataset, n=sizes.get("rare", 1000), seed=seed),
        "representative": representative_sample(
            dataset, n=sizes.get("representative", 400), seed=seed
        ),
        "random": random_sample(dataset, n=sizes.get("random", 200), seed=seed),
    }
    traces: Dict[str, Trace] = {}
    for name, function_ids in samples.items():
        trace = dataset_to_trace(dataset, function_ids, name=name)
        rate = rates.get(name)
        if rate is not None:
            trace = scale_trace_rate(trace, rate)
        traces[name] = trace
    return traces

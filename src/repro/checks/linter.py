"""Driver for the determinism & invariant linter (rules FC001-FC011).

The analysis itself lives in three sibling modules — this file only
orchestrates the two phases and owns the CLI:

* :mod:`repro.checks.dataflow` — phase 1: each file is parsed once
  and reduced to a JSON-serializable ``ModuleSummary`` (set-typed
  constants/attributes/returns, counter definitions, concurrency
  imports). Purely syntactic; never imports the sources it reads.
* :mod:`repro.checks.callgraph` — phase 2 support: resolved call
  edges, async reachability, public-entry-point counts.
* :mod:`repro.checks.rules` — the rule registry; each rule is one
  module under ``rules/`` plugged into the shared
  :class:`~repro.checks.rules.base.FileEngine` walk.

The driver adds the parts a lint *run* needs: file discovery, noqa
suppression (with a typo guard — a noqa naming an unknown ``FCxxx``
code is itself reported as FC000), the incremental cache
(:mod:`repro.checks.cache`), SARIF output (:mod:`repro.checks.sarif`),
and the ``--fix`` autofixer (:mod:`repro.checks.fixes`).
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import pathlib
import re
import sys
from dataclasses import dataclass, field
from typing import (
    Any,
    Collection,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.checks.cache import DEFAULT_CACHE_PATH, CheckCache
from repro.checks.callgraph import CallGraph
from repro.checks.dataflow import (
    ModuleSummary,
    ProjectIndex,
    module_name_for,
    summarize_module,
)
from repro.checks.rules import (
    ALL_RULES,
    NOQA_GUARD_CODE,
    RULES,
    FileEngine,
    Finding,
)
from repro.checks.rules.base import NOQA_RE, line_suppresses

__all__ = [
    "RULES",
    "Finding",
    "CheckResult",
    "check_paths",
    "format_finding",
    "iter_python_files",
    "module_name_for",
    "main",
]

#: Kept under the old private names for in-repo callers.
_NOQA_RE = NOQA_RE
_PRAGMA_RE = re.compile(r"#\s*repro-checks-module:\s*([\w.]+)")

#: Directory fragment excluded from directory walks by default: the
#: deliberately-rule-breaking lint fixtures must not fail the
#: self-clean CI run (tests address them file-by-file instead).
_FIXTURE_FRAGMENT = "fixtures/checks"

_FC_CODE_RE = re.compile(r"^FC\d+$")


@dataclass
class CheckResult:
    """Everything one linter run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def counts_by_code(self, suppressed: bool = False) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.suppressed if suppressed else self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return out

    def stats_dict(self, include_cache: bool = True) -> Dict[str, Any]:
        """The ``--stats-json`` payload. CI diffs the cold and warm
        runs on this minus the ``cache`` section, so everything else
        in here must be run-order and cache-state independent."""
        payload: Dict[str, Any] = {
            "files_checked": self.files_checked,
            "findings": len(self.findings),
            "suppressed": len(self.suppressed),
            "findings_by_rule": dict(
                sorted(self.counts_by_code().items())
            ),
            "suppressed_by_rule": dict(
                sorted(self.counts_by_code(suppressed=True).items())
            ),
            "rules": sorted(RULES),
        }
        if include_cache:
            payload["cache"] = {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hit_rate, 4),
            }
        return payload


def format_finding(finding: Finding) -> str:
    text = (
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.code} {finding.message}"
    )
    if finding.hint:
        text += f" [fix: {finding.hint}]"
    return text


# ----------------------------------------------------------------------
# File discovery
# ----------------------------------------------------------------------


def iter_python_files(
    paths: Sequence[Union[str, pathlib.Path]],
    include_fixtures: bool = False,
) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Directory walks skip ``__pycache__``, hidden directories, and (by
    default) the deliberately-broken lint fixtures; explicitly-named
    files are always included.
    """
    out: List[pathlib.Path] = []
    seen: Set[pathlib.Path] = set()

    def _add(path: pathlib.Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            out.append(path)

    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            _add(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            posix = candidate.as_posix()
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") for part in candidate.parts):
                continue
            if not include_fixtures and _FIXTURE_FRAGMENT in posix:
                continue
            _add(candidate)
    return out


# ----------------------------------------------------------------------
# The two-phase run
# ----------------------------------------------------------------------


@dataclass
class _FileState:
    """Per-file progress through the phases; ``source``/``tree`` stay
    ``None`` on a full cache hit — the warm path never reads the file."""

    path: pathlib.Path
    digest: Optional[str] = None
    source: Optional[str] = None
    tree: Optional[ast.Module] = None
    summary: Optional[ModuleSummary] = None


def _finding_to_dict(finding: Finding) -> Dict[str, Any]:
    # Path deliberately omitted: it is re-attached from the current
    # run's spelling of the path, keeping cache entries relocatable.
    return {
        "line": finding.line,
        "col": finding.col,
        "code": finding.code,
        "message": finding.message,
    }


def _finding_from_dict(path: str, data: Dict[str, Any]) -> Finding:
    return Finding(
        path=path,
        line=int(data["line"]),
        col=int(data["col"]),
        code=str(data["code"]),
        message=str(data["message"]),
    )


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"not hashable into the environment: {obj!r}")


def _environment_hash(
    index: ProjectIndex,
    graph: CallGraph,
    select: Optional[Collection[str]],
) -> str:
    """Hash of every cross-file fact findings may depend on.

    Built from the position-independent ``identity_facts`` so a pure
    line-shift edit in one file does not invalidate the cached
    findings of any other file.
    """
    facts = {
        "rules": {code: list(RULES[code]) for code in sorted(RULES)},
        "select": sorted(select) if select is not None else None,
        "modules": [
            summary.identity_facts()
            for summary in sorted(
                index.summaries, key=lambda s: s.path
            )
        ],
        "graph": graph.identity_facts(),
    }
    blob = json.dumps(facts, sort_keys=True, default=_jsonable)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _noqa_guard_findings(
    lines: List[str], path: str, select: Optional[Collection[str]]
) -> List[Finding]:
    """FC000 for every noqa comment naming a nonexistent FC code —
    such a comment suppresses nothing, silently, forever."""
    if select is not None and NOQA_GUARD_CODE not in select:
        return []
    out: List[Finding] = []
    for lineno, line in enumerate(lines, start=1):
        match = NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            continue
        for code in re.split(r"[,\s]+", codes):
            upper = code.strip().upper()
            if _FC_CODE_RE.match(upper) and upper not in RULES:
                out.append(
                    Finding(
                        path=path,
                        line=lineno,
                        col=match.start(),
                        code=NOQA_GUARD_CODE,
                        message=(
                            f"noqa references unknown rule code "
                            f"{upper}; it suppresses nothing "
                            "(typo?)"
                        ),
                    )
                )
    return out


def _is_suppressed(
    finding: Finding, lines: Optional[List[str]]
) -> bool:
    if finding.code == NOQA_GUARD_CODE:
        return False  # the guard must survive the line it polices
    if lines is None or not 1 <= finding.line <= len(lines):
        return False
    return line_suppresses(lines[finding.line - 1], finding.code)


def _sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.code)


def check_paths(
    paths: Sequence[Union[str, pathlib.Path]],
    select: Optional[Collection[str]] = None,
    include_fixtures: bool = False,
    cache: Optional[CheckCache] = None,
) -> CheckResult:
    """Lint every Python file under ``paths``; the package's main API.

    ``select`` restricts the run to a subset of rule codes; ``cache``
    (a :class:`~repro.checks.cache.CheckCache`) enables the
    incremental fast path — the caller owns ``cache.save()``.
    Returns a :class:`CheckResult`; ``result.ok`` is the gate.
    """
    files = iter_python_files(paths, include_fixtures=include_fixtures)
    states: List[_FileState] = []
    file_findings: List[Finding] = []  # FC000 I/O + syntax, never cached

    # Phase 1: summaries (cache layer: content hash -> summary).
    for path in files:
        state = _FileState(path=path)
        try:
            if cache is not None:
                state.digest, source = cache.file_hash(path)
                state.source = source
            else:
                state.source = path.read_text()
        except OSError as exc:
            file_findings.append(
                Finding(
                    str(path), 1, 0, NOQA_GUARD_CODE,
                    f"unreadable: {exc}",
                )
            )
            continue
        cached_summary = (
            cache.summary(state.digest)
            if cache is not None and state.digest is not None
            else None
        )
        if cached_summary is not None:
            state.summary = ModuleSummary.from_dict(cached_summary)
            state.summary.path = str(path)
        else:
            if state.source is None:
                try:
                    state.source = path.read_text()
                except OSError as exc:
                    file_findings.append(
                        Finding(
                            str(path), 1, 0, NOQA_GUARD_CODE,
                            f"unreadable: {exc}",
                        )
                    )
                    continue
            try:
                state.tree = ast.parse(
                    state.source, filename=str(path)
                )
            except SyntaxError as exc:
                file_findings.append(
                    Finding(
                        str(path),
                        exc.lineno or 1,
                        (exc.offset or 1) - 1,
                        NOQA_GUARD_CODE,
                        f"syntax error: {exc.msg}",
                    )
                )
                continue
            state.summary = summarize_module(
                state.tree, path, state.source
            )
            if cache is not None and state.digest is not None:
                cache.store_summary(
                    state.digest, state.summary.to_dict()
                )
        states.append(state)

    # Phase 2: the project-wide index and call graph.
    index = ProjectIndex(
        [state.summary for state in states if state.summary is not None]
    )
    graph = CallGraph(index)
    env_hash = (
        _environment_hash(index, graph, select)
        if cache is not None
        else ""
    )

    # Phase 3: per-file findings (cache layer: content+env hash).
    all_findings: List[Finding] = []
    all_suppressed: List[Finding] = []
    lines_by_path: Dict[str, List[str]] = {}
    for state in states:
        assert state.summary is not None
        cached = (
            cache.findings(state.digest, env_hash)
            if cache is not None and state.digest is not None
            else None
        )
        path_str = str(state.path)
        if cached is not None:
            findings = [
                _finding_from_dict(path_str, item)
                for item in cached["findings"]
            ]
            suppressed = [
                _finding_from_dict(path_str, item)
                for item in cached["suppressed"]
            ]
        else:
            if state.source is None:
                try:
                    state.source = state.path.read_text()
                except OSError as exc:
                    file_findings.append(
                        Finding(
                            path_str, 1, 0, NOQA_GUARD_CODE,
                            f"unreadable: {exc}",
                        )
                    )
                    continue
            if state.tree is None:
                # The summary cache proved this content parses.
                state.tree = ast.parse(
                    state.source, filename=path_str
                )
            engine = FileEngine(
                state.summary, index, graph, ALL_RULES, select
            )
            raw = engine.run(state.tree)
            lines = state.source.splitlines()
            raw += _noqa_guard_findings(lines, path_str, select)
            findings, suppressed = [], []
            for finding in sorted(raw, key=_sort_key):
                if _is_suppressed(finding, lines):
                    suppressed.append(finding)
                else:
                    findings.append(finding)
            if cache is not None and state.digest is not None:
                cache.store_findings(
                    state.digest,
                    env_hash,
                    [_finding_to_dict(item) for item in findings],
                    [_finding_to_dict(item) for item in suppressed],
                )
        if state.source is not None:
            lines_by_path[path_str] = state.source.splitlines()
        all_findings.extend(findings)
        all_suppressed.extend(suppressed)

    # Project-level rules (FC005): cheap, recomputed every run.
    for rule in ALL_RULES:
        for finding in rule.check_project(index.symbols):
            if select is not None and finding.code not in select:
                continue
            lines_opt = lines_by_path.get(finding.path)
            if lines_opt is None:
                try:
                    lines_opt = (
                        pathlib.Path(finding.path)
                        .read_text()
                        .splitlines()
                    )
                    lines_by_path[finding.path] = lines_opt
                except OSError:
                    lines_opt = None
            if _is_suppressed(finding, lines_opt):
                all_suppressed.append(finding)
            else:
                all_findings.append(finding)

    all_findings.extend(file_findings)
    result = CheckResult(files_checked=len(states))
    result.findings = sorted(all_findings, key=_sort_key)
    result.suppressed = sorted(all_suppressed, key=_sort_key)
    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
    return result


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.checks``)."""
    parser = argparse.ArgumentParser(
        prog="repro-checks",
        description=(
            "determinism & invariant linter for the FaasCache "
            "reproduction (rules FC001-FC011; see "
            "docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="FC001,FC002,...",
        help="only run these rule codes",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help="also lint the deliberately-broken fixtures under "
        "tests/fixtures/checks/",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule counts, including suppressed (noqa) findings",
    )
    parser.add_argument(
        "--stats-json",
        metavar="PATH",
        help="write machine-readable run stats (rule counts, "
        "suppressions, files analyzed, cache hit rate) to PATH",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write findings to PATH instead of stdout",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply the mechanical autofixes (FC008 mutable defaults, "
        "FC007 float equality) before linting",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental result cache",
    )
    parser.add_argument(
        "--cache-path",
        metavar="PATH",
        default=DEFAULT_CACHE_PATH,
        help=f"incremental cache location (default: {DEFAULT_CACHE_PATH})",
    )
    args = parser.parse_args(argv)
    select = (
        {code.strip().upper() for code in args.select.split(",")}
        if args.select
        else None
    )

    if args.fix:
        from repro.checks.fixes import fix_paths

        targets = iter_python_files(
            args.paths, include_fixtures=args.include_fixtures
        )
        fixed = fix_paths(targets, select=select)
        for path, count in sorted(fixed.items()):
            print(f"fixed {count} issue(s) in {path}")

    cache: Optional[CheckCache] = None
    if not args.no_cache:
        cache = CheckCache(pathlib.Path(args.cache_path))
    result = check_paths(
        args.paths,
        select=select,
        include_fixtures=args.include_fixtures,
        cache=cache,
    )
    if cache is not None:
        cache.save()

    sarif_to_stdout = args.format == "sarif" and not args.output
    if args.format == "sarif":
        from repro.checks.sarif import to_sarif

        rendered = json.dumps(
            to_sarif(result.findings, result.suppressed), indent=2
        )
        if args.output:
            pathlib.Path(args.output).write_text(rendered + "\n")
        else:
            print(rendered)
    else:
        lines = [format_finding(f) for f in result.findings]
        if args.output:
            pathlib.Path(args.output).write_text(
                "".join(line + "\n" for line in lines)
            )
        else:
            for line in lines:
                print(line)

    if args.stats_json:
        pathlib.Path(args.stats_json).write_text(
            json.dumps(result.stats_dict(), indent=2, sort_keys=True)
            + "\n"
        )
    if args.stats and not sarif_to_stdout:
        for label, suppressed in (("findings", False), ("suppressed", True)):
            counts = result.counts_by_code(suppressed=suppressed)
            rendered = (
                ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
                or "none"
            )
            print(f"{label} by rule: {rendered}")
    if not sarif_to_stdout:
        print(
            f"checked {result.files_checked} files: "
            f"{len(result.findings)} finding(s), "
            f"{len(result.suppressed)} suppressed"
        )
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

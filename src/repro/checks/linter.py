"""`repro.checks` — the determinism & invariant static-analysis pass.

A standalone, ruff-plugin-style AST linter with rules tuned to the
invariants this reproduction's credibility rests on: seeded replays
must be byte-identical serial vs. parallel (FaasCache, ASPLOS 2021 is
only believable if the simulator is deterministic), the Azure-trace
methodology (Shahrad et al., ATC 2020) demands replayable experiments,
and the observability/robustness layers promise that every traced
event type stays mirrored across ``SimulationMetrics`` /
``TraceReport`` / ``SweepPoint`` and that nothing crossing the sweep
process boundary is unpicklable.

Rule catalog (full rationale in ``docs/static-analysis.md``):

========  ============================================================
``FC001``  wall-clock reads (``time.time``/``time.monotonic``/
           ``datetime.now`` ...) in the deterministic modules
           (``repro.sim``/``core``/``cluster``/``faults``);
           ``repro.core.clock`` is the one sanctioned definer.
``FC002``  global / unseeded RNG (module-level ``random.*`` calls,
           legacy ``np.random.*``, argument-less ``random.Random()``)
           in simulation paths — randomness must flow through a
           seeded ``Random``/``Generator`` instance.
``FC003``  iteration over a bare ``set()``/``frozenset()``/set
           literal without ``sorted(...)`` in a deterministic path,
           iteration over a *variable* known to hold a set (assigned
           from a set expression, ``Set[...]``-annotated, or a
           ``.get(..., set())`` default), and membership sets rebuilt
           per loop iteration.
``FC004``  event-name string literals passed to ``Tracer.emit`` (or
           any ``.emit("...")`` call) that are not registered in
           ``repro.obs.events.EVENT_SCHEMAS`` — typo'd event types
           die at lint time, not in a flaky replay test.
``FC005``  lifecycle-counter drift: the key set of
           ``SimulationMetrics.counters()`` must equal
           ``TraceReport.counters()``, every key must be a real
           dataclass field, and ``SweepPoint`` must carry them. The
           per-tenant half mirrors this: both classes must define
           ``tenant_counters()`` with identical inner keys and
           ``SweepPoint`` must carry a ``tenant_counters`` snapshot.
``FC006``  ``lambda``/local-function values in dataclass field
           defaults or in arguments shipped to
           ``run_sweep_parallel`` (pickle safety; the parent-side
           ``progress=`` callback is exempt).
``FC007``  float ``==``/``!=`` comparisons in sim/policy code
           (priority math) — compare with a tolerance instead.
``FC008``  mutable default arguments anywhere in ``src/repro``.
========  ============================================================

Suppression: append ``# noqa: FC00X`` (or a bare ``# noqa``) to the
flagged line. Suppressed findings are still counted and reported by
``--stats`` so they can be triaged (see ROADMAP.md's open items).

Files outside an importable package (tests, scripts) can opt into the
scoped rules with a ``# repro-checks-module: repro.sim.something``
pragma in their first lines — this is how the rule fixtures under
``tests/fixtures/checks/`` exercise path-scoped rules.

No runtime dependencies beyond the standard library: the cross-module
symbol table (FC004/FC005) is built by *parsing* the project sources,
never importing them.
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import re
import sys
from dataclasses import dataclass, field
from typing import (
    Collection,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

__all__ = [
    "RULES",
    "Finding",
    "CheckResult",
    "check_paths",
    "format_finding",
    "main",
]

#: code -> (summary, fix hint). The single source of rule metadata:
#: the CLI, the docs table, and the tests all read from here.
RULES: Dict[str, Tuple[str, str]] = {
    "FC001": (
        "wall-clock read in a deterministic module",
        "route wall timing through repro.core.clock.wall_clock_s or "
        "compute from simulated time",
    ),
    "FC002": (
        "global or unseeded RNG in a simulation path",
        "draw from a seeded random.Random(seed) / "
        "numpy.random.default_rng(seed) instance",
    ),
    "FC003": (
        "unordered set iterated (or rebuilt per element) in a "
        "deterministic path",
        "iterate sorted(the_set) instead; hoist membership sets out "
        "of the loop",
    ),
    "FC004": (
        "unknown event type passed to .emit()",
        "use a name registered in repro.obs.events.EVENT_SCHEMAS",
    ),
    "FC005": (
        "lifecycle-counter contract drift",
        "mirror the counter key in SimulationMetrics.counters(), "
        "TraceReport.counters() (and their tenant_counters() inner "
        "dicts) and keep SweepPoint's counters/tenant_counters fields",
    ),
    "FC006": (
        "unpicklable callable in a dataclass default or "
        "run_sweep_parallel argument",
        "use a module-level function (the parent-side progress= "
        "callback is exempt)",
    ),
    "FC007": (
        "float equality comparison in sim/policy code",
        "compare with a tolerance (abs(a - b) <= eps) or math.isclose",
    ),
    "FC008": (
        "mutable default argument",
        "default to None and create the object inside the function",
    ),
}

#: Package prefixes whose modules must stay deterministic.
_DETERMINISTIC = ("repro.sim", "repro.core", "repro.cluster", "repro.faults")
_FC001_SCOPE = _DETERMINISTIC
#: The one module allowed to read the wall clock (it defines the
#: sanctioned accessor everything else routes through).
_FC001_EXEMPT = "repro.core.clock"
_FC002_SCOPE = _DETERMINISTIC + (
    "repro.traces",
    "repro.openwhisk",
    "repro.provisioning",
)
_FC003_SCOPE = _DETERMINISTIC + ("repro.traces",)
#: repro.analysis feeds the HIST policy's predictability classifier
#: (Welford CoV), so its float guards are priority math too.
_FC007_SCOPE = ("repro.sim", "repro.core", "repro.analysis")

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)
_WALL_CLOCK_NAMES = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
#: random-module attributes that are fine to call (class constructors,
#: checked separately for missing seeds).
_RANDOM_OK = frozenset({"Random", "SystemRandom"})
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence"})

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+\d+(?:[,\s]+[A-Z]+\d+)*))?",
    re.IGNORECASE,
)
_PRAGMA_RE = re.compile(r"#\s*repro-checks-module:\s*([\w.]+)")

#: Directory fragment excluded from directory walks by default: the
#: deliberately-rule-breaking lint fixtures must not fail the
#: self-clean CI run (tests address them file-by-file instead).
_FIXTURE_FRAGMENT = "fixtures/checks"


@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppressed violation) at a location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def hint(self) -> str:
        return RULES.get(self.code, ("", ""))[1]


@dataclass
class CheckResult:
    """Everything one linter run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_code(self, suppressed: bool = False) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.suppressed if suppressed else self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return out


def format_finding(finding: Finding) -> str:
    text = (
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.code} {finding.message}"
    )
    if finding.hint:
        text += f" [fix: {finding.hint}]"
    return text


# ----------------------------------------------------------------------
# Source model
# ----------------------------------------------------------------------


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def module_name_for(path: pathlib.Path, source: str) -> Optional[str]:
    """The dotted module a file belongs to, or ``None``.

    A ``# repro-checks-module: <dotted>`` pragma in the first lines
    wins; otherwise the name is derived by walking up through package
    directories (ones holding ``__init__.py``).
    """
    head = "\n".join(source.splitlines()[:12])
    match = _PRAGMA_RE.search(head)
    if match:
        return match.group(1)
    resolved = path.resolve()
    parts: List[str] = []
    current = resolved.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:  # filesystem root
            break
        current = parent
    if not parts:
        return None
    parts.reverse()
    if resolved.stem != "__init__":
        parts.append(resolved.stem)
    return ".".join(parts)


def _in_scope(module: Optional[str], prefixes: Sequence[str]) -> bool:
    if module is None:
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


@dataclass
class _SourceFile:
    path: pathlib.Path
    source: str
    tree: ast.Module
    module: Optional[str]

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()


# ----------------------------------------------------------------------
# Cross-module symbol table (FC004 / FC005)
# ----------------------------------------------------------------------

#: Canonical project files, used when the checked file set does not
#: itself (re)define the symbol — e.g. when linting one fixture file.
_REPRO_ROOT = pathlib.Path(__file__).resolve().parents[1]
_CANONICAL_EVENTS = _REPRO_ROOT / "obs" / "events.py"
_CANONICAL_METRICS = _REPRO_ROOT / "sim" / "metrics.py"
_CANONICAL_REPORT = _REPRO_ROOT / "obs" / "report.py"
_CANONICAL_SWEEP = _REPRO_ROOT / "sim" / "sweep.py"


@dataclass
class _CounterDef:
    """The ``counters()`` dict-literal keys of one class definition."""

    path: str
    line: int
    keys: Set[str]
    fields: Set[str]
    from_checked: bool
    #: Inner dict-literal keys of the class's ``tenant_counters``
    #: method (the per-tenant half of the contract), or ``None`` when
    #: the class defines no such method.
    tenant_keys: Optional[Set[str]] = None
    tenant_line: int = 0


@dataclass
class ProjectSymbols:
    """Everything the cross-module rules need to know about the project."""

    event_names: Set[str] = field(default_factory=set)
    metrics: Optional[_CounterDef] = None
    report: Optional[_CounterDef] = None
    sweep_fields: Optional[Set[str]] = None
    sweep_from_checked: bool = False


def _class_fields(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _counters_keys(node: ast.ClassDef) -> Optional[Tuple[int, Set[str]]]:
    """Keys of the dict literal returned by a ``counters`` method."""
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "counters":
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Return) and isinstance(
                    sub.value, ast.Dict
                ):
                    keys = {
                        key.value
                        for key in sub.value.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    }
                    return stmt.lineno, keys
    return None


def _tenant_counter_keys(
    node: ast.ClassDef,
) -> Optional[Tuple[int, Set[str]]]:
    """Inner dict-literal keys of a ``tenant_counters`` method.

    The method returns ``{tenant_id: {"warm_starts": ..., ...}}`` —
    the outer mapping is keyed by runtime tenant ids, so the contract
    lives in the *inner* literal's string keys. The first dict literal
    with string-constant keys found anywhere in the method body is
    taken as that inner literal (it sits inside a dict comprehension
    in both real implementations).
    """
    for stmt in node.body:
        if (
            isinstance(stmt, ast.FunctionDef)
            and stmt.name == "tenant_counters"
        ):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Dict):
                    keys = {
                        key.value
                        for key in sub.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    }
                    if keys:
                        return stmt.lineno, keys
            return stmt.lineno, set()
    return None


def _harvest_symbols(
    symbols: ProjectSymbols, source_file: _SourceFile, from_checked: bool
) -> None:
    for node in ast.walk(source_file.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "EVENT_SCHEMAS"
                    and isinstance(node.value, ast.Dict)
                ):
                    symbols.event_names.update(
                        key.value
                        for key in node.value.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    )
        elif isinstance(node, ast.ClassDef):
            if node.name in ("SimulationMetrics", "TraceReport"):
                found = _counters_keys(node)
                if found is None:
                    continue
                line, keys = found
                definition = _CounterDef(
                    path=str(source_file.path),
                    line=line,
                    keys=keys,
                    fields=_class_fields(node),
                    from_checked=from_checked,
                )
                tenant_found = _tenant_counter_keys(node)
                if tenant_found is not None:
                    definition.tenant_line, definition.tenant_keys = (
                        tenant_found
                    )
                if node.name == "SimulationMetrics":
                    symbols.metrics = definition
                else:
                    symbols.report = definition
            elif node.name == "SweepPoint":
                symbols.sweep_fields = _class_fields(node)
                symbols.sweep_from_checked = from_checked


def _load_canonical(path: pathlib.Path) -> Optional[_SourceFile]:
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError):
        return None
    return _SourceFile(path=path, source=source, tree=tree, module=None)


def collect_symbols(checked: Sequence[_SourceFile]) -> ProjectSymbols:
    """Build the symbol table: canonical sources first, then any
    (re)definitions found in the checked file set override them."""
    symbols = ProjectSymbols()
    for canonical in (
        _CANONICAL_METRICS,
        _CANONICAL_REPORT,
        _CANONICAL_SWEEP,
    ):
        loaded = _load_canonical(canonical)
        if loaded is not None:
            _harvest_symbols(symbols, loaded, from_checked=False)
    # Event vocabulary: a schema defined *in the checked set* wins
    # (fixtures may declare a restricted vocabulary); otherwise the
    # canonical repro/obs/events.py supplies it, so linting a single
    # file still sees the real registry.
    checked_symbols = ProjectSymbols()
    for source_file in checked:
        _harvest_symbols(checked_symbols, source_file, from_checked=True)
    if checked_symbols.event_names:
        symbols.event_names = checked_symbols.event_names
    else:
        canonical_events = _load_canonical(_CANONICAL_EVENTS)
        if canonical_events is not None:
            _harvest_symbols(symbols, canonical_events, from_checked=False)
    if checked_symbols.metrics is not None:
        symbols.metrics = checked_symbols.metrics
    if checked_symbols.report is not None:
        symbols.report = checked_symbols.report
    if checked_symbols.sweep_fields is not None:
        symbols.sweep_fields = checked_symbols.sweep_fields
        symbols.sweep_from_checked = True
    return symbols


# ----------------------------------------------------------------------
# Per-file visitor
# ----------------------------------------------------------------------


class _Visitor(ast.NodeVisitor):
    """Runs every per-file rule over one parsed module."""

    def __init__(
        self,
        source_file: _SourceFile,
        symbols: ProjectSymbols,
        select: Optional[Collection[str]],
    ) -> None:
        self._file = source_file
        self._symbols = symbols
        self._select = frozenset(select) if select is not None else None
        self._loop_depth = 0
        self._local_funcs: List[Set[str]] = []
        # FC003 variable tracking: per-scope names known to hold a
        # set. The stack bottom is module scope; each function pushes
        # its own frame. Lookups stay within the innermost frame, so a
        # closure capture never produces a cross-scope false positive.
        self._set_vars: List[Set[str]] = [set()]
        self.findings: List[Finding] = []

    # -- plumbing ----------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if self._select is not None and code not in self._select:
            return
        self.findings.append(
            Finding(
                path=str(self._file.path),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    def _scoped(self, prefixes: Sequence[str]) -> bool:
        return _in_scope(self._file.module, prefixes)

    # -- FC001 / FC002: wall clocks and global RNG -------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if (
            node.module == "time"
            and self._scoped(_FC001_SCOPE)
            and self._file.module != _FC001_EXEMPT
        ):
            for alias in node.names:
                if alias.name in _WALL_CLOCK_NAMES:
                    self._report(
                        node,
                        "FC001",
                        f"from time import {alias.name}: wall-clock access "
                        "in a deterministic module",
                    )
        if node.module == "random" and self._scoped(_FC002_SCOPE):
            for alias in node.names:
                if alias.name not in _RANDOM_OK:
                    self._report(
                        node,
                        "FC002",
                        f"from random import {alias.name}: module-level RNG "
                        "in a simulation path",
                    )
        self.generic_visit(node)

    def _check_call_clock_rng(self, node: ast.Call, dotted: str) -> None:
        if (
            dotted in _WALL_CLOCK_CALLS
            and self._scoped(_FC001_SCOPE)
            and self._file.module != _FC001_EXEMPT
        ):
            self._report(
                node,
                "FC001",
                f"{dotted}() reads the wall clock in deterministic module "
                f"{self._file.module}",
            )
        if not self._scoped(_FC002_SCOPE):
            return
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] not in _RANDOM_OK:
                self._report(
                    node,
                    "FC002",
                    f"{dotted}() draws from the process-global RNG; "
                    "simulation randomness must be seeded",
                )
            elif parts[1] == "Random" and not node.args and not node.keywords:
                self._report(
                    node,
                    "FC002",
                    "random.Random() without a seed is entropy-seeded "
                    "and nondeterministic",
                )
        elif (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
        ):
            if parts[2] not in _NP_RANDOM_OK:
                self._report(
                    node,
                    "FC002",
                    f"{dotted}() uses numpy's legacy global RNG; use a "
                    "seeded Generator",
                )
            elif (
                parts[2] == "default_rng"
                and not node.args
                and not node.keywords
            ):
                self._report(
                    node,
                    "FC002",
                    f"{dotted}() without a seed is entropy-seeded and "
                    "nondeterministic",
                )

    # -- FC003: unordered iteration ----------------------------------

    @staticmethod
    def _is_bare_set(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    @staticmethod
    def _is_set_annotation(node: Optional[ast.expr]) -> bool:
        """``set``/``Set[...]``-style annotations, dotted or not."""
        if node is None:
            return False
        if isinstance(node, ast.Subscript):
            node = node.value
        dotted = _dotted(node)
        if dotted is None:
            return False
        return dotted.split(".")[-1] in (
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
            "AbstractSet",
            "MutableSet",
        )

    @classmethod
    def _is_set_valued(cls, node: Optional[ast.expr]) -> bool:
        """Expressions that definitely produce a set: bare set
        expressions, and ``.get``/``.setdefault`` calls whose default
        argument is one (the idiom set-typed indices are read with)."""
        if node is None:
            return False
        if cls._is_bare_set(node):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "setdefault")
            and any(cls._is_bare_set(arg) for arg in node.args[1:])
        )

    def _track_assignment(
        self, target: ast.expr, value: Optional[ast.expr],
        annotation: Optional[ast.expr] = None,
    ) -> None:
        if not isinstance(target, ast.Name):
            return
        scope = self._set_vars[-1]
        if self._is_set_valued(value) or self._is_set_annotation(annotation):
            scope.add(target.id)
        else:
            # Rebound to something else: stop treating it as a set.
            scope.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._track_assignment(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._track_assignment(node.target, node.value, node.annotation)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if not self._scoped(_FC003_SCOPE):
            return
        if self._is_bare_set(iter_node):
            self._report(
                iter_node,
                "FC003",
                "iterating an unordered set in a deterministic path; "
                "wrap it in sorted(...)",
            )
        elif (
            isinstance(iter_node, ast.Name)
            and iter_node.id in self._set_vars[-1]
        ):
            self._report(
                iter_node,
                "FC003",
                f"{iter_node.id!r} holds a set and reaches this loop "
                "unordered; iterate sorted(...) of it",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def _visit_comprehension(
        self,
        node: Union[ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp],
    ) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    # -- FC007 (and the FC003 membership sub-rule) -------------------

    @staticmethod
    def _is_floatish(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return _Visitor._is_floatish(node.operand)
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._loop_depth > 0 and self._scoped(_FC003_SCOPE):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)) and self._is_bare_set(
                    comparator
                ):
                    self._report(
                        comparator,
                        "FC003",
                        "membership set rebuilt on every loop iteration; "
                        "hoist it out of the loop",
                    )
        if self._scoped(_FC007_SCOPE) and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            operands = [node.left] + list(node.comparators)
            if any(self._is_floatish(operand) for operand in operands):
                self._report(
                    node,
                    "FC007",
                    "exact float equality in sim/policy code; priority "
                    "math needs a tolerance",
                )
        self.generic_visit(node)

    # -- FC004: event vocabulary -------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            self._check_call_clock_rng(node, dotted)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            event_name = node.args[0].value
            if (
                self._symbols.event_names
                and event_name not in self._symbols.event_names
            ):
                self._report(
                    node.args[0],
                    "FC004",
                    f"event type {event_name!r} is not registered in "
                    "repro.obs.events.EVENT_SCHEMAS",
                )
        if dotted is not None and dotted.split(".")[-1] == "run_sweep_parallel":
            self._check_parallel_args(node)
        self.generic_visit(node)

    # -- FC006: pickle safety ----------------------------------------

    def _check_parallel_args(self, node: ast.Call) -> None:
        local_names: Set[str] = set()
        for scope in self._local_funcs:
            local_names |= scope
        values = [(None, arg) for arg in node.args] + [
            (kw.arg, kw.value) for kw in node.keywords
        ]
        for keyword, value in values:
            if keyword == "progress":
                continue  # invoked parent-side only, never pickled
            if isinstance(value, ast.Lambda):
                self._report(
                    value,
                    "FC006",
                    "lambda shipped to run_sweep_parallel cannot cross "
                    "the process boundary (unpicklable)",
                )
            elif isinstance(value, ast.Name) and value.id in local_names:
                self._report(
                    value,
                    "FC006",
                    f"locally-defined function {value.id!r} shipped to "
                    "run_sweep_parallel cannot cross the process "
                    "boundary (unpicklable)",
                )

    def _check_dataclass(self, node: ast.ClassDef) -> None:
        decorated = False
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = _dotted(target)
            if name in ("dataclass", "dataclasses.dataclass"):
                decorated = True
        if not decorated:
            return
        for stmt in node.body:
            value = None
            if isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if value is None:
                continue
            if isinstance(value, ast.Lambda):
                self._report(
                    value,
                    "FC006",
                    "lambda as a dataclass field default breaks pickling "
                    "of the dataclass",
                )
            elif isinstance(value, ast.Call):
                for kw in value.keywords:
                    if kw.arg in ("default", "default_factory") and isinstance(
                        kw.value, ast.Lambda
                    ):
                        self._report(
                            kw.value,
                            "FC006",
                            f"lambda as a dataclass {kw.arg} breaks "
                            "pickling of the dataclass",
                        )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_dataclass(node)
        self.generic_visit(node)

    # -- FC008: mutable defaults -------------------------------------

    @staticmethod
    def _is_mutable_default(node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray")
        )

    def _check_defaults(self, args: ast.arguments) -> None:
        defaults: List[ast.expr] = list(args.defaults)
        defaults += [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if self._is_mutable_default(default):
                self._report(
                    default,
                    "FC008",
                    "mutable default argument is shared across calls",
                )

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        self._check_defaults(node.args)
        if self._local_funcs:
            self._local_funcs[-1].add(node.name)
        self._local_funcs.append(set())
        self._set_vars.append(set())
        self.generic_visit(node)
        self._set_vars.pop()
        self._local_funcs.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# FC005: project-level counter-contract diff
# ----------------------------------------------------------------------


def _check_counter_contract(
    symbols: ProjectSymbols, select: Optional[Collection[str]]
) -> List[Finding]:
    if select is not None and "FC005" not in select:
        return []
    metrics, report = symbols.metrics, symbols.report
    if metrics is None or report is None:
        return []
    # Only judge the contract when the checked set actually (re)defines
    # part of it; otherwise a lint of unrelated files would attribute
    # findings to files outside the run.
    if not (
        metrics.from_checked or report.from_checked or symbols.sweep_from_checked
    ):
        return []
    findings: List[Finding] = []

    def _report_at(definition: _CounterDef, message: str) -> None:
        findings.append(
            Finding(
                path=definition.path,
                line=definition.line,
                col=0,
                code="FC005",
                message=message,
            )
        )

    missing = sorted(metrics.keys - report.keys)
    if missing:
        _report_at(
            report if report.from_checked else metrics,
            f"counter(s) {missing} in SimulationMetrics.counters() have "
            "no mirror in TraceReport.counters()",
        )
    extra = sorted(report.keys - metrics.keys)
    if extra:
        _report_at(
            report if report.from_checked else metrics,
            f"counter(s) {extra} in TraceReport.counters() do not exist "
            "in SimulationMetrics.counters()",
        )
    unbacked = sorted(metrics.keys - metrics.fields)
    if unbacked:
        _report_at(
            metrics,
            f"counter(s) {unbacked} in SimulationMetrics.counters() have "
            "no backing dataclass field",
        )
    if symbols.sweep_fields is not None:
        carries_all = metrics.keys <= symbols.sweep_fields
        if "counters" not in symbols.sweep_fields and not carries_all:
            _report_at(
                metrics,
                "SweepPoint carries neither a counters snapshot field "
                "nor the individual counter fields",
            )

    # Per-tenant half of the contract (docs/multi-tenancy.md): both
    # sides must define tenant_counters() with identical inner keys,
    # and SweepPoint must snapshot them.
    if metrics.tenant_keys is None and report.tenant_keys is not None:
        _report_at(
            report if report.from_checked else metrics,
            "TraceReport defines tenant_counters() but "
            "SimulationMetrics does not",
        )
    elif metrics.tenant_keys is not None and report.tenant_keys is None:
        _report_at(
            report if report.from_checked else metrics,
            "SimulationMetrics defines tenant_counters() but "
            "TraceReport does not",
        )
    elif metrics.tenant_keys is not None and report.tenant_keys is not None:
        tenant_missing = sorted(metrics.tenant_keys - report.tenant_keys)
        if tenant_missing:
            _report_at(
                report if report.from_checked else metrics,
                f"per-tenant counter(s) {tenant_missing} in "
                "SimulationMetrics.tenant_counters() have no mirror in "
                "TraceReport.tenant_counters()",
            )
        tenant_extra = sorted(report.tenant_keys - metrics.tenant_keys)
        if tenant_extra:
            _report_at(
                report if report.from_checked else metrics,
                f"per-tenant counter(s) {tenant_extra} in "
                "TraceReport.tenant_counters() do not exist in "
                "SimulationMetrics.tenant_counters()",
            )
        if (
            symbols.sweep_fields is not None
            and "tenant_counters" not in symbols.sweep_fields
        ):
            _report_at(
                metrics,
                "SweepPoint does not carry the tenant_counters "
                "snapshot field",
            )
    return findings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def iter_python_files(
    paths: Sequence[Union[str, pathlib.Path]],
    include_fixtures: bool = False,
) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Directory walks skip ``__pycache__``, hidden directories, and (by
    default) the deliberately-broken lint fixtures; explicitly-named
    files are always included.
    """
    out: List[pathlib.Path] = []
    seen: Set[pathlib.Path] = set()

    def _add(path: pathlib.Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            out.append(path)

    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            _add(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            posix = candidate.as_posix()
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") for part in candidate.parts):
                continue
            if not include_fixtures and _FIXTURE_FRAGMENT in posix:
                continue
            _add(candidate)
    return out


def check_paths(
    paths: Sequence[Union[str, pathlib.Path]],
    select: Optional[Collection[str]] = None,
    include_fixtures: bool = False,
) -> CheckResult:
    """Lint every Python file under ``paths``; the package's main API.

    ``select`` restricts the run to a subset of rule codes.
    Returns a :class:`CheckResult`; ``result.ok`` is the gate.
    """
    files = iter_python_files(paths, include_fixtures=include_fixtures)
    sources: List[_SourceFile] = []
    raw_findings: List[Finding] = []
    for path in files:
        try:
            source = path.read_text()
        except OSError as exc:
            raw_findings.append(
                Finding(str(path), 1, 0, "FC000", f"unreadable: {exc}")
            )
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raw_findings.append(
                Finding(
                    str(path),
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    "FC000",
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        sources.append(
            _SourceFile(
                path=path,
                source=source,
                tree=tree,
                module=module_name_for(path, source),
            )
        )

    symbols = collect_symbols(sources)
    lines_by_path: Dict[str, List[str]] = {}
    for source_file in sources:
        visitor = _Visitor(source_file, symbols, select)
        visitor.visit(source_file.tree)
        raw_findings.extend(visitor.findings)
        lines_by_path[str(source_file.path)] = source_file.lines
    raw_findings.extend(_check_counter_contract(symbols, select))

    result = CheckResult(files_checked=len(sources))
    for finding in sorted(
        raw_findings, key=lambda f: (f.path, f.line, f.col, f.code)
    ):
        if _is_suppressed(finding, lines_by_path.get(finding.path)):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def _is_suppressed(
    finding: Finding, lines: Optional[List[str]]
) -> bool:
    if lines is None or not 1 <= finding.line <= len(lines):
        return False
    match = _NOQA_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    wanted = {code.strip().upper() for code in re.split(r"[,\s]+", codes)}
    return finding.code in wanted


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.checks``)."""
    parser = argparse.ArgumentParser(
        prog="repro-checks",
        description=(
            "determinism & invariant linter for the FaasCache "
            "reproduction (rules FC001-FC008; see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="FC001,FC002,...",
        help="only run these rule codes",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help="also lint the deliberately-broken fixtures under "
        "tests/fixtures/checks/",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule counts, including suppressed (noqa) findings",
    )
    args = parser.parse_args(argv)
    select = (
        {code.strip().upper() for code in args.select.split(",")}
        if args.select
        else None
    )
    result = check_paths(
        args.paths, select=select, include_fixtures=args.include_fixtures
    )
    for finding in result.findings:
        print(format_finding(finding))
    if args.stats:
        for label, suppressed in (("findings", False), ("suppressed", True)):
            counts = result.counts_by_code(suppressed=suppressed)
            rendered = (
                ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
                or "none"
            )
            print(f"{label} by rule: {rendered}")
    print(
        f"checked {result.files_checked} files: "
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed"
    )
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Incremental result cache for the two-phase linter.

Two layers, two keys:

* **Summaries** are keyed by the file's *content hash* alone — a
  phase-1 summary depends on nothing but the file's own bytes. An
  mtime+size fast path skips even reading unchanged files.
* **Findings** are keyed by content hash **plus an environment
  hash** of every file's position-independent
  :meth:`~repro.checks.dataflow.ModuleSummary.identity_facts` (and
  the call-graph facts derived from them). Cross-file rules (FC003's
  return summaries, FC009/FC010 reachability, FC004's vocabulary)
  therefore invalidate exactly when a *fact* changes — a pure
  line-shift edit in one file leaves every other file's cached
  findings valid.

The cache file is plain JSON (default ``.repro-checks-cache.json``,
gitignored); a missing, corrupt, or version-skewed file degrades to a
cold run, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["CheckCache", "DEFAULT_CACHE_PATH", "content_digest"]

#: Bump when summary shape, finding shape, or keying changes.
CACHE_VERSION = 3

DEFAULT_CACHE_PATH = ".repro-checks-cache.json"

#: Keep the cache from growing without bound across branch switches:
#: entries for files no longer seen are dropped at save time.
_FindingDict = Dict[str, Any]


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class CheckCache:
    """Load-once / save-once JSON cache used by one linter run."""

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path
        self.files: Dict[str, Dict[str, Any]] = {}
        self.summaries: Dict[str, Dict[str, Any]] = {}
        self.results: Dict[str, Dict[str, List[_FindingDict]]] = {}
        self.hits = 0
        self.misses = 0
        self._seen_hashes: set = set()
        self._seen_result_keys: set = set()
        self._load()

    # -- persistence -------------------------------------------------

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
        ):
            return
        files = data.get("files")
        summaries = data.get("summaries")
        results = data.get("results")
        if isinstance(files, dict):
            self.files = files
        if isinstance(summaries, dict):
            self.summaries = summaries
        if isinstance(results, dict):
            self.results = results

    def save(self) -> None:
        """Write back, pruning entries the run did not touch."""
        payload = {
            "version": CACHE_VERSION,
            "files": {
                key: entry
                for key, entry in self.files.items()
                if entry.get("hash") in self._seen_hashes
            },
            "summaries": {
                digest: summary
                for digest, summary in self.summaries.items()
                if digest in self._seen_hashes
            },
            "results": {
                key: value
                for key, value in self.results.items()
                if key in self._seen_result_keys
            },
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, self.path)
        except OSError:
            # A read-only checkout just stays cold; never fail the lint.
            try:
                tmp.unlink()
            except OSError:
                pass

    # -- layer 1: content hashing with a stat fast path --------------

    def file_hash(
        self, path: pathlib.Path
    ) -> Tuple[str, Optional[str]]:
        """``(content_hash, source_or_None)`` for ``path``.

        Returns the source text only when the file actually had to be
        read (stat mismatch); raises ``OSError`` like ``read_text``.
        """
        key = str(path.resolve())
        stat = path.stat()
        entry = self.files.get(key)
        if (
            entry is not None
            and entry.get("mtime_ns") == stat.st_mtime_ns
            and entry.get("size") == stat.st_size
            and isinstance(entry.get("hash"), str)
        ):
            digest: str = entry["hash"]
            self._seen_hashes.add(digest)
            return digest, None
        source = path.read_text()
        digest = content_digest(source.encode("utf-8", "surrogatepass"))
        self.files[key] = {
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "hash": digest,
        }
        self._seen_hashes.add(digest)
        return digest, source

    # -- layer 2: summaries by content hash --------------------------

    def summary(self, digest: str) -> Optional[Dict[str, Any]]:
        return self.summaries.get(digest)

    def store_summary(
        self, digest: str, summary: Dict[str, Any]
    ) -> None:
        self.summaries[digest] = summary

    # -- layer 3: findings by content hash + environment hash --------

    def findings(
        self, digest: str, env_hash: str
    ) -> Optional[Dict[str, List[_FindingDict]]]:
        key = f"{digest}:{env_hash}"
        cached = self.results.get(key)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        self._seen_result_keys.add(key)
        return cached

    def store_findings(
        self,
        digest: str,
        env_hash: str,
        findings: List[_FindingDict],
        suppressed: List[_FindingDict],
    ) -> None:
        key = f"{digest}:{env_hash}"
        self.results[key] = {
            "findings": findings,
            "suppressed": suppressed,
        }
        self._seen_result_keys.add(key)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

"""Phase 1 of the two-phase analysis: per-file dataflow summaries.

The linter used to be a single-pass, per-module AST walk, which is why
FC003 could not follow a set through an attribute load or a function
return (the standing ROADMAP gap closed by this module). The engine
now runs in two phases:

1. **summarize** — every checked file is reduced to a
   :class:`ModuleSummary`: module-level set constants, class attribute
   types inferred from ``__init__`` assignments and dataclass field
   annotations, per-function return summaries and raw call targets,
   the import table, and the cross-module symbols the FC004/FC005
   rules already consumed (event schemas, counter contracts). The
   extraction is *purely syntactic* (sources are parsed, never
   imported) and the result is JSON-serializable so the incremental
   cache can keep it keyed by content hash;
2. **resolve** — a :class:`ProjectIndex` stitches the summaries
   together and answers the interprocedural questions rules ask:
   "does this call return a set?", "is ``self._attr`` set-typed?",
   "what does this imported name resolve to?". Resolution follows
   ``__init__`` re-exports with a hop limit and degrades to *unknown*
   (``None``) on cycles, ``functools.partial`` indirection, and
   decorators it cannot see through — a wrong summary is worse than
   no summary (asserted by ``tests/test_checks_dataflow.py``).
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "CounterDef",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "ProjectIndex",
    "ProjectSymbols",
    "summarize_module",
    "module_name_for",
    "dotted_name",
    "is_set_expr",
    "is_set_annotation",
    "SHARED_STATE_CLASS",
    "SHARED_STATE_SUFFIX",
]

import re

_PRAGMA_RE = re.compile(r"#\s*repro-checks-module:\s*([\w.]+)")

#: The shared-mutable-state registry FC009 guards: the keep-alive pool
#: itself plus every policy class (their Greedy-Dual bookkeeping is
#: exactly the state a threaded live frontend would race on).
SHARED_STATE_CLASS = "ContainerPool"
SHARED_STATE_SUFFIX = "Policy"

#: Decorators the return-summary analysis can safely see through.
#: Anything else makes the decorated function's summary *unknown* —
#: a decorator may replace the callable wholesale.
_BENIGN_DECORATORS = frozenset(
    {
        "staticmethod",
        "classmethod",
        "property",
        "abstractmethod",
        "abc.abstractmethod",
        "functools.wraps",
        "functools.lru_cache",
        "lru_cache",
        "functools.cache",
        "override",
        "typing.override",
    }
)

#: Re-export resolution hop limit (``from repro.sim import simulate``
#: through package ``__init__`` chains). Deeper chains degrade to
#: unknown rather than looping.
_MAX_HOPS = 6


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def module_name_for(path: pathlib.Path, source: str) -> Optional[str]:
    """The dotted module a file belongs to, or ``None``.

    A ``# repro-checks-module: <dotted>`` pragma in the first lines
    wins; otherwise the name is derived by walking up through package
    directories (ones holding ``__init__.py``).
    """
    head = "\n".join(source.splitlines()[:12])
    match = _PRAGMA_RE.search(head)
    if match:
        return match.group(1)
    resolved = path.resolve()
    parts: List[str] = []
    current = resolved.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:  # filesystem root
            break
        current = parent
    if not parts:
        return None
    parts.reverse()
    if resolved.stem != "__init__":
        parts.append(resolved.stem)
    return ".".join(parts)


def is_set_expr(node: Optional[ast.expr]) -> bool:
    """Expressions that are *literally* a set: set/frozenset display,
    set comprehension, or a ``set()``/``frozenset()`` call."""
    if node is None:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def is_set_annotation(node: Optional[ast.expr]) -> bool:
    """``set``/``Set[...]``-style annotations, dotted or not."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotations: judge the prefix before any subscript.
        text = node.value.split("[", 1)[0].strip()
        return text.split(".")[-1] in _SET_ANNOTATION_NAMES
    dotted = dotted_name(node)
    if dotted is None:
        return False
    return dotted.split(".")[-1] in _SET_ANNOTATION_NAMES


_SET_ANNOTATION_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


def _set_valued(node: Optional[ast.expr]) -> bool:
    """Expressions that definitely produce a set at runtime: literal
    set expressions, and ``.get``/``.setdefault`` calls whose default
    argument is one (the idiom set-typed indices are read with)."""
    if node is None:
        return False
    if is_set_expr(node):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("get", "setdefault")
        and any(is_set_expr(arg) for arg in node.args[1:])
    )


# ----------------------------------------------------------------------
# Summary data model (all JSON-serializable via to_dict/from_dict)
# ----------------------------------------------------------------------


@dataclass
class CounterDef:
    """The ``counters()`` dict-literal keys of one class definition
    (the FC005 contract's raw material)."""

    path: str
    line: int
    keys: List[str] = field(default_factory=list)
    fields: List[str] = field(default_factory=list)
    from_checked: bool = False
    tenant_keys: Optional[List[str]] = None
    tenant_line: int = 0

    @property
    def key_set(self) -> Set[str]:
        return set(self.keys)

    @property
    def field_set(self) -> Set[str]:
        return set(self.fields)

    @property
    def tenant_key_set(self) -> Optional[Set[str]]:
        return None if self.tenant_keys is None else set(self.tenant_keys)


@dataclass
class FunctionSummary:
    """One function or method, reduced to what rules resolve against.

    ``returns`` is a list of per-return-statement classifications:
    ``"set"`` (a literal set expression), ``"other"`` (definitely not
    a set), ``"unknown"``, or ``"call:<raw>"`` — a call whose target
    is resolved lazily by :meth:`ProjectIndex.returns_set`.
    """

    name: str
    qualname: str
    lineno: int = 0
    is_async: bool = False
    is_public: bool = True
    unknown_decorated: bool = False
    sync_decorated: bool = False
    decorators: List[str] = field(default_factory=list)
    returns: List[str] = field(default_factory=list)
    calls: List[str] = field(default_factory=list)


@dataclass
class ClassSummary:
    """Attribute types inferred from ``__init__`` assignments and
    dataclass/class-level annotations, plus the method table."""

    name: str
    qualname: str
    lineno: int = 0
    bases: List[str] = field(default_factory=list)
    set_attrs: List[str] = field(default_factory=list)
    shared_attrs: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionSummary] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """Everything phase 2 needs to know about one source file."""

    path: str
    module: Optional[str] = None
    is_package: bool = False
    concurrency_imports: bool = False
    set_constants: List[str] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    event_names: Optional[List[str]] = None
    metrics_def: Optional[CounterDef] = None
    report_def: Optional[CounterDef] = None
    sweep_fields: Optional[List[str]] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        summary = cls(path=data["path"])
        summary.module = data.get("module")
        summary.is_package = bool(data.get("is_package", False))
        summary.concurrency_imports = bool(
            data.get("concurrency_imports", False)
        )
        summary.set_constants = list(data.get("set_constants", []))
        summary.imports = dict(data.get("imports", {}))
        summary.functions = {
            name: FunctionSummary(**fn)
            for name, fn in data.get("functions", {}).items()
        }
        summary.classes = {}
        for name, cls_data in data.get("classes", {}).items():
            methods = {
                mname: FunctionSummary(**fn)
                for mname, fn in cls_data.get("methods", {}).items()
            }
            payload = {
                key: value
                for key, value in cls_data.items()
                if key != "methods"
            }
            summary.classes[name] = ClassSummary(methods=methods, **payload)
        events = data.get("event_names")
        summary.event_names = None if events is None else list(events)
        for attr in ("metrics_def", "report_def"):
            raw = data.get(attr)
            if raw is not None:
                setattr(summary, attr, CounterDef(**raw))
        sweep = data.get("sweep_fields")
        summary.sweep_fields = None if sweep is None else list(sweep)
        return summary

    def identity_facts(self) -> Dict[str, Any]:
        """The position-independent facts other files' findings can
        depend on — the incremental cache's environment hash is built
        from these, so a pure line-shift edit in one file does not
        invalidate every other file's cached findings."""
        return {
            "module": self.module,
            "concurrency": self.concurrency_imports,
            "set_constants": sorted(self.set_constants),
            "imports": dict(sorted(self.imports.items())),
            "functions": {
                name: (
                    fn.is_async,
                    fn.is_public,
                    fn.unknown_decorated,
                    fn.sync_decorated,
                    tuple(fn.returns),
                    tuple(fn.calls),
                )
                for name, fn in sorted(self.functions.items())
            },
            "classes": {
                name: {
                    "bases": tuple(cls.bases),
                    "set_attrs": sorted(cls.set_attrs),
                    "shared_attrs": sorted(cls.shared_attrs),
                    "methods": {
                        mname: (
                            fn.is_async,
                            fn.is_public,
                            fn.unknown_decorated,
                            fn.sync_decorated,
                            tuple(fn.returns),
                            tuple(fn.calls),
                        )
                        for mname, fn in sorted(cls.methods.items())
                    },
                }
                for name, cls in sorted(self.classes.items())
            },
            "event_names": (
                None
                if self.event_names is None
                else sorted(self.event_names)
            ),
            "metrics": _counter_facts(self.metrics_def),
            "report": _counter_facts(self.report_def),
            "sweep_fields": (
                None if self.sweep_fields is None else sorted(self.sweep_fields)
            ),
        }


def _counter_facts(definition: Optional[CounterDef]) -> Optional[Tuple[Any, ...]]:
    if definition is None:
        return None
    return (
        tuple(sorted(definition.keys)),
        tuple(sorted(definition.fields)),
        None
        if definition.tenant_keys is None
        else tuple(sorted(definition.tenant_keys)),
    )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------

_CONCURRENCY_MODULES = ("threading", "asyncio", "concurrent", "_thread")

_SYNC_DECORATORS = frozenset({"synchronized", "locked", "with_lock"})


def _decorator_names(node: ast.AST) -> List[str]:
    names: List[str] = []
    for decorator in getattr(node, "decorator_list", []):
        target = (
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        dotted = dotted_name(target)
        names.append(dotted if dotted is not None else "<expr>")
    return names


def _classify_return(value: Optional[ast.expr]) -> str:
    if value is None or isinstance(value, ast.Constant):
        return "other"
    if is_set_expr(value):
        return "set"
    if isinstance(value, (ast.List, ast.ListComp, ast.Dict, ast.DictComp,
                          ast.Tuple, ast.GeneratorExp, ast.JoinedStr)):
        return "other"
    if isinstance(value, ast.Call):
        raw = dotted_name(value.func)
        if raw is None:
            return "unknown"
        if raw in ("sorted", "list", "tuple", "dict", "len", "str"):
            return "other"
        return f"call:{raw}"
    if isinstance(value, ast.IfExp):
        left = _classify_return(value.body)
        right = _classify_return(value.orelse)
        if left == right:
            return left
        return "unknown"
    return "unknown"


def _raw_calls(node: ast.AST) -> List[str]:
    """Raw dotted call targets inside one function body (nested defs
    excluded — they have their own summaries)."""
    calls: List[str] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(current, ast.Call):
            raw = dotted_name(current.func)
            if raw is not None:
                calls.append(raw)
        stack.extend(ast.iter_child_nodes(current))
    # Deterministic, de-duplicated order.
    return sorted(set(calls))


def _summarize_function(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    qualname: str,
) -> FunctionSummary:
    decorators = _decorator_names(node)
    unknown = any(
        name not in _BENIGN_DECORATORS and name.split(".")[-1] not in
        _SYNC_DECORATORS
        for name in decorators
    )
    sync = any(name.split(".")[-1] in _SYNC_DECORATORS for name in decorators)
    returns: List[str] = []
    is_generator = False
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(current, (ast.Yield, ast.YieldFrom)):
            is_generator = True
        if isinstance(current, ast.Return):
            returns.append(_classify_return(current.value))
        stack.extend(ast.iter_child_nodes(current))
    if is_generator:
        returns = ["other"]
    elif not returns:
        returns = ["other"]  # implicit `return None`
    if unknown:
        returns = ["unknown"]
    return FunctionSummary(
        name=node.name,
        qualname=qualname,
        lineno=node.lineno,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        is_public=not node.name.startswith("_"),
        unknown_decorated=unknown,
        sync_decorated=sync,
        decorators=decorators,
        returns=returns,
        calls=_raw_calls(node),
    )


def _is_shared_annotation(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    dotted = (
        node.value
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
        else dotted_name(node)
    )
    if not isinstance(dotted, str):
        return False
    tail = dotted.split("[", 1)[0].strip().split(".")[-1]
    return tail == SHARED_STATE_CLASS or tail.endswith(SHARED_STATE_SUFFIX)


def _shared_constructor(node: Optional[ast.expr]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    raw = dotted_name(node.func)
    if raw is None:
        return False
    tail = raw.split(".")[-1]
    return tail == SHARED_STATE_CLASS or tail.endswith(SHARED_STATE_SUFFIX)


def _summarize_class(node: ast.ClassDef, module: Optional[str]) -> ClassSummary:
    qual_prefix = f"{module}." if module else ""
    summary = ClassSummary(
        name=node.name,
        qualname=f"{qual_prefix}{node.name}",
        lineno=node.lineno,
        bases=[d for d in (dotted_name(b) for b in node.bases) if d],
    )
    set_attrs: Set[str] = set()
    poisoned: Set[str] = set()
    shared_attrs: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if is_set_annotation(stmt.annotation):
                set_attrs.add(stmt.target.id)
            if _is_shared_annotation(stmt.annotation):
                shared_attrs.add(stmt.target.id)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = _summarize_function(
                stmt, f"{summary.qualname}.{stmt.name}"
            )
            summary.methods[stmt.name] = method
            for sub in ast.walk(stmt):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                elif isinstance(sub, ast.AnnAssign):
                    target, value = sub.target, sub.value
                    annotation = sub.annotation
                if (
                    target is None
                    or not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                attr = target.attr
                if is_set_annotation(annotation) or (
                    annotation is None and _set_valued(value)
                ):
                    set_attrs.add(attr)
                elif value is not None or annotation is not None:
                    poisoned.add(attr)
                if _is_shared_annotation(annotation) or _shared_constructor(
                    value
                ):
                    shared_attrs.add(attr)
    # An attribute assigned a set in one place and something else in
    # another is ambiguous: drop it (unknown beats wrong).
    summary.set_attrs = sorted(set_attrs - poisoned)
    summary.shared_attrs = sorted(shared_attrs)
    return summary


def _counters_keys(node: ast.ClassDef) -> Optional[Tuple[int, Set[str]]]:
    """Keys of the dict literal returned by a ``counters`` method."""
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "counters":
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Return) and isinstance(
                    sub.value, ast.Dict
                ):
                    keys = {
                        key.value
                        for key in sub.value.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    }
                    return stmt.lineno, keys
    return None


def _tenant_counter_keys(
    node: ast.ClassDef,
) -> Optional[Tuple[int, Set[str]]]:
    """Inner dict-literal keys of a ``tenant_counters`` method.

    The method returns ``{tenant_id: {"warm_starts": ..., ...}}`` —
    the contract lives in the *inner* literal's string keys.
    """
    for stmt in node.body:
        if (
            isinstance(stmt, ast.FunctionDef)
            and stmt.name == "tenant_counters"
        ):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Dict):
                    keys = {
                        key.value
                        for key in sub.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    }
                    if keys:
                        return stmt.lineno, keys
            return stmt.lineno, set()
    return None


def _class_fields(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _harvest_counter_def(
    summary: ModuleSummary, node: ast.ClassDef
) -> None:
    if node.name in ("SimulationMetrics", "TraceReport"):
        found = _counters_keys(node)
        if found is None:
            return
        line, keys = found
        definition = CounterDef(
            path=summary.path,
            line=line,
            keys=sorted(keys),
            fields=sorted(_class_fields(node)),
        )
        tenant_found = _tenant_counter_keys(node)
        if tenant_found is not None:
            definition.tenant_line = tenant_found[0]
            definition.tenant_keys = sorted(tenant_found[1])
        if node.name == "SimulationMetrics":
            summary.metrics_def = definition
        else:
            summary.report_def = definition
    elif node.name == "SweepPoint":
        summary.sweep_fields = sorted(_class_fields(node))


def summarize_module(
    tree: ast.Module, path: pathlib.Path, source: str
) -> ModuleSummary:
    """Reduce one parsed file to its :class:`ModuleSummary`."""
    summary = ModuleSummary(
        path=str(path),
        module=module_name_for(path, source),
        is_package=path.name == "__init__.py",
    )
    event_names: Set[str] = set()
    poisoned_constants: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _CONCURRENCY_MODULES:
                    summary.concurrency_imports = True
                local = alias.asname or alias.name.split(".")[0]
                summary.imports[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: anchor at the summarized module.
                anchor = summary.module or ""
                parts = anchor.split(".") if anchor else []
                if not summary.is_package and parts:
                    parts = parts[:-1]
                drop = node.level - 1
                if drop:
                    parts = parts[: len(parts) - drop] if drop <= len(parts) else []
                prefix = ".".join(parts)
                base = f"{prefix}.{base}" if base and prefix else (prefix or base)
            if base.split(".")[0] in _CONCURRENCY_MODULES:
                summary.concurrency_imports = True
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                summary.imports[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "EVENT_SCHEMAS" and isinstance(
                    node.value, ast.Dict
                ):
                    event_names.update(
                        key.value
                        for key in node.value.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    )
                annotation = (
                    node.annotation
                    if isinstance(node, ast.AnnAssign)
                    else None
                )
                if _set_valued(node.value) or is_set_annotation(annotation):
                    summary.set_constants.append(target.id)
                else:
                    poisoned_constants.add(target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            prefix = f"{summary.module}." if summary.module else ""
            summary.functions[node.name] = _summarize_function(
                node, f"{prefix}{node.name}"
            )
        elif isinstance(node, ast.ClassDef):
            summary.classes[node.name] = _summarize_class(
                node, summary.module
            )
            _harvest_counter_def(summary, node)
    summary.set_constants = sorted(
        set(summary.set_constants) - poisoned_constants
    )
    if event_names:
        summary.event_names = sorted(event_names)
    return summary


# ----------------------------------------------------------------------
# Phase 2: the project index
# ----------------------------------------------------------------------


@dataclass
class ProjectSymbols:
    """The cross-module symbols FC004/FC005 judge against."""

    event_names: Set[str] = field(default_factory=set)
    metrics: Optional[CounterDef] = None
    report: Optional[CounterDef] = None
    sweep_fields: Optional[Set[str]] = None
    sweep_from_checked: bool = False


#: Canonical project files, used when the checked file set does not
#: itself (re)define the symbol — e.g. when linting one fixture file.
_REPRO_ROOT = pathlib.Path(__file__).resolve().parents[1]
_CANONICAL_EVENTS = _REPRO_ROOT / "obs" / "events.py"
_CANONICAL_METRICS = _REPRO_ROOT / "sim" / "metrics.py"
_CANONICAL_REPORT = _REPRO_ROOT / "obs" / "report.py"
_CANONICAL_SWEEP = _REPRO_ROOT / "sim" / "sweep.py"


def _load_canonical_summary(path: pathlib.Path) -> Optional[ModuleSummary]:
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError):
        return None
    return summarize_module(tree, path, source)


class ProjectIndex:
    """Resolves names, returns, and attribute types across the project."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries: List[ModuleSummary] = list(summaries)
        self.by_path: Dict[str, ModuleSummary] = {
            summary.path: summary for summary in self.summaries
        }
        self.by_module: Dict[str, ModuleSummary] = {}
        for summary in self.summaries:
            if summary.module is not None:
                self.by_module.setdefault(summary.module, summary)
        self.symbols = self._build_symbols()

    # -- symbol table (FC004/FC005) ---------------------------------

    def _build_symbols(self) -> ProjectSymbols:
        symbols = ProjectSymbols()
        for canonical in (_CANONICAL_METRICS, _CANONICAL_REPORT,
                          _CANONICAL_SWEEP):
            if str(canonical) in self.by_path:
                continue
            loaded = _load_canonical_summary(canonical)
            if loaded is None:
                continue
            if loaded.metrics_def is not None and symbols.metrics is None:
                symbols.metrics = loaded.metrics_def
            if loaded.report_def is not None and symbols.report is None:
                symbols.report = loaded.report_def
            if loaded.sweep_fields is not None and symbols.sweep_fields is None:
                symbols.sweep_fields = set(loaded.sweep_fields)
        checked_events: Set[str] = set()
        for summary in self.summaries:
            if summary.event_names:
                checked_events.update(summary.event_names)
            if summary.metrics_def is not None:
                summary.metrics_def.from_checked = True
                symbols.metrics = summary.metrics_def
            if summary.report_def is not None:
                summary.report_def.from_checked = True
                symbols.report = summary.report_def
            if summary.sweep_fields is not None:
                symbols.sweep_fields = set(summary.sweep_fields)
                symbols.sweep_from_checked = True
        if checked_events:
            symbols.event_names = checked_events
        else:
            canonical_events = (
                self.by_path.get(str(_CANONICAL_EVENTS))
                or _load_canonical_summary(_CANONICAL_EVENTS)
            )
            if canonical_events is not None and canonical_events.event_names:
                symbols.event_names = set(canonical_events.event_names)
        return symbols

    # -- name resolution ---------------------------------------------

    def resolve_function(
        self,
        raw: str,
        module: Optional[str],
        cls: Optional[ClassSummary] = None,
    ) -> Optional[FunctionSummary]:
        """Best-effort resolution of a raw call target to a function
        summary; ``None`` means *unknown* (never guess)."""
        if module is None:
            summary = None
        else:
            summary = self.by_module.get(module)
        parts = raw.split(".")
        if parts[0] == "self":
            if cls is None or len(parts) != 2:
                return None
            method = cls.methods.get(parts[1])
            if method is not None:
                return method
            # Unknown inherited method: degrade rather than guess.
            return None
        if len(parts) == 1:
            if summary is not None and raw in summary.functions:
                return summary.functions[raw]
            if summary is not None and raw in summary.imports:
                return self._resolve_dotted(summary.imports[raw])
            return None
        if summary is not None and parts[0] in summary.imports:
            target = summary.imports[parts[0]] + "." + ".".join(parts[1:])
            return self._resolve_dotted(target)
        return self._resolve_dotted(raw)

    def _resolve_dotted(
        self, dotted: str, _hops: int = 0
    ) -> Optional[FunctionSummary]:
        if _hops > _MAX_HOPS:
            return None
        parts = dotted.split(".")
        # Longest module prefix wins.
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            summary = self.by_module.get(module)
            if summary is None:
                continue
            remainder = parts[cut:]
            if not remainder:
                return None  # a module, not a function
            if len(remainder) == 1:
                name = remainder[0]
                if name in summary.functions:
                    return summary.functions[name]
                if name in summary.imports:
                    return self._resolve_dotted(
                        summary.imports[name], _hops + 1
                    )
                return None
            if len(remainder) == 2 and remainder[0] in summary.classes:
                return summary.classes[remainder[0]].methods.get(remainder[1])
            if remainder[0] in summary.imports:
                target = summary.imports[remainder[0]] + "." + ".".join(
                    remainder[1:]
                )
                return self._resolve_dotted(target, _hops + 1)
            return None
        return None

    # -- interprocedural facts ---------------------------------------

    def returns_set(
        self,
        fn: Optional[FunctionSummary],
        module: Optional[str] = None,
        cls: Optional[ClassSummary] = None,
        _visited: Optional[Set[str]] = None,
    ) -> bool:
        """``True`` only when every return path provably yields a set.

        Cycles, unknown decorators, and unresolvable call chains all
        degrade to ``False`` (unknown): FC003 must never flag on a
        guessed summary.
        """
        if fn is None or fn.unknown_decorated or not fn.returns:
            return False
        visited = _visited if _visited is not None else set()
        if fn.qualname in visited:
            return False  # recursion: unknown
        visited.add(fn.qualname)
        owner_module, owner_cls = self._owner_of(fn, module, cls)
        saw_set = False
        for entry in fn.returns:
            if entry == "set":
                saw_set = True
                continue
            if entry.startswith("call:"):
                callee = self.resolve_function(
                    entry[5:], owner_module, owner_cls
                )
                if callee is None or not self.returns_set(
                    callee, owner_module, owner_cls, visited
                ):
                    return False
                saw_set = True
                continue
            return False
        return saw_set

    def _owner_of(
        self,
        fn: FunctionSummary,
        module: Optional[str],
        cls: Optional[ClassSummary],
    ) -> Tuple[Optional[str], Optional[ClassSummary]]:
        """The defining module/class of ``fn`` (so chained calls in a
        callee resolve in the callee's own context, not the caller's)."""
        parts = fn.qualname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            candidate = ".".join(parts[:cut])
            summary = self.by_module.get(candidate)
            if summary is None:
                continue
            remainder = parts[cut:]
            if len(remainder) == 2 and remainder[0] in summary.classes:
                return candidate, summary.classes[remainder[0]]
            return candidate, None
        return module, cls

    def module_set_constant(
        self, module: Optional[str], name: str
    ) -> bool:
        if module is None:
            return False
        summary = self.by_module.get(module)
        return summary is not None and name in summary.set_constants

    def imported_set_constant(
        self, module: Optional[str], raw: str
    ) -> bool:
        """``mod.CONST`` / imported ``CONST`` referring to another
        project module's set-typed constant."""
        if module is None:
            return False
        summary = self.by_module.get(module)
        if summary is None:
            return False
        parts = raw.split(".")
        if len(parts) == 1:
            target = summary.imports.get(raw)
            if target is None:
                return False
        elif parts[0] in summary.imports:
            target = summary.imports[parts[0]] + "." + ".".join(parts[1:])
        else:
            target = raw
        head, _, const = target.rpartition(".")
        if not head:
            return False
        owner = self.by_module.get(head)
        return owner is not None and const in owner.set_constants

"""SARIF 2.1.0 output for the linter (``--format sarif``).

One run object, one rule descriptor per registry entry (plus the
FC000 pseudo-rule for I/O, syntax-error, and noqa-typo findings, which
lives outside the registry because it has no fixture pair and cannot
be suppressed). Suppressed (noqa) findings are carried with an
``inSource`` suppression object so SARIF viewers show them greyed-out
instead of losing them.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.checks.rules import NOQA_GUARD_CODE, RULES, Finding

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_INFO_URI = "https://github.com/faascache-repro/docs/static-analysis.md"


def _rule_descriptors() -> List[Dict[str, Any]]:
    descriptors: List[Dict[str, Any]] = []
    for code in sorted(RULES):
        summary, hint = RULES[code]
        descriptors.append(
            {
                "id": code,
                "name": code,
                "shortDescription": {"text": summary},
                "help": {"text": f"fix: {hint}"},
                "defaultConfiguration": {"level": "error"},
            }
        )
    descriptors.append(
        {
            "id": NOQA_GUARD_CODE,
            "name": NOQA_GUARD_CODE,
            "shortDescription": {
                "text": "file-level problem (unreadable, syntax error, "
                "or a noqa comment naming an unknown rule code)"
            },
            "help": {
                "text": "fix the file or the noqa comment; FC000 "
                "findings cannot themselves be suppressed"
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    return descriptors


def _result(finding: Finding, suppressed: bool) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [
            {"kind": "inSource", "justification": "noqa comment"}
        ]
    return result


def to_sarif(
    findings: List[Finding],
    suppressed: List[Finding],
    tool_version: str = "2.0.0",
) -> Dict[str, Any]:
    """The complete SARIF log object for one linter run."""
    results = [_result(finding, False) for finding in findings]
    results += [_result(finding, True) for finding in suppressed]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-checks",
                        "version": tool_version,
                        "informationUri": _INFO_URI,
                        "rules": _rule_descriptors(),
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }

"""FC001 — wall-clock reads in deterministic modules.

Simulation logic branching on wall time can never replay identically;
``repro.core.clock.wall_clock_s`` is the one sanctioned accessor.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.checks.rules.base import Rule, RuleContext

#: Package prefixes whose modules must stay deterministic. repro.live
#: is real-time code, but it must still route every timestamp through
#: the Clock protocol / wall_clock_s accessor (docs/live-serving.md) —
#: that is what keeps sim and live mode swappable drivers of one
#: engine, so it lives in the audited scope too.
DETERMINISTIC_SCOPE = (
    "repro.sim",
    "repro.core",
    "repro.cluster",
    "repro.faults",
    "repro.live",
)

#: The one module allowed to read the wall clock (it defines the
#: sanctioned accessor everything else routes through).
EXEMPT_MODULE = "repro.core.clock"

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)
_WALL_CLOCK_NAMES = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)


class WallClockRule(Rule):
    code = "FC001"
    summary = "wall-clock read in a deterministic module"
    hint = (
        "route wall timing through repro.core.clock.wall_clock_s or "
        "compute from simulated time"
    )
    scope = DETERMINISTIC_SCOPE

    def applies(self, module: Optional[str]) -> bool:
        if module == EXEMPT_MODULE:
            return False
        return super().applies(module)

    def on_import_from(
        self, node: ast.ImportFrom, ctx: RuleContext
    ) -> None:
        if node.module != "time":
            return
        for alias in node.names:
            if alias.name in _WALL_CLOCK_NAMES:
                ctx.report(
                    node,
                    self.code,
                    f"from time import {alias.name}: wall-clock access "
                    "in a deterministic module",
                )

    def on_call(
        self, node: ast.Call, dotted: Optional[str], ctx: RuleContext
    ) -> None:
        if dotted in _WALL_CLOCK_CALLS:
            ctx.report(
                node,
                self.code,
                f"{dotted}() reads the wall clock in deterministic "
                f"module {ctx.module}",
            )

"""FC005 — lifecycle-counter contract drift.

``SimulationMetrics.counters()``, ``TraceReport.counters()`` and
``SweepPoint`` must stay mirrored, key for key (aggregate and
per-tenant halves). This is the one project-level rule: it judges the
symbol table after every file is analyzed, not an AST node.
"""

from __future__ import annotations

from typing import List

from repro.checks.dataflow import CounterDef, ProjectSymbols
from repro.checks.rules.base import Finding, Rule


class CounterContractRule(Rule):
    code = "FC005"
    summary = "lifecycle-counter contract drift"
    hint = (
        "mirror the counter key in SimulationMetrics.counters(), "
        "TraceReport.counters() (and their tenant_counters() inner "
        "dicts) and keep SweepPoint's counters/tenant_counters fields"
    )
    scope = None

    def check_project(self, symbols: ProjectSymbols) -> List[Finding]:
        metrics, report = symbols.metrics, symbols.report
        if metrics is None or report is None:
            return []
        # Only judge the contract when the checked set actually
        # (re)defines part of it; otherwise a lint of unrelated files
        # would attribute findings to files outside the run.
        if not (
            metrics.from_checked
            or report.from_checked
            or symbols.sweep_from_checked
        ):
            return []
        findings: List[Finding] = []

        def _report_at(definition: CounterDef, message: str) -> None:
            findings.append(
                Finding(
                    path=definition.path,
                    line=definition.line,
                    col=0,
                    code=self.code,
                    message=message,
                )
            )

        anchor = report if report.from_checked else metrics
        missing = sorted(metrics.key_set - report.key_set)
        if missing:
            _report_at(
                anchor,
                f"counter(s) {missing} in SimulationMetrics.counters() "
                "have no mirror in TraceReport.counters()",
            )
        extra = sorted(report.key_set - metrics.key_set)
        if extra:
            _report_at(
                anchor,
                f"counter(s) {extra} in TraceReport.counters() do not "
                "exist in SimulationMetrics.counters()",
            )
        unbacked = sorted(metrics.key_set - metrics.field_set)
        if unbacked:
            _report_at(
                metrics,
                f"counter(s) {unbacked} in SimulationMetrics.counters() "
                "have no backing dataclass field",
            )
        if symbols.sweep_fields is not None:
            carries_all = metrics.key_set <= symbols.sweep_fields
            if "counters" not in symbols.sweep_fields and not carries_all:
                _report_at(
                    metrics,
                    "SweepPoint carries neither a counters snapshot "
                    "field nor the individual counter fields",
                )

        # Per-tenant half of the contract (docs/multi-tenancy.md).
        metrics_tenant = metrics.tenant_key_set
        report_tenant = report.tenant_key_set
        if metrics_tenant is None and report_tenant is not None:
            _report_at(
                anchor,
                "TraceReport defines tenant_counters() but "
                "SimulationMetrics does not",
            )
        elif metrics_tenant is not None and report_tenant is None:
            _report_at(
                anchor,
                "SimulationMetrics defines tenant_counters() but "
                "TraceReport does not",
            )
        elif metrics_tenant is not None and report_tenant is not None:
            tenant_missing = sorted(metrics_tenant - report_tenant)
            if tenant_missing:
                _report_at(
                    anchor,
                    f"per-tenant counter(s) {tenant_missing} in "
                    "SimulationMetrics.tenant_counters() have no mirror "
                    "in TraceReport.tenant_counters()",
                )
            tenant_extra = sorted(report_tenant - metrics_tenant)
            if tenant_extra:
                _report_at(
                    anchor,
                    f"per-tenant counter(s) {tenant_extra} in "
                    "TraceReport.tenant_counters() do not exist in "
                    "SimulationMetrics.tenant_counters()",
                )
            if (
                symbols.sweep_fields is not None
                and "tenant_counters" not in symbols.sweep_fields
            ):
                _report_at(
                    metrics,
                    "SweepPoint does not carry the tenant_counters "
                    "snapshot field",
                )
        return findings

"""FC011 — swallowed exception in sim/cluster code.

A handler that neither re-raises, records a traced event, touches a
counter, nor even looks at the exception it caught turns a failure
into silent state divergence — the worst kind of replay-mismatch bug
to bisect. Narrow handlers are trusted unless the body is literally
``pass``; broad ones (bare / ``Exception`` / ``BaseException``) must
visibly do *something* with the failure.
"""

from __future__ import annotations

import ast
from typing import Union

from repro.checks.rules.base import Rule, RuleContext

_BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = node.id if isinstance(node, ast.Name) else None
        if name in _BROAD_TYPES:
            return True
    return False


def _is_noop_body(body: list) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring or bare `...`
        return False
    return True


class _HandlerScan(ast.NodeVisitor):
    """Does the handler body raise, emit, count, or read the bound
    exception name? Nested defs are opaque (degrade to 'handled')."""

    def __init__(self, bound_name: Union[str, None]) -> None:
        self.bound_name = bound_name
        self.handled = False

    def visit_Raise(self, node: ast.Raise) -> None:
        self.handled = True

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.handled = True  # counter increment

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        ):
            self.handled = True
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if self.bound_name is not None and node.id == self.bound_name:
            self.handled = True


class SwallowedExceptionRule(Rule):
    code = "FC011"
    summary = "swallowed exception in sim/cluster code"
    hint = (
        "re-raise, emit a traced event, or increment a failure "
        "counter so replay can see the divergence"
    )
    scope = ("repro.sim", "repro.cluster")

    def on_except_handler(
        self, node: ast.ExceptHandler, ctx: RuleContext
    ) -> None:
        if _is_noop_body(node.body):
            ctx.report(
                node,
                self.code,
                "exception handler silently discards the failure "
                "(pass-only body)",
            )
            return
        if not _is_broad(node):
            return
        scan = _HandlerScan(node.name)
        for stmt in node.body:
            scan.visit(stmt)
            if scan.handled:
                return
        ctx.report(
            node,
            self.code,
            "broad exception handler neither re-raises, emits a "
            "traced event, increments a counter, nor inspects the "
            "caught exception",
        )

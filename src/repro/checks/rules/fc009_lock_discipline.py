"""FC009 — unsynchronized mutation of shared pool/policy state.

In live mode (``repro.live`` / anything importing threading or
asyncio) a ContainerPool or keep-alive policy object is shared between
the dispatch path and the background reclamation loop. Mutating its
attributes directly — rather than through its own API, which is where
the invariants (GD priority heap consistency, memory accounting) are
maintained — from a function reachable via more than one public entry
point is a data race waiting for load.

The rule fires only when the module actually imports a concurrency
primitive, the mutation is not under a ``with <lock>:`` block or a
``@synchronized``-style decorator, and the call graph shows >= 2
distinct public entry points reaching the enclosing function.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.checks.rules.base import Rule, RuleContext

#: Mutating container/dict methods: calling one of these on an
#: *attribute of* a shared object rewrites its internals just as an
#: assignment would.
_MUTATING_METHODS = frozenset(
    {
        "append", "add", "remove", "discard", "pop", "popitem",
        "clear", "update", "extend", "insert", "setdefault",
    }
)


class LockDisciplineRule(Rule):
    code = "FC009"
    summary = "unsynchronized mutation of shared pool/policy state"
    hint = (
        "guard with the pool's lock (with self._lock:) or a "
        "@synchronized decorator, or route through the pool's own API"
    )
    scope = ("repro",)

    def _multi_entry(self, ctx: RuleContext) -> bool:
        if not ctx.func_stack:
            return False
        frame = ctx.func_stack[-1]
        if not frame.in_graph:
            return False
        return ctx.graph.public_entry_count(frame.summary.qualname) >= 2

    def _should_fire(self, ctx: RuleContext) -> bool:
        return (
            ctx.summary.concurrency_imports
            and not ctx.sync_guarded
            and self._multi_entry(ctx)
        )

    def _report(
        self, node: ast.AST, shared: str, what: str, ctx: RuleContext
    ) -> None:
        entries = ctx.graph.public_entry_count(
            ctx.func_stack[-1].summary.qualname
        )
        ctx.report(
            node,
            self.code,
            f"{what} of shared {shared!r} state without a lock; this "
            f"function is reachable from {entries} public entry points",
        )

    def on_mutation(self, node: ast.stmt, ctx: RuleContext) -> None:
        if not self._should_fire(ctx):
            return
        targets: list = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            base: Optional[ast.expr] = None
            if isinstance(target, ast.Attribute):
                base = target.value
            elif isinstance(target, ast.Subscript):
                # pool.gd[k] = v  /  del policy.freq[k]
                if isinstance(target.value, ast.Attribute):
                    base = target.value.value
            if base is None:
                continue
            shared = ctx.shared_base(base)
            if shared is not None:
                self._report(target, shared, "direct mutation", ctx)

    def on_call(
        self, node: ast.Call, dotted: Optional[str], ctx: RuleContext
    ) -> None:
        if not self._should_fire(ctx):
            return
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Attribute)
        ):
            return
        # pool.containers.append(c): mutating an attribute's internals.
        # pool.evict(c) (func.value is the shared object itself) stays
        # allowed — the pool's API owns its invariants.
        shared = ctx.shared_base(func.value.value)
        if shared is not None:
            self._report(
                node, shared, f"mutating call .{func.attr}()", ctx
            )

"""Rule plumbing: the shared AST engine every rule plugs into.

A rule is a small class with event hooks (``on_call``,
``on_iteration``, ``on_except_handler``, ...). The
:class:`FileEngine` walks each parsed module exactly once,
maintaining the shared dataflow state every rule reads through its
:class:`RuleContext`:

* lexical scopes of **set-typed variables** (now fed by the phase-1
  project index: attribute loads, function returns, and module
  constants resolve interprocedurally — the FC003 gap);
* scopes of **shared-state-typed variables** (ContainerPool /
  ``*Policy`` instances, for FC009's lock discipline);
* the loop / lock / function / class stacks.

Adding a rule means adding one module under ``repro/checks/rules/``
and listing it in the registry (see ``docs/static-analysis.md`` for
the walkthrough); the engine, CLI, SARIF output, cache, and ``--stats``
all pick it up from the registry's metadata.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Collection, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.checks.callgraph import CallGraph
from repro.checks.dataflow import (
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
    ProjectIndex,
    ProjectSymbols,
    dotted_name,
    is_set_annotation,
    is_set_expr,
)

__all__ = [
    "Finding",
    "Rule",
    "RuleContext",
    "FileEngine",
    "NOQA_RE",
    "line_suppresses",
]

#: ``# noqa`` / ``# noqa: FC001, FC003`` — shared by the driver's
#: suppression pass, the noqa-typo guard, and the autofixer (which
#: must not "fix" a violation the author explicitly waved through).
NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+\d+(?:[,\s]+[A-Z]+\d+)*))?",
    re.IGNORECASE,
)


def line_suppresses(line: str, code: str) -> bool:
    """Does ``line`` carry a noqa comment covering ``code``?"""
    match = NOQA_RE.search(line)
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    wanted = {
        item.strip().upper() for item in re.split(r"[,\s]+", codes)
    }
    return code in wanted


@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppressed violation) at a location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def hint(self) -> str:
        from repro.checks.rules import RULES

        return RULES.get(self.code, ("", ""))[1]


def _in_scope(module: Optional[str], prefixes: Sequence[str]) -> bool:
    if module is None:
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


class Rule:
    """Base class: metadata plus no-op event hooks."""

    #: Rule code (``FC00x``), one-line summary, and fix hint — the
    #: single source of metadata for the CLI, SARIF, docs, and tests.
    code: str = "FC000"
    summary: str = ""
    hint: str = ""
    #: Module-prefix scope; ``None`` applies everywhere.
    scope: Optional[Tuple[str, ...]] = None

    def applies(self, module: Optional[str]) -> bool:
        if self.scope is None:
            return True
        return _in_scope(module, self.scope)

    # -- per-file event hooks (override what the rule needs) ---------

    def on_module(self, node: ast.Module, ctx: "RuleContext") -> None:
        pass

    def on_import(self, node: ast.Import, ctx: "RuleContext") -> None:
        pass

    def on_import_from(
        self, node: ast.ImportFrom, ctx: "RuleContext"
    ) -> None:
        pass

    def on_call(
        self, node: ast.Call, dotted: Optional[str], ctx: "RuleContext"
    ) -> None:
        pass

    def on_compare(self, node: ast.Compare, ctx: "RuleContext") -> None:
        pass

    def on_iteration(self, iter_node: ast.expr, ctx: "RuleContext") -> None:
        pass

    def on_mutation(self, node: ast.stmt, ctx: "RuleContext") -> None:
        pass

    def on_function_def(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        ctx: "RuleContext",
    ) -> None:
        pass

    def on_lambda(self, node: ast.Lambda, ctx: "RuleContext") -> None:
        pass

    def on_class_def(self, node: ast.ClassDef, ctx: "RuleContext") -> None:
        pass

    def on_except_handler(
        self, node: ast.ExceptHandler, ctx: "RuleContext"
    ) -> None:
        pass

    # -- project-level hook (runs once per lint, after all files) ----

    def check_project(
        self, symbols: ProjectSymbols
    ) -> List[Finding]:
        return []


@dataclass
class _FunctionFrame:
    summary: FunctionSummary
    in_graph: bool


class RuleContext:
    """Everything a rule may read or report through."""

    def __init__(
        self,
        module_summary: ModuleSummary,
        index: ProjectIndex,
        graph: CallGraph,
        select: Optional[Collection[str]],
    ) -> None:
        self.summary = module_summary
        self.path = module_summary.path
        self.module = module_summary.module
        self.index = index
        self.graph = graph
        self._select = frozenset(select) if select is not None else None
        self.findings: List[Finding] = []
        # Engine-maintained dynamic state:
        self.loop_depth = 0
        self.lock_depth = 0
        self.set_vars: List[Set[str]] = [set()]
        #: Names rebound to a non-set value in this scope: shadows a
        #: same-named module set constant (no false positive).
        self.nonset_vars: List[Set[str]] = [set()]
        self.shared_vars: List[Dict[str, str]] = [{}]
        self.local_funcs: List[Set[str]] = []
        self.class_stack: List[ClassSummary] = []
        self.func_stack: List[_FunctionFrame] = []

    # -- reporting ---------------------------------------------------

    def report(self, node: ast.AST, code: str, message: str) -> None:
        if self._select is not None and code not in self._select:
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    # -- scope helpers ----------------------------------------------

    def in_scope(self, prefixes: Sequence[str]) -> bool:
        return _in_scope(self.module, prefixes)

    @property
    def current_class(self) -> Optional[ClassSummary]:
        return self.class_stack[-1] if self.class_stack else None

    @property
    def current_function(self) -> Optional[FunctionSummary]:
        return self.func_stack[-1].summary if self.func_stack else None

    @property
    def in_async_function(self) -> bool:
        return bool(self.func_stack) and self.func_stack[-1].summary.is_async

    @property
    def async_reachable(self) -> bool:
        """The enclosing function is async, or the call graph marks it
        reachable from async code."""
        if not self.func_stack:
            return False
        frame = self.func_stack[-1]
        if frame.summary.is_async:
            return True
        return (
            frame.in_graph
            and frame.summary.qualname in self.graph.async_reachable
        )

    @property
    def sync_guarded(self) -> bool:
        """Inside a ``with <lock>:`` block or a function carrying a
        recognized synchronization decorator."""
        if self.lock_depth > 0:
            return True
        return any(
            frame.summary.sync_decorated for frame in self.func_stack
        )

    def all_local_funcs(self) -> Set[str]:
        names: Set[str] = set()
        for scope in self.local_funcs:
            names |= scope
        return names

    # -- dataflow queries --------------------------------------------

    def set_reason(self, node: ast.expr) -> Optional[str]:
        """Why ``node`` is believed to evaluate to a set, or ``None``.

        Reasons: ``"literal"`` (a set expression right there),
        ``"var"`` (a local known to hold one), ``"attr"`` (a
        set-typed ``self`` attribute from the class summary),
        ``"call"`` (a call resolving to a set-returning function), or
        ``"const"`` (a module-level set constant, local or imported).
        """
        if is_set_expr(node):
            return "literal"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "setdefault")
            and any(is_set_expr(arg) for arg in node.args[1:])
        ):
            return "literal"
        if isinstance(node, ast.Name):
            if node.id in self.set_vars[-1]:
                return "var"
            if node.id in self.nonset_vars[-1]:
                return None
            if self.index.module_set_constant(self.module, node.id):
                return "const"
            if self.index.imported_set_constant(self.module, node.id):
                return "const"
            return None
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.current_class is not None
                and node.attr in self.current_class.set_attrs
            ):
                return "attr"
            raw = dotted_name(node)
            if raw is not None and self.index.imported_set_constant(
                self.module, raw
            ):
                return "const"
            return None
        if isinstance(node, ast.Call):
            raw = dotted_name(node.func)
            if raw is None:
                return None
            fn = self.index.resolve_function(
                raw, self.module, self.current_class
            )
            if fn is not None and self.index.returns_set(
                fn, self.module, self.current_class
            ):
                return "call"
        return None

    def shared_base(self, node: ast.expr) -> Optional[str]:
        """The shared-state type name behind ``node`` (a variable or
        ``self`` attribute holding a ContainerPool / policy), else
        ``None``."""
        if isinstance(node, ast.Name):
            return self.shared_vars[-1].get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.current_class is not None
            and node.attr in self.current_class.shared_attrs
        ):
            return node.attr
        return None


_LOCKISH = ("lock", "mutex", "semaphore", "condition")


def _is_lock_expr(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    raw = dotted_name(target)
    if raw is None:
        return False
    tail = raw.split(".")[-1].lower()
    return any(fragment in tail for fragment in _LOCKISH)


class FileEngine(ast.NodeVisitor):
    """Single-pass walker dispatching events to the active rules."""

    def __init__(
        self,
        module_summary: ModuleSummary,
        index: ProjectIndex,
        graph: CallGraph,
        rules: Sequence[Rule],
        select: Optional[Collection[str]],
    ) -> None:
        self.ctx = RuleContext(module_summary, index, graph, select)
        self.rules = [
            rule for rule in rules if rule.applies(module_summary.module)
        ]

    def run(self, tree: ast.Module) -> List[Finding]:
        for rule in self.rules:
            rule.on_module(tree, self.ctx)
        self.visit(tree)
        return self.ctx.findings

    # -- imports -----------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for rule in self.rules:
            rule.on_import(node, self.ctx)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for rule in self.rules:
            rule.on_import_from(node, self.ctx)
        self.generic_visit(node)

    # -- assignments: dataflow bookkeeping then rule dispatch --------

    def _track_assignment(
        self,
        target: ast.expr,
        value: Optional[ast.expr],
        annotation: Optional[ast.expr] = None,
    ) -> None:
        ctx = self.ctx
        if not isinstance(target, ast.Name):
            return
        set_scope = ctx.set_vars[-1]
        if (
            value is not None and ctx.set_reason(value) is not None
        ) or is_set_annotation(annotation):
            set_scope.add(target.id)
            ctx.nonset_vars[-1].discard(target.id)
        else:
            # Rebound to something else: stop treating it as a set.
            set_scope.discard(target.id)
            if value is not None:
                ctx.nonset_vars[-1].add(target.id)
        shared_scope = ctx.shared_vars[-1]
        shared = _shared_value_type(value, annotation, ctx)
        if shared is not None:
            shared_scope[target.id] = shared
        elif value is not None or annotation is not None:
            shared_scope.pop(target.id, None)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._track_assignment(target, node.value)
        for rule in self.rules:
            rule.on_mutation(node, self.ctx)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._track_assignment(node.target, node.value, node.annotation)
        for rule in self.rules:
            rule.on_mutation(node, self.ctx)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for rule in self.rules:
            rule.on_mutation(node, self.ctx)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for rule in self.rules:
            rule.on_mutation(node, self.ctx)
        self.generic_visit(node)

    # -- loops and comprehensions ------------------------------------

    def visit_For(self, node: ast.For) -> None:
        for rule in self.rules:
            rule.on_iteration(node.iter, self.ctx)
        self.ctx.loop_depth += 1
        self.generic_visit(node)
        self.ctx.loop_depth -= 1

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        for rule in self.rules:
            rule.on_iteration(node.iter, self.ctx)
        self.ctx.loop_depth += 1
        self.generic_visit(node)
        self.ctx.loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self.ctx.loop_depth += 1
        self.generic_visit(node)
        self.ctx.loop_depth -= 1

    def _visit_comprehension(
        self,
        node: Union[
            ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp
        ],
    ) -> None:
        for generator in node.generators:
            for rule in self.rules:
                rule.on_iteration(generator.iter, self.ctx)
        self.ctx.loop_depth += 1
        self.generic_visit(node)
        self.ctx.loop_depth -= 1

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    # -- expressions -------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        for rule in self.rules:
            rule.on_call(node, dotted, self.ctx)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        for rule in self.rules:
            rule.on_compare(node, self.ctx)
        self.generic_visit(node)

    # -- locks -------------------------------------------------------

    def _visit_with(
        self, node: Union[ast.With, ast.AsyncWith]
    ) -> None:
        locked = any(
            _is_lock_expr(item.context_expr) for item in node.items
        )
        if locked:
            self.ctx.lock_depth += 1
        self.generic_visit(node)
        if locked:
            self.ctx.lock_depth -= 1

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    # -- definitions -------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for rule in self.rules:
            rule.on_class_def(node, self.ctx)
        summary = self.ctx.summary.classes.get(node.name)
        if summary is None:
            prefix = f"{self.ctx.module}." if self.ctx.module else ""
            summary = ClassSummary(
                name=node.name, qualname=f"{prefix}{node.name}"
            )
        self.ctx.class_stack.append(summary)
        self.generic_visit(node)
        self.ctx.class_stack.pop()

    def _function_summary_for(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> Tuple[FunctionSummary, bool]:
        ctx = self.ctx
        owner: Optional[FunctionSummary] = None
        if ctx.func_stack:
            owner = None  # nested defs are not in the project graph
        elif ctx.current_class is not None:
            owner = ctx.current_class.methods.get(node.name)
        else:
            owner = ctx.summary.functions.get(node.name)
        if owner is not None:
            return owner, True
        from repro.checks.dataflow import _summarize_function

        return _summarize_function(node, f"<local>.{node.name}"), False

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        ctx = self.ctx
        for rule in self.rules:
            rule.on_function_def(node, ctx)
        if ctx.local_funcs:
            ctx.local_funcs[-1].add(node.name)
        summary, in_graph = self._function_summary_for(node)
        ctx.func_stack.append(_FunctionFrame(summary, in_graph))
        ctx.local_funcs.append(set())
        ctx.set_vars.append(set())
        ctx.nonset_vars.append(set())
        shared_frame: Dict[str, str] = {}
        all_args = list(node.args.args) + list(node.args.kwonlyargs)
        all_args += list(node.args.posonlyargs)
        for arg in all_args:
            shared = _shared_annotation_type(arg.annotation)
            if shared is not None:
                shared_frame[arg.arg] = shared
        ctx.shared_vars.append(shared_frame)
        self.generic_visit(node)
        ctx.shared_vars.pop()
        ctx.nonset_vars.pop()
        ctx.set_vars.pop()
        ctx.local_funcs.pop()
        ctx.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        for rule in self.rules:
            rule.on_lambda(node, self.ctx)
        self.generic_visit(node)

    # -- error handling ----------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        for rule in self.rules:
            rule.on_except_handler(node, self.ctx)
        self.generic_visit(node)


def _shared_annotation_type(annotation: Optional[ast.expr]) -> Optional[str]:
    from repro.checks.dataflow import (
        SHARED_STATE_CLASS,
        SHARED_STATE_SUFFIX,
    )

    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    raw = (
        node.value
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
        else dotted_name(node)
    )
    if not isinstance(raw, str):
        return None
    tail = raw.split("[", 1)[0].strip().split(".")[-1]
    if tail == SHARED_STATE_CLASS or (
        tail.endswith(SHARED_STATE_SUFFIX) and tail != SHARED_STATE_SUFFIX
    ):
        return tail
    return None


def _shared_value_type(
    value: Optional[ast.expr],
    annotation: Optional[ast.expr],
    ctx: RuleContext,
) -> Optional[str]:
    from repro.checks.dataflow import (
        SHARED_STATE_CLASS,
        SHARED_STATE_SUFFIX,
    )

    annotated = _shared_annotation_type(annotation)
    if annotated is not None:
        return annotated
    if isinstance(value, ast.Call):
        raw = dotted_name(value.func)
        if raw is not None:
            tail = raw.split(".")[-1]
            if tail == SHARED_STATE_CLASS or (
                tail.endswith(SHARED_STATE_SUFFIX)
                and tail != SHARED_STATE_SUFFIX
            ):
                return tail
    if isinstance(value, ast.Name):
        return ctx.shared_vars[-1].get(value.id)
    if value is not None:
        shared = ctx.shared_base(value)
        if shared is not None and isinstance(value, ast.Attribute):
            return shared
    return None

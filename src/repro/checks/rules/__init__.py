"""Rule registry: the one list the engine, CLI, SARIF output, cache
environment hash, docs table, and fixture tests all derive from.

To add a rule: write ``fc0xx_name.py`` with a :class:`~repro.checks.
rules.base.Rule` subclass, import it here, and append an instance to
``ALL_RULES`` (keep code order). Everything else picks it up.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.checks.rules.base import FileEngine, Finding, Rule, RuleContext
from repro.checks.rules.fc001_wall_clock import WallClockRule
from repro.checks.rules.fc002_rng import UnseededRngRule
from repro.checks.rules.fc003_set_order import SetOrderRule
from repro.checks.rules.fc004_event_names import EventNameRule
from repro.checks.rules.fc005_counter_contract import CounterContractRule
from repro.checks.rules.fc006_pickle_safety import PickleSafetyRule
from repro.checks.rules.fc007_float_equality import FloatEqualityRule
from repro.checks.rules.fc008_mutable_defaults import MutableDefaultRule
from repro.checks.rules.fc009_lock_discipline import LockDisciplineRule
from repro.checks.rules.fc010_blocking_async import BlockingAsyncRule
from repro.checks.rules.fc011_swallowed_exceptions import (
    SwallowedExceptionRule,
)

__all__ = [
    "ALL_RULES",
    "RULES",
    "NOQA_GUARD_CODE",
    "FileEngine",
    "Finding",
    "Rule",
    "RuleContext",
]

#: Rule instances in code order; the engine iterates these per file.
ALL_RULES: List[Rule] = [
    WallClockRule(),
    UnseededRngRule(),
    SetOrderRule(),
    EventNameRule(),
    CounterContractRule(),
    PickleSafetyRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    LockDisciplineRule(),
    BlockingAsyncRule(),
    SwallowedExceptionRule(),
]

#: code -> (summary, fix hint); derived from the instances so the two
#: can never drift apart.
RULES: Dict[str, Tuple[str, str]] = {
    rule.code: (rule.summary, rule.hint) for rule in ALL_RULES
}

#: Pseudo-code for the noqa typo guard: a ``# noqa: FCxxx`` comment
#: naming a code that does not exist is itself a finding (it would
#: otherwise silently suppress nothing, forever). Not in ``RULES`` —
#: it has no fixture pair and cannot itself be suppressed.
NOQA_GUARD_CODE = "FC000"

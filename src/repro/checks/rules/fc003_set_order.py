"""FC003 — unordered set iteration in deterministic paths.

Set iteration order depends on ``PYTHONHASHSEED``; an unsorted set
walk is a replay difference waiting to happen. Since the two-phase
engine landed, the rule follows sets *interprocedurally*: through
``self._attr`` loads (class attribute types inferred from
``__init__``/dataclass fields), through function return values (call
graph return summaries), and through module-level constants — the
standing ROADMAP gap the single-pass visitor could not close.

The membership sub-rule (a set rebuilt inside the loop it guards) is
unchanged.
"""

from __future__ import annotations

import ast

from repro.checks.dataflow import is_set_expr
from repro.checks.rules.base import Rule, RuleContext
from repro.checks.rules.fc001_wall_clock import DETERMINISTIC_SCOPE

_REASON_MESSAGES = {
    "literal": (
        "iterating an unordered set in a deterministic path; wrap it "
        "in sorted(...)"
    ),
    "var": (
        "{name!r} holds a set and reaches this loop unordered; iterate "
        "sorted(...) of it"
    ),
    "attr": (
        "attribute {name!r} is set-typed (inferred from its class) and "
        "is iterated unordered; iterate sorted(...) of it"
    ),
    "call": (
        "{name}() returns a set (per its return summary) and is "
        "iterated unordered; iterate sorted(...) of it"
    ),
    "const": (
        "module constant {name!r} is a set and is iterated unordered; "
        "iterate sorted(...) of it"
    ),
}


def _described_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _described_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    if isinstance(node, ast.Call):
        return _described_name(node.func)
    return "<expr>"


class SetOrderRule(Rule):
    code = "FC003"
    summary = (
        "unordered set iterated (or rebuilt per element) in a "
        "deterministic path"
    )
    hint = (
        "iterate sorted(the_set) instead; hoist membership sets out "
        "of the loop"
    )
    scope = DETERMINISTIC_SCOPE + ("repro.traces",)

    def on_iteration(self, iter_node: ast.expr, ctx: RuleContext) -> None:
        reason = ctx.set_reason(iter_node)
        if reason is None:
            return
        template = _REASON_MESSAGES[reason]
        name = _described_name(iter_node)
        if reason == "call":
            message = template.format(name=name)
        elif reason == "literal":
            message = template
        else:
            message = template.format(name=name)
        ctx.report(iter_node, self.code, message)

    def on_compare(self, node: ast.Compare, ctx: RuleContext) -> None:
        if ctx.loop_depth <= 0:
            return
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.In, ast.NotIn)) and is_set_expr(
                comparator
            ):
                ctx.report(
                    comparator,
                    self.code,
                    "membership set rebuilt on every loop iteration; "
                    "hoist it out of the loop",
                )

"""FC006 — unpicklable callables crossing the sweep process boundary.

``lambda``/local-function values in dataclass field defaults or in
arguments shipped to ``run_sweep_parallel`` break pickling into
worker processes. The parent-side ``progress=`` callback is exempt —
it never crosses the boundary.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.checks.dataflow import dotted_name
from repro.checks.rules.base import Rule, RuleContext


class PickleSafetyRule(Rule):
    code = "FC006"
    summary = (
        "unpicklable callable in a dataclass default or "
        "run_sweep_parallel argument"
    )
    hint = (
        "use a module-level function (the parent-side progress= "
        "callback is exempt)"
    )
    scope = None

    def on_call(
        self, node: ast.Call, dotted: Optional[str], ctx: RuleContext
    ) -> None:
        if dotted is None or dotted.split(".")[-1] != "run_sweep_parallel":
            return
        local_names = ctx.all_local_funcs()
        values: List[Tuple[Optional[str], ast.expr]] = [
            (None, arg) for arg in node.args
        ]
        values += [(kw.arg, kw.value) for kw in node.keywords]
        for keyword, value in values:
            if keyword == "progress":
                continue  # invoked parent-side only, never pickled
            if isinstance(value, ast.Lambda):
                ctx.report(
                    value,
                    self.code,
                    "lambda shipped to run_sweep_parallel cannot cross "
                    "the process boundary (unpicklable)",
                )
            elif isinstance(value, ast.Name) and value.id in local_names:
                ctx.report(
                    value,
                    self.code,
                    f"locally-defined function {value.id!r} shipped to "
                    "run_sweep_parallel cannot cross the process "
                    "boundary (unpicklable)",
                )

    def on_class_def(self, node: ast.ClassDef, ctx: RuleContext) -> None:
        decorated = False
        for decorator in node.decorator_list:
            target = (
                decorator.func
                if isinstance(decorator, ast.Call)
                else decorator
            )
            name = dotted_name(target)
            if name in ("dataclass", "dataclasses.dataclass"):
                decorated = True
        if not decorated:
            return
        for stmt in node.body:
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if value is None:
                continue
            if isinstance(value, ast.Lambda):
                ctx.report(
                    value,
                    self.code,
                    "lambda as a dataclass field default breaks pickling "
                    "of the dataclass",
                )
            elif isinstance(value, ast.Call):
                for kw in value.keywords:
                    if kw.arg in (
                        "default",
                        "default_factory",
                    ) and isinstance(kw.value, ast.Lambda):
                        ctx.report(
                            kw.value,
                            self.code,
                            f"lambda as a dataclass {kw.arg} breaks "
                            "pickling of the dataclass",
                        )

"""FC004 — unknown event type passed to ``.emit()``.

Event-name string literals must be keys of
``repro.obs.events.EVENT_SCHEMAS``; a typo'd event type otherwise
survives until a strict-mode replay test flakes.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.checks.rules.base import Rule, RuleContext


class EventNameRule(Rule):
    code = "FC004"
    summary = "unknown event type passed to .emit()"
    hint = "use a name registered in repro.obs.events.EVENT_SCHEMAS"
    scope = None  # every checked file may emit events

    def on_call(
        self, node: ast.Call, dotted: Optional[str], ctx: RuleContext
    ) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            return
        event_name = node.args[0].value
        known = ctx.index.symbols.event_names
        if known and event_name not in known:
            ctx.report(
                node.args[0],
                self.code,
                f"event type {event_name!r} is not registered in "
                "repro.obs.events.EVENT_SCHEMAS",
            )

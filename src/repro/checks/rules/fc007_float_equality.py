"""FC007 — exact float equality in sim/policy code.

Greedy-Dual priorities are accumulated floats; exact ``==``/``!=`` is
representation-dependent. Compare with a tolerance or
``math.isclose`` (the ``--fix`` autofixer rewrites the mechanical
cases to the latter).
"""

from __future__ import annotations

import ast

from repro.checks.rules.base import Rule, RuleContext

#: repro.analysis feeds the HIST policy's predictability classifier
#: (Welford CoV), so its float guards are priority math too.
FLOAT_EQ_SCOPE = ("repro.sim", "repro.core", "repro.analysis")


def is_floatish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return is_floatish(node.operand)
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    )


class FloatEqualityRule(Rule):
    code = "FC007"
    summary = "float equality comparison in sim/policy code"
    hint = (
        "compare with a tolerance (abs(a - b) <= eps) or math.isclose"
    )
    scope = FLOAT_EQ_SCOPE

    def on_compare(self, node: ast.Compare, ctx: RuleContext) -> None:
        if not any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            return
        operands = [node.left] + list(node.comparators)
        if any(is_floatish(operand) for operand in operands):
            ctx.report(
                node,
                self.code,
                "exact float equality in sim/policy code; priority "
                "math needs a tolerance",
            )

"""FC008 — mutable default arguments.

The classic shared-state bug; in a simulator it shows up as cross-run
contamination, i.e. nondeterminism. The ``--fix`` autofixer rewrites
these to ``None`` defaults with an in-body guard.
"""

from __future__ import annotations

import ast
from typing import List, Union

from repro.checks.rules.base import Rule, RuleContext


def is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
         ast.SetComp),
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "dict", "set", "bytearray")
    )


class MutableDefaultRule(Rule):
    code = "FC008"
    summary = "mutable default argument"
    hint = "default to None and create the object inside the function"
    scope = None

    def _check_defaults(
        self, args: ast.arguments, ctx: RuleContext
    ) -> None:
        defaults: List[ast.expr] = list(args.defaults)
        defaults += [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if is_mutable_default(default):
                ctx.report(
                    default,
                    self.code,
                    "mutable default argument is shared across calls",
                )

    def on_function_def(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        ctx: RuleContext,
    ) -> None:
        self._check_defaults(node.args, ctx)

    def on_lambda(self, node: ast.Lambda, ctx: RuleContext) -> None:
        self._check_defaults(node.args, ctx)

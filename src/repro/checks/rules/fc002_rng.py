"""FC002 — global or unseeded RNG in simulation paths.

All randomness must flow through a seeded ``random.Random(seed)`` or
``numpy.random.default_rng(seed)`` instance; the process-global RNG
makes replays depend on import order and interpreter history.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.checks.rules.base import Rule, RuleContext
from repro.checks.rules.fc001_wall_clock import DETERMINISTIC_SCOPE

#: random-module attributes that are fine to call (class constructors,
#: checked separately for missing seeds).
_RANDOM_OK = frozenset({"Random", "SystemRandom"})
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence"})


class UnseededRngRule(Rule):
    code = "FC002"
    summary = "global or unseeded RNG in a simulation path"
    hint = (
        "draw from a seeded random.Random(seed) / "
        "numpy.random.default_rng(seed) instance"
    )
    scope = DETERMINISTIC_SCOPE + (
        "repro.traces",
        "repro.openwhisk",
        "repro.provisioning",
    )

    def on_import_from(
        self, node: ast.ImportFrom, ctx: RuleContext
    ) -> None:
        if node.module != "random":
            return
        for alias in node.names:
            if alias.name not in _RANDOM_OK:
                ctx.report(
                    node,
                    self.code,
                    f"from random import {alias.name}: module-level RNG "
                    "in a simulation path",
                )

    def on_call(
        self, node: ast.Call, dotted: Optional[str], ctx: RuleContext
    ) -> None:
        if dotted is None:
            return
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] not in _RANDOM_OK:
                ctx.report(
                    node,
                    self.code,
                    f"{dotted}() draws from the process-global RNG; "
                    "simulation randomness must be seeded",
                )
            elif parts[1] == "Random" and not node.args and not node.keywords:
                ctx.report(
                    node,
                    self.code,
                    "random.Random() without a seed is entropy-seeded "
                    "and nondeterministic",
                )
        elif (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
        ):
            if parts[2] not in _NP_RANDOM_OK:
                ctx.report(
                    node,
                    self.code,
                    f"{dotted}() uses numpy's legacy global RNG; use a "
                    "seeded Generator",
                )
            elif (
                parts[2] == "default_rng"
                and not node.args
                and not node.keywords
            ):
                ctx.report(
                    node,
                    self.code,
                    f"{dotted}() without a seed is entropy-seeded and "
                    "nondeterministic",
                )

"""FC010 — blocking call on an async-reachable path.

``time.sleep`` (or a subprocess / socket / urllib call) inside an
``async def`` — or inside a sync helper the call graph shows is
called *from* one — stalls the whole live-mode event loop: every
in-flight cold-start and eviction timer stops with it. The call graph
half is what the old single-file linter could not see.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.checks.rules.base import Rule, RuleContext

#: Known-blocking callables (exact dotted names or ``prefix.*``).
_BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.wait",
        "urllib.request.urlopen",
        "socket.create_connection",
    }
)
_BLOCKING_PREFIXES = ("subprocess.", "requests.")


def _blocking_name(dotted: Optional[str]) -> Optional[str]:
    if dotted is None:
        return None
    if dotted in _BLOCKING_EXACT:
        return dotted
    for prefix in _BLOCKING_PREFIXES:
        if dotted.startswith(prefix):
            return dotted
    return None


class BlockingAsyncRule(Rule):
    code = "FC010"
    summary = "blocking call on an async-reachable path"
    hint = (
        "await asyncio.sleep / run_in_executor instead of blocking "
        "the event loop"
    )
    scope = ("repro",)

    def on_call(
        self, node: ast.Call, dotted: Optional[str], ctx: RuleContext
    ) -> None:
        blocking = _blocking_name(dotted)
        if blocking is None or not ctx.func_stack:
            return
        if ctx.in_async_function:
            where = "inside an async def"
        elif ctx.async_reachable:
            where = (
                "in a function the call graph shows is reachable "
                "from async code"
            )
        else:
            return
        ctx.report(
            node,
            self.code,
            f"blocking call {blocking}() {where} stalls the event loop",
        )

"""Autofixes for the mechanical rules (``repro-faascache check --fix``).

Two rewrites, both span-based (``end_lineno``/``end_col_offset``) and
applied bottom-up so earlier edits never shift later spans:

* **FC008** — a mutable default becomes ``None`` plus an
  ``if <arg> is None: <arg> = <original>`` guard inserted after the
  docstring. Lambdas are reported but not fixed (no body to guard in).
* **FC007** — ``a == 0.5`` / ``a != 0.5`` become
  ``math.isclose(a, 0.5)`` / ``not math.isclose(a, 0.5)``, with
  ``import math`` inserted after the module's import block when
  missing. Chained comparisons are left for a human.

Lines carrying a covering ``noqa`` are never rewritten.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.checks.dataflow import module_name_for
from repro.checks.rules.base import line_suppresses
from repro.checks.rules.fc007_float_equality import (
    FLOAT_EQ_SCOPE,
    is_floatish,
)
from repro.checks.rules.fc008_mutable_defaults import is_mutable_default

__all__ = ["fix_source", "fix_paths"]

#: (start_offset, end_offset, replacement) on the raw source text.
_Edit = Tuple[int, int, str]


def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets

def _offset(offsets: List[int], lineno: int, col: int) -> int:
    return offsets[lineno - 1] + col


def _span(offsets: List[int], node: ast.expr) -> Optional[Tuple[int, int]]:
    if node.end_lineno is None or node.end_col_offset is None:
        return None
    return (
        _offset(offsets, node.lineno, node.col_offset),
        _offset(offsets, node.end_lineno, node.end_col_offset),
    )


def _in_scope(module: Optional[str], prefixes: Sequence[str]) -> bool:
    if module is None:
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _suppressed(lines: List[str], lineno: int, code: str) -> bool:
    if not 1 <= lineno <= len(lines):
        return False
    return line_suppresses(lines[lineno - 1], code)


# ----------------------------------------------------------------------
# FC008: mutable defaults
# ----------------------------------------------------------------------


def _default_pairs(
    args: ast.arguments,
) -> List[Tuple[str, ast.expr]]:
    pairs: List[Tuple[str, ast.expr]] = []
    positional = list(args.posonlyargs) + list(args.args)
    for arg, default in zip(
        positional[len(positional) - len(args.defaults):], args.defaults
    ):
        pairs.append((arg.arg, default))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            pairs.append((arg.arg, default))
    return pairs


def _guard_insertion_stmt(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> Optional[ast.stmt]:
    """The statement the ``is None`` guards go in front of (the first
    non-docstring one), or ``None`` when the body offers no safe spot
    (single-line defs, docstring-only bodies)."""
    body = node.body
    if not body:
        return None
    first = body[0]
    if (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    ):
        body = body[1:]
        if not body:
            return None
        first = body[0]
    if first.lineno <= node.lineno:
        return None  # body on the def line itself
    return first


def _fc008_edits(
    tree: ast.Module,
    source: str,
    lines: List[str],
    offsets: List[int],
) -> List[_Edit]:
    edits: List[_Edit] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fixable: List[Tuple[str, ast.expr]] = []
        for name, default in _default_pairs(node.args):
            if not is_mutable_default(default):
                continue
            if _suppressed(lines, default.lineno, "FC008"):
                continue
            fixable.append((name, default))
        if not fixable:
            continue
        anchor = _guard_insertion_stmt(node)
        if anchor is None:
            continue
        guard_lines: List[str] = []
        local_edits: List[_Edit] = []
        indent = lines[anchor.lineno - 1][: anchor.col_offset]
        ok = True
        for name, default in fixable:
            original = ast.get_source_segment(source, default)
            span = _span(offsets, default)
            if original is None or span is None:
                ok = False
                break
            guard_lines.append(f"{indent}if {name} is None:\n")
            guard_lines.append(f"{indent}    {name} = {original}\n")
            local_edits.append((span[0], span[1], "None"))
        if not ok:
            continue
        insert_at = _offset(offsets, anchor.lineno, 0)
        local_edits.append((insert_at, insert_at, "".join(guard_lines)))
        edits.extend(local_edits)
    return edits


# ----------------------------------------------------------------------
# FC007: float equality
# ----------------------------------------------------------------------


def _has_math_import(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "math" and alias.asname in (None, "math"):
                    return True
    return False


def _import_insert_line(tree: ast.Module) -> int:
    """1-based line to insert ``import math`` at (start of that line)."""
    body = list(tree.body)
    index = 0
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        index = 1
    last_import: Optional[ast.stmt] = None
    for node in body[index:]:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last_import = node
        else:
            break
    if last_import is not None and last_import.end_lineno is not None:
        return last_import.end_lineno + 1
    if index == 1 and body[0].end_lineno is not None:
        return body[0].end_lineno + 1
    return body[index].lineno if len(body) > index else 1


def _fc007_edits(
    tree: ast.Module,
    source: str,
    lines: List[str],
    offsets: List[int],
    module: Optional[str],
) -> List[_Edit]:
    if not _in_scope(module, FLOAT_EQ_SCOPE):
        return []
    edits: List[_Edit] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        op = node.ops[0]
        if not isinstance(op, (ast.Eq, ast.NotEq)):
            continue
        left, right = node.left, node.comparators[0]
        if not (is_floatish(left) or is_floatish(right)):
            continue
        if _suppressed(lines, node.lineno, "FC007"):
            continue
        span = _span(offsets, node)
        left_src = ast.get_source_segment(source, left)
        right_src = ast.get_source_segment(source, right)
        if span is None or left_src is None or right_src is None:
            continue
        call = f"math.isclose({left_src}, {right_src})"
        if isinstance(op, ast.NotEq):
            call = f"not {call}"
        edits.append((span[0], span[1], call))
    if edits and not _has_math_import(tree):
        at = _offset(offsets, min(_import_insert_line(tree),
                                  len(offsets) - 1), 0)
        edits.append((at, at, "import math\n"))
    return edits


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def fix_source(
    source: str,
    module: Optional[str],
    select: Optional[Set[str]] = None,
) -> Tuple[str, int]:
    """Apply every available autofix; ``(new_source, n_fixes)``."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    lines = source.splitlines()
    offsets = _line_offsets(source)
    edits: List[_Edit] = []
    if select is None or "FC008" in select:
        edits += _fc008_edits(tree, source, lines, offsets)
    if select is None or "FC007" in select:
        edits += _fc007_edits(tree, source, lines, offsets, module)
    if not edits:
        return source, 0
    fixes = sum(1 for start, end, _ in edits if start != end)
    out = source
    for start, end, replacement in sorted(edits, reverse=True):
        out = out[:start] + replacement + out[end:]
    return out, fixes


def fix_paths(
    paths: Sequence[pathlib.Path],
    select: Optional[Set[str]] = None,
) -> Dict[str, int]:
    """Rewrite each fixable file in place; path -> fix count."""
    fixed: Dict[str, int] = {}
    for path in paths:
        try:
            source = path.read_text()
        except OSError:
            continue
        module = module_name_for(path, source)
        new_source, count = fix_source(source, module, select=select)
        if count and new_source != source:
            path.write_text(new_source)
            fixed[str(path)] = count
    return fixed

"""Project call graph with return-type-aware, degrade-to-unknown edges.

Built once per run from the phase-1 :class:`~repro.checks.dataflow.
ModuleSummary` set, the graph answers the two reachability questions
the live-mode concurrency rules ask:

* **FC010** — is this (sync) function transitively *called from* an
  ``async def``? Blocking calls inside such functions stall the event
  loop just as surely as inside the coroutine itself.
* **FC009** — from how many distinct *public entry points* is this
  function reachable? Shared pool/policy state mutated by a helper
  that two public methods can reach needs lock discipline; a helper
  confined to one entry point does not.

Edges only exist where the raw call target resolves inside the
project (``tests/test_checks_dataflow.py`` pins the adversarial
shapes: cycles terminate, ``functools.partial`` indirection and
unrecognized decorators degrade to *unknown* — no edge — rather than
a wrong edge, and re-exports via package ``__init__`` resolve with a
hop limit).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.checks.dataflow import (
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
    ProjectIndex,
)

__all__ = ["CallGraph"]


class CallGraph:
    """Resolved call edges plus the derived reachability sets."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: qualname -> resolved callee qualnames
        self.edges: Dict[str, Tuple[str, ...]] = {}
        #: qualname -> summary, for every function in the project
        self.functions: Dict[str, FunctionSummary] = {}
        self._build()
        self.async_reachable: Set[str] = self._compute_async_reachable()
        self._reverse: Optional[Dict[str, List[str]]] = None
        self._entry_counts: Dict[str, int] = {}

    # -- construction ------------------------------------------------

    def _iter_functions(
        self,
    ) -> List[Tuple[ModuleSummary, Optional[ClassSummary], FunctionSummary]]:
        out: List[
            Tuple[ModuleSummary, Optional[ClassSummary], FunctionSummary]
        ] = []
        for summary in self.index.summaries:
            for fn in summary.functions.values():
                out.append((summary, None, fn))
            for cls in summary.classes.values():
                for fn in cls.methods.values():
                    out.append((summary, cls, fn))
        return out

    def _build(self) -> None:
        for module, cls, fn in self._iter_functions():
            self.functions[fn.qualname] = fn
            resolved: List[str] = []
            for raw in fn.calls:
                callee = self.index.resolve_function(
                    raw, module.module, cls
                )
                if callee is not None:
                    resolved.append(callee.qualname)
            self.edges[fn.qualname] = tuple(sorted(set(resolved)))

    def _compute_async_reachable(self) -> Set[str]:
        """Functions reachable *from* async code along call edges
        (including the async defs themselves)."""
        reachable: Set[str] = set()
        queue: deque[str] = deque(
            qualname
            for qualname, fn in self.functions.items()
            if fn.is_async
        )
        reachable.update(queue)
        while queue:
            current = queue.popleft()
            for callee in self.edges.get(current, ()):
                if callee not in reachable:
                    callee_fn = self.functions.get(callee)
                    # Crossing into another async def restarts the
                    # chain anyway; sync callees inherit reachability.
                    reachable.add(callee)
                    if callee_fn is not None:
                        queue.append(callee)
        return reachable

    # -- queries -----------------------------------------------------

    def callees_of(self, qualname: str) -> Tuple[str, ...]:
        return self.edges.get(qualname, ())

    def _reverse_edges(self) -> Dict[str, List[str]]:
        if self._reverse is None:
            reverse: Dict[str, List[str]] = {}
            for caller, callees in self.edges.items():
                for callee in callees:
                    reverse.setdefault(callee, []).append(caller)
            self._reverse = reverse
        return self._reverse

    def public_entry_points(self, qualname: str) -> List[str]:
        """Distinct public functions/methods from which ``qualname``
        is reachable (itself included when public), sorted."""
        reverse = self._reverse_edges()
        seen: Set[str] = {qualname}
        queue: deque[str] = deque([qualname])
        entries: Set[str] = set()
        while queue:
            current = queue.popleft()
            fn = self.functions.get(current)
            if fn is not None and fn.is_public:
                entries.add(current)
            for caller in reverse.get(current, ()):
                if caller not in seen:
                    seen.add(caller)
                    queue.append(caller)
        return sorted(entries)

    def public_entry_count(self, qualname: str) -> int:
        cached = self._entry_counts.get(qualname)
        if cached is None:
            cached = len(self.public_entry_points(qualname))
            self._entry_counts[qualname] = cached
        return cached

    # -- cache support ----------------------------------------------

    def identity_facts(self) -> Dict[str, Tuple[Tuple[str, ...], bool]]:
        """Order-independent facts for the incremental cache's
        environment hash: the resolved edge set and async markers."""
        return {
            qualname: (
                self.edges.get(qualname, ()),
                fn.is_async,
            )
            for qualname, fn in sorted(self.functions.items())
        }

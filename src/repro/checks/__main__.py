"""``python -m repro.checks`` — run the determinism linter."""

import sys

from repro.checks.linter import main

if __name__ == "__main__":
    sys.exit(main())

"""Determinism & invariant checking for the FaasCache reproduction.

Two halves:

* the static analyzer — a two-phase, project-wide engine: phase 1
  (:mod:`repro.checks.dataflow`) summarizes every file, phase 2
  (:mod:`repro.checks.callgraph` + the per-rule modules under
  :mod:`repro.checks.rules`) resolves set types, return summaries,
  and async/entry-point reachability across files. Rules FC001–FC011,
  driven by :mod:`repro.checks.linter` (``repro-faascache check`` /
  ``python -m repro.checks``), with SARIF output
  (:mod:`repro.checks.sarif`), an incremental cache
  (:mod:`repro.checks.cache`) and autofixes
  (:mod:`repro.checks.fixes`);
* :mod:`repro.checks.sanitize` — the runtime invariant sanitizer,
  enabled with ``REPRO_SANITIZE=1`` or the CLI ``--sanitize`` flag.

See ``docs/static-analysis.md`` for the rule catalog and rationale.
"""

from repro.checks.linter import (
    RULES,
    CheckResult,
    Finding,
    check_paths,
    format_finding,
)
from repro.checks.sanitize import (
    ReportSink,
    SanitizeError,
    check_counter_equality,
    sanitize_enabled,
    set_sanitize,
)

__all__ = [
    "RULES",
    "CheckResult",
    "Finding",
    "check_paths",
    "format_finding",
    "ReportSink",
    "SanitizeError",
    "check_counter_equality",
    "sanitize_enabled",
    "set_sanitize",
]

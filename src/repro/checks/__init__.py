"""Determinism & invariant checking for the FaasCache reproduction.

Two halves:

* :mod:`repro.checks.linter` — the static AST pass (rules
  FC001–FC008), run as ``repro-faascache check`` or
  ``python -m repro.checks``;
* :mod:`repro.checks.sanitize` — the runtime invariant sanitizer,
  enabled with ``REPRO_SANITIZE=1`` or the CLI ``--sanitize`` flag.

See ``docs/static-analysis.md`` for the rule catalog and rationale.
"""

from repro.checks.linter import (
    RULES,
    CheckResult,
    Finding,
    check_paths,
    format_finding,
)
from repro.checks.sanitize import (
    ReportSink,
    SanitizeError,
    check_counter_equality,
    sanitize_enabled,
    set_sanitize,
)

__all__ = [
    "RULES",
    "CheckResult",
    "Finding",
    "check_paths",
    "format_finding",
    "ReportSink",
    "SanitizeError",
    "check_counter_equality",
    "sanitize_enabled",
    "set_sanitize",
]

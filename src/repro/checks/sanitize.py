"""The runtime invariant sanitizer (``REPRO_SANITIZE=1`` / ``--sanitize``).

The static rules in :mod:`repro.checks.linter` catch determinism
hazards at lint time; this module catches *accounting* bugs at run
time. When enabled, cheap assertion hooks fire inside
:class:`repro.core.pool.ContainerPool` and
:class:`repro.sim.scheduler.KeepAliveSimulator`:

* **memory conservation** — after every admission/eviction, the sum of
  live container memory must equal the pool's incremental ``used_mb``,
  and the idle/unpinned subset must equal ``evictable_mb``;
* **victim-index monotonicity** — the lazy heap behind
  ``iter_victims`` yields containers in ascending key order only if
  policies honour the monotone-priority contract; the sanitizer
  asserts each yielded key is >= its predecessor;
* **trace/metrics counter equality** — at the end of ``run()`` the
  lifecycle counters rebuilt from the event stream must equal
  :meth:`SimulationMetrics.counters` (the contract the
  trace-consistency CI job checks end-to-end; the sanitizer checks it
  on *every* sanitized run).

Zero overhead when disabled: components capture the flag once at
construction (mirroring the ``None``-tracer convention of
:mod:`repro.obs.tracer`), so the hot path pays nothing — not even an
environment lookup. The ``sanitize`` CI job runs the tier-1 suite with
``REPRO_SANITIZE=1``; the bench-smoke job's 2% overhead budget guards
the disabled path.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Optional

from repro.obs.report import TraceReport
from repro.obs.sinks import Sink

__all__ = [
    "SanitizeError",
    "sanitize_enabled",
    "set_sanitize",
    "ReportSink",
    "check_counter_equality",
    "check_tenant_counter_equality",
]


class SanitizeError(AssertionError):
    """An internal invariant the sanitizer watches was violated.

    Subclasses ``AssertionError`` because a violation means the
    simulator's own bookkeeping is inconsistent — a bug, never a user
    error.
    """


#: Test override: ``set_sanitize(True/False)`` beats the environment,
#: ``set_sanitize(None)`` defers back to it.
_FORCED: Optional[bool] = None

_FALSEY = ("", "0", "false", "no", "off")


def sanitize_enabled() -> bool:
    """Whether newly-constructed components should install hooks.

    Read once at construction time by each component — flipping the
    environment variable mid-simulation does not retrofit hooks.
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_SANITIZE", "").lower() not in _FALSEY


def set_sanitize(value: Optional[bool]) -> None:
    """Force the sanitizer on/off for this process (``None`` defers to
    the ``REPRO_SANITIZE`` environment variable). Test hook."""
    global _FORCED
    _FORCED = value


class ReportSink(Sink):
    """Feeds every event straight into an in-memory
    :class:`TraceReport`, so a sanitized simulator can rebuild its
    lifecycle counters without serializing anything."""

    def __init__(self) -> None:
        self.report = TraceReport()

    def emit(self, event: Mapping[str, Any]) -> None:
        self.report.add(event)


def check_counter_equality(
    report: TraceReport, counters: Mapping[str, int]
) -> None:
    """Raise :class:`SanitizeError` unless the counters rebuilt from
    the event stream equal the simulator's aggregate counters."""
    mismatches = report.check_counters(counters)
    if mismatches:
        raise SanitizeError(
            "trace/metrics counter equality violated: "
            + "; ".join(mismatches)
        )


def check_tenant_counter_equality(
    report: TraceReport, tenant_counters: Mapping[int, Mapping[str, int]]
) -> None:
    """Raise :class:`SanitizeError` unless the per-tenant counters
    rebuilt from the events' ``tenant`` fields equal the simulator's
    per-tenant aggregates (the multi-tenant half of the contract;
    vacuously true on tenant-less runs where both sides are empty)."""
    mismatches = report.check_tenant_counters(tenant_counters)
    if mismatches:
        raise SanitizeError(
            "trace/metrics tenant-counter equality violated: "
            + "; ".join(mismatches)
        )

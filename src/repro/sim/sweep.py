"""Parameter sweeps over (policy, memory size) grids.

Figures 5 and 6 of the paper plot, for each of three trace samples,
the execution-time increase and the cold-start fraction of seven
keep-alive policies across a range of server memory sizes. This module
runs those grids and returns tidy result tables the benchmark harness
and plotting code consume.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.policies import PAPER_POLICIES, create_policy
from repro.faults import FaultSpec, cell_fault_spec
from repro.obs.sinks import JsonlSink
from repro.obs.tracer import Tracer
from repro.sim.scheduler import KeepAliveSimulator, SimulationResult
from repro.sim.server import GB_MB
from repro.traces.model import Trace

__all__ = [
    "SweepPoint",
    "FailedCell",
    "SweepResult",
    "run_sweep",
    "run_cell",
    "cell_trace_path",
    "memory_sizes_gb",
    "point_from_result",
    "point_fingerprint",
]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid.

    The two throughput fields are observability, not simulation
    output: they vary between identical runs and are therefore
    excluded from equality, keeping sequential and parallel sweeps of
    the same grid bit-identical under ``==``.
    """

    policy: str
    memory_gb: float
    cold_start_pct: float
    exec_time_increase_pct: float
    drop_ratio: float
    hit_ratio: float
    global_hit_ratio: float
    #: Wall-clock seconds this cell's replay took.
    wall_time_s: float = field(default=0.0, compare=False)
    #: Invocations simulated per wall-clock second for this cell.
    invocations_per_s: float = field(default=0.0, compare=False)
    #: Snapshot of the cell's integer lifecycle counters
    #: (:meth:`SimulationMetrics.counters`). Deterministic, but kept
    #: out of ``==``/``hash`` so points stay hashable and older
    #: hand-built points (without counters) still compare equal.
    counters: Mapping[str, int] = field(default_factory=dict, compare=False)
    #: Per-tenant lifecycle counters
    #: (:meth:`SimulationMetrics.tenant_counters`), keyed by the
    #: *string form* of the tenant id so the snapshot JSON-round-trips
    #: unchanged. Empty on tenant-less cells, and excluded from
    #: ``==``/``hash`` for the same reasons as ``counters``.
    tenant_counters: Mapping[str, Mapping[str, int]] = field(
        default_factory=dict, compare=False
    )
    #: Jain fairness index over the cell's per-tenant warm-hit ratios
    #: (1.0 on tenant-less cells — the degenerate perfectly-fair case).
    jain_fairness_index: float = field(default=1.0, compare=False)


@dataclass(frozen=True)
class FailedCell:
    """A sweep cell that raised (after retry) instead of producing a
    :class:`SweepPoint`."""

    policy: str
    memory_gb: float
    error: str


def point_from_result(
    policy_name: str, memory_gb: float, result: SimulationResult
) -> SweepPoint:
    """Flatten one simulation outcome into a sweep-grid cell."""
    metrics = result.metrics
    return SweepPoint(
        policy=policy_name,
        memory_gb=memory_gb,
        cold_start_pct=metrics.cold_start_pct,
        exec_time_increase_pct=metrics.exec_time_increase_pct,
        drop_ratio=metrics.drop_ratio,
        hit_ratio=metrics.hit_ratio,
        global_hit_ratio=metrics.global_hit_ratio,
        wall_time_s=metrics.wall_time_s,
        invocations_per_s=metrics.invocations_per_s,
        counters=metrics.counters(),
        tenant_counters={
            str(tid): dict(counts)
            for tid, counts in metrics.tenant_counters().items()
        },
        jain_fairness_index=metrics.jain_fairness_index,
    )


#: Counters dropped from :func:`point_fingerprint` when zero, so cells
#: untouched by the harvest/spot subsystem keep their pre-subsystem
#: fingerprints (committed baselines stay valid without regeneration).
_ZERO_EXCLUDED_COUNTERS = (
    "capacity_shrinks",
    "capacity_grows",
    "eviction_notices",
    "deflations",
)


def point_fingerprint(point: SweepPoint) -> str:
    """SHA-256 over the deterministic fields of a sweep cell.

    Covers the identity (policy, memory), the headline ratios at full
    ``repr`` precision, and the sorted lifecycle counters — but not
    the wall-clock observability fields, which vary between identical
    runs. Two replays of the same seeded cell must fingerprint
    identically; the benchmark regression gate relies on this to
    detect silent result drift.

    The per-tenant payload joins the hash only when the cell actually
    has one: tenant-less cells fingerprint exactly as they did before
    multi-tenancy existed, so committed baselines
    (``benchmarks/BASELINE.json``) stay valid without regeneration.
    The harvested-capacity counters follow the same rule — a zero
    counter (no harvest/spot activity) is dropped from the hash, so
    harvest-free cells fingerprint exactly as before the subsystem
    existed.
    """
    counters = dict(sorted(point.counters.items()))
    for key in _ZERO_EXCLUDED_COUNTERS:
        if not counters.get(key, 0):
            counters.pop(key, None)
    payload = {
        "policy": point.policy,
        "memory_gb": repr(point.memory_gb),
        "cold_start_pct": repr(point.cold_start_pct),
        "exec_time_increase_pct": repr(point.exec_time_increase_pct),
        "drop_ratio": repr(point.drop_ratio),
        "hit_ratio": repr(point.hit_ratio),
        "global_hit_ratio": repr(point.global_hit_ratio),
        "counters": counters,
    }
    if point.tenant_counters:
        payload["tenant_counters"] = {
            key: dict(sorted(counts.items()))
            for key, counts in sorted(point.tenant_counters.items())
        }
        payload["jain_fairness_index"] = repr(point.jain_fairness_index)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class SweepResult:
    """All points of a sweep over one trace.

    ``failed_cells`` is always empty for the sequential
    :func:`run_sweep` (a raising cell propagates); the parallel runner
    fills it instead of discarding the surviving grid — callers that
    need completeness must check it.
    """

    trace_name: str
    points: List[SweepPoint] = field(default_factory=list)
    failed_cells: List[FailedCell] = field(default_factory=list)

    def series(self, policy: str, metric: str) -> List[tuple]:
        """(memory_gb, value) pairs for one policy, sorted by memory."""
        pairs = [
            (p.memory_gb, getattr(p, metric))
            for p in self.points
            if p.policy == policy
        ]
        return sorted(pairs)

    def policies(self) -> List[str]:
        seen: Dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.policy, None)
        return list(seen)

    def memory_sizes(self) -> List[float]:
        return sorted({p.memory_gb for p in self.points})

    def best_policy_at(self, memory_gb: float, metric: str) -> str:
        """The policy with the lowest ``metric`` at one memory size."""
        candidates = [
            p for p in self.points if abs(p.memory_gb - memory_gb) < 1e-9
        ]
        if not candidates:
            raise ValueError(f"no sweep points at {memory_gb} GB")
        return min(candidates, key=lambda p: getattr(p, metric)).policy

    def total_counters(self) -> Dict[str, int]:
        """Grid-wide sums of the per-cell lifecycle counters."""
        totals: Dict[str, int] = {}
        for point in self.points:
            for key, value in point.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals


def memory_sizes_gb(start_gb: float, stop_gb: float, step_gb: float) -> List[float]:
    """Inclusive memory-size grid, e.g. the paper's 500 MB steps."""
    if step_gb <= 0:
        raise ValueError(f"step must be positive, got {step_gb}")
    sizes = []
    size = start_gb
    while size <= stop_gb + 1e-9:
        sizes.append(round(size, 6))
        size += step_gb
    return sizes


def cell_trace_path(
    trace_dir: str | pathlib.Path, policy_name: str, memory_gb: float
) -> pathlib.Path:
    """The JSONL file one sweep cell's events go to under ``trace_dir``.

    Shared by the sequential and parallel engines so both produce the
    same layout, and path-addressable so parallel workers can each
    (re-)open their own sink instead of inheriting a parent file
    handle.
    """
    return pathlib.Path(trace_dir) / f"{policy_name}_{memory_gb:g}GB.jsonl"


def run_cell(
    trace: Trace,
    policy_name: str,
    memory_gb: float,
    tracer: Optional[Tracer] = None,
    trace_dir: Optional[str] = None,
    fault_spec: Optional[FaultSpec] = None,
    tenant_mode: str = "shared",
    tenant_quotas: Optional[Dict[int, float]] = None,
    policy_kwargs: Optional[Mapping[str, object]] = None,
) -> SweepPoint:
    """Run one (policy, memory) cell with optional tracing.

    ``tracer`` (in-process use) is bound with the cell coordinates so
    a single sink can receive several cells' events distinguishably;
    ``trace_dir`` instead writes the cell's events to its own JSONL
    file (see :func:`cell_trace_path`) — the only tracing mode that is
    safe across processes.

    ``fault_spec`` is the *sweep-level* spec: the cell derives its own
    seed from it via :func:`repro.faults.cell_fault_spec`, a pure
    function of the cell coordinates. Cells therefore see independent
    fault draws, while any re-execution of the same cell — sequential,
    parallel, or a retry after a worker crash — replays the identical
    fault sequence.

    ``tenant_mode``/``tenant_quotas`` configure the cell's pool
    (docs/multi-tenancy.md); ``policy_kwargs`` are forwarded to
    :func:`create_policy` (e.g. GD's ``tenant_weights``) — callers own
    matching them to policies that accept them.
    """
    cell_tracer = None
    owned_sink = None
    if trace_dir is not None:
        if tracer is not None:
            raise ValueError("pass either tracer or trace_dir, not both")
        owned_sink = JsonlSink(
            cell_trace_path(trace_dir, policy_name, memory_gb), eager=True
        )
        cell_tracer = Tracer(owned_sink)
    elif tracer is not None:
        cell_tracer = tracer.bind(policy=policy_name, memory_gb=memory_gb)
    cell_spec = (
        cell_fault_spec(fault_spec, policy_name, memory_gb)
        if fault_spec is not None and fault_spec.enabled
        else None
    )
    try:
        policy = create_policy(policy_name, **dict(policy_kwargs or {}))
        sim = KeepAliveSimulator(
            trace,
            policy,
            memory_gb * GB_MB,
            tracer=cell_tracer,
            fault_spec=cell_spec,
            tenant_mode=tenant_mode,
            tenant_quotas=tenant_quotas,
        )
        return point_from_result(policy_name, memory_gb, sim.run())
    finally:
        if owned_sink is not None:
            owned_sink.close()


def run_sweep(
    trace: Trace,
    memory_gbs: Sequence[float],
    policies: Iterable[str] = PAPER_POLICIES,
    progress: Optional[Callable[[str, float], None]] = None,
    tracer: Optional[Tracer] = None,
    trace_dir: Optional[str] = None,
    fault_spec: Optional[FaultSpec] = None,
    tenant_mode: str = "shared",
    tenant_quotas: Optional[Dict[int, float]] = None,
    policy_kwargs: Optional[Mapping[str, object]] = None,
) -> SweepResult:
    """Simulate every (policy, memory) cell over ``trace``.

    Each cell gets a fresh policy instance, so runs are independent and
    order-insensitive. ``progress`` (if given) is called with the
    policy name and memory size before each cell, for long sweeps.

    Tracing: ``tracer`` streams every cell's events to one sink, each
    event stamped with its ``policy``/``memory_gb`` context;
    ``trace_dir`` writes one JSONL file per cell instead (the layout
    the parallel engine also produces).

    ``fault_spec`` injects deterministic faults into every cell, each
    under its own coordinate-derived seed (see :func:`run_cell`).
    """
    result = SweepResult(trace_name=trace.name)
    for policy_name in policies:
        for memory_gb in memory_gbs:
            if progress is not None:
                progress(policy_name, memory_gb)
            result.points.append(
                run_cell(
                    trace,
                    policy_name,
                    memory_gb,
                    tracer=tracer,
                    trace_dir=trace_dir,
                    fault_spec=fault_spec,
                    tenant_mode=tenant_mode,
                    tenant_quotas=tenant_quotas,
                    policy_kwargs=policy_kwargs,
                )
            )
    return result

"""Parallel sweep execution (the artifact's ``many_run.py`` analog).

The original artifact notes the simulator "is embarrassingly parallel
and is mainly limited by total system memory", running one process per
(policy, memory) cell. This module provides the same fan-out on top of
:func:`repro.sim.sweep.run_sweep`'s cell semantics, using a process
pool. Results are bit-identical to the sequential sweep — each cell
gets a fresh policy instance either way — so
:func:`run_sweep_parallel` is a drop-in replacement when wall-clock
matters (full Figure 5/6 grids).

Cells are dispatched whole (trace included) via pickling; for very
large traces prefer fewer processes over many small ones, since each
worker holds a trace copy (the artifact's "1 GB RAM per core").
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.policies import PAPER_POLICIES, create_policy
from repro.sim.scheduler import KeepAliveSimulator
from repro.sim.server import GB_MB
from repro.sim.sweep import SweepPoint, SweepResult
from repro.traces.model import Trace

__all__ = ["run_sweep_parallel", "simulate_cell"]


def simulate_cell(
    trace: Trace, policy_name: str, memory_gb: float
) -> SweepPoint:
    """Run one (policy, memory) cell; module-level so it pickles."""
    policy = create_policy(policy_name)
    sim = KeepAliveSimulator(trace, policy, memory_gb * GB_MB)
    metrics = sim.run().metrics
    return SweepPoint(
        policy=policy_name,
        memory_gb=memory_gb,
        cold_start_pct=metrics.cold_start_pct,
        exec_time_increase_pct=metrics.exec_time_increase_pct,
        drop_ratio=metrics.drop_ratio,
        hit_ratio=metrics.hit_ratio,
        global_hit_ratio=metrics.global_hit_ratio,
    )


def run_sweep_parallel(
    trace: Trace,
    memory_gbs: Sequence[float],
    policies: Iterable[str] = PAPER_POLICIES,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """Like :func:`repro.sim.sweep.run_sweep`, fanned out over processes.

    ``max_workers=None`` uses the interpreter default (CPU count);
    ``max_workers=0`` or ``1`` falls back to in-process execution,
    which is also the safe choice inside an already-parallel harness.
    """
    cells: List[Tuple[str, float]] = [
        (policy, memory_gb)
        for policy in policies
        for memory_gb in memory_gbs
    ]
    result = SweepResult(trace_name=trace.name)
    if max_workers is not None and max_workers <= 1:
        result.points = [
            simulate_cell(trace, policy, memory_gb)
            for policy, memory_gb in cells
        ]
        return result
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(simulate_cell, trace, policy, memory_gb)
            for policy, memory_gb in cells
        ]
        result.points = [future.result() for future in futures]
    return result

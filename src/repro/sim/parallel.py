"""Parallel sweep execution (the artifact's ``many_run.py`` analog).

The original artifact notes the simulator "is embarrassingly parallel
and is mainly limited by total system memory", running one process per
(policy, memory) cell. This module provides the same fan-out on top of
:func:`repro.sim.sweep.run_sweep`'s cell semantics, using a process
pool. Results are bit-identical to the sequential sweep — each cell
gets a fresh policy instance either way, and points are reassembled in
grid order — so :func:`run_sweep_parallel` is a drop-in replacement
when wall-clock matters (full Figure 5/6 grids).

Engine design (vs. the naive per-cell pickle of earlier revisions):

* **One trace broadcast per worker, not per cell.** The trace is
  shipped once through the pool initializer and cached in a
  module-level global; each cell submission then carries only a
  ``(policy, memory)`` pair. For the artifact's "1 GB RAM per core"
  traces this removes the dominant serialization cost from the hot
  loop.
* **Streaming completion.** Cells are consumed as they finish, with an
  optional ``progress(done, total, policy, memory_gb)`` callback, so
  long grids report liveness instead of blocking until the slowest
  cell.
* **Fault tolerance.** A cell that raises is retried (with, when fault
  injection is on, the *identical* coordinate-derived fault seed — a
  retry replays the same faults, it does not reroll them); a cell that
  exhausts its retries is recorded in ``SweepResult.failed_cells``
  instead of throwing away the rest of the grid. If a worker process
  dies hard (``BrokenProcessPool``), the pool is **rebuilt** and every
  unfinished cell resubmitted — per-cell retry budgets survive the
  rebuild, and a pool crash itself never consumes one. Only after
  several consecutive pool generations die is each leftover cell run
  in its own single-worker quarantine pool, so one poisoned cell
  cannot take down its neighbours.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.policies import PAPER_POLICIES
from repro.faults import FaultSpec
from repro.obs.tracer import Tracer
from repro.sim.sweep import FailedCell, SweepResult, run_cell
from repro.traces.model import Trace

__all__ = ["run_sweep_parallel", "simulate_cell"]

#: Per-worker trace cache, populated by the pool initializer so each
#: cell submission only pickles its (policy, memory) coordinates.
_WORKER_TRACE: Optional[Trace] = None

#: Per-worker event-trace directory (or None). Broadcast as a *path*
#: through the initializer: each worker opens its own per-cell JSONL
#: sink, so no file handle ever crosses a process boundary.
_WORKER_TRACE_DIR: Optional[str] = None

#: Per-worker sweep-level fault spec (or None). The worker derives
#: each cell's seed from it locally (``repro.faults.cell_fault_spec``),
#: so fault decisions are a pure function of the cell coordinates —
#: identical in every process and on every retry.
_WORKER_FAULT_SPEC: Optional[FaultSpec] = None

#: Per-worker tenancy/policy configuration shared by every cell:
#: ``(tenant_mode, tenant_quotas, policy_kwargs)``. Plain picklable
#: values, broadcast once like the trace (docs/multi-tenancy.md).
_WORKER_CELL_CONFIG: Tuple[str, Optional[dict], Optional[dict]] = (
    "shared",
    None,
    None,
)

#: How many times a crashed pool is rebuilt before falling back to
#: per-cell quarantine. Rebuilding keeps the surviving cells parallel;
#: the cap stops a systematically-crashing environment from looping.
_MAX_POOL_GENERATIONS = 3

#: Callback signature: ``progress(done, total, policy, memory_gb)``,
#: invoked after every cell settles (point produced or finally failed).
ProgressCallback = Callable[[int, int, str, float], None]


def _init_worker(
    trace: Trace,
    trace_dir: Optional[str] = None,
    fault_spec: Optional[FaultSpec] = None,
    cell_config: Tuple[str, Optional[dict], Optional[dict]] = (
        "shared",
        None,
        None,
    ),
) -> None:
    global _WORKER_TRACE, _WORKER_TRACE_DIR, _WORKER_FAULT_SPEC
    global _WORKER_CELL_CONFIG
    _WORKER_TRACE = trace
    _WORKER_TRACE_DIR = trace_dir
    _WORKER_FAULT_SPEC = fault_spec
    _WORKER_CELL_CONFIG = cell_config


def _run_cell(policy_name: str, memory_gb: float):
    """Worker-side cell execution against the broadcast trace."""
    if _WORKER_TRACE is None:
        raise RuntimeError("worker pool was not initialized with a trace")
    tenant_mode, tenant_quotas, policy_kwargs = _WORKER_CELL_CONFIG
    return simulate_cell(
        _WORKER_TRACE,
        policy_name,
        memory_gb,
        trace_dir=_WORKER_TRACE_DIR,
        fault_spec=_WORKER_FAULT_SPEC,
        tenant_mode=tenant_mode,
        tenant_quotas=tenant_quotas,
        policy_kwargs=policy_kwargs,
    )


def simulate_cell(
    trace: Trace,
    policy_name: str,
    memory_gb: float,
    trace_dir: Optional[str] = None,
    fault_spec: Optional[FaultSpec] = None,
    tenant_mode: str = "shared",
    tenant_quotas: Optional[dict] = None,
    policy_kwargs: Optional[dict] = None,
):
    """Run one (policy, memory) cell; module-level so it pickles.

    ``trace_dir`` (optional) writes the cell's lifecycle events to its
    own JSONL file — see :func:`repro.sim.sweep.cell_trace_path`.
    ``fault_spec`` is the sweep-level spec; the cell seed is derived
    inside :func:`repro.sim.sweep.run_cell`. The tenancy arguments
    mirror :func:`repro.sim.sweep.run_cell`'s.
    """
    return run_cell(
        trace, policy_name, memory_gb, trace_dir=trace_dir,
        fault_spec=fault_spec, tenant_mode=tenant_mode,
        tenant_quotas=tenant_quotas, policy_kwargs=policy_kwargs,
    )


def _run_cell_isolated(
    trace: Trace,
    policy_name: str,
    memory_gb: float,
    trace_dir: Optional[str] = None,
    fault_spec: Optional[FaultSpec] = None,
    cell_config: Tuple[str, Optional[dict], Optional[dict]] = (
        "shared",
        None,
        None,
    ),
):
    """Last-resort execution of one cell in its own single-worker
    pool, isolating hard worker crashes to the cell that caused them."""
    with ProcessPoolExecutor(
        max_workers=1,
        initializer=_init_worker,
        initargs=(trace, trace_dir, fault_spec, cell_config),
    ) as solo:
        return solo.submit(_run_cell, policy_name, memory_gb).result()


def run_sweep_parallel(
    trace: Trace,
    memory_gbs: Sequence[float],
    policies: Iterable[str] = PAPER_POLICIES,
    max_workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    retries: int = 1,
    tracer: Optional[Tracer] = None,
    trace_dir: Optional[str] = None,
    fault_spec: Optional[FaultSpec] = None,
    tenant_mode: str = "shared",
    tenant_quotas: Optional[dict] = None,
    policy_kwargs: Optional[dict] = None,
) -> SweepResult:
    """Like :func:`repro.sim.sweep.run_sweep`, fanned out over processes.

    ``max_workers=None`` uses the interpreter default (CPU count);
    ``max_workers=0`` or ``1`` falls back to in-process execution,
    which is also the safe choice inside an already-parallel harness.

    Each failing cell is retried ``retries`` times; cells that still
    fail land in the returned :attr:`SweepResult.failed_cells` (as
    ``(policy, memory_gb, error)``) while every other point is kept —
    a partial grid instead of a lost one. Points are ordered exactly
    as :func:`run_sweep` orders them (policy-major, then memory), with
    failed cells skipped, so a clean run compares equal to the
    sequential sweep.

    Tracing: ``trace_dir`` works in every mode — it is broadcast as a
    path and each worker opens its own per-cell JSONL sink (see
    :func:`repro.sim.sweep.cell_trace_path`). A ``tracer`` *object* is
    only accepted on the in-process path (``max_workers <= 1``):
    tracer sinks hold open file handles and other process-local state,
    and shipping one through the pool initializer would make every
    worker interleave writes on a duplicated handle. Passing a tracer
    with multiprocess workers therefore raises :class:`ValueError`
    instead of silently corrupting the output.

    ``fault_spec`` (a plain frozen dataclass, safely picklable) is
    broadcast once through the pool initializer like the trace; each
    worker derives per-cell seeds locally, so parallel and sequential
    fault sweeps produce bit-identical grids.

    The tenancy arguments (``tenant_mode``, ``tenant_quotas``,
    ``policy_kwargs`` — see :func:`repro.sim.sweep.run_cell`) are plain
    picklable values broadcast the same way and applied identically to
    every cell, so tenant-aware parallel sweeps stay bit-identical to
    their sequential counterparts.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if tracer is not None and trace_dir is not None:
        raise ValueError("pass either tracer or trace_dir, not both")
    multiprocess = max_workers is None or max_workers > 1
    if tracer is not None and multiprocess:
        raise ValueError(
            "tracer objects hold process-local sinks (open file handles, "
            "in-memory buffers) and cannot be shared with sweep worker "
            "processes; pass trace_dir=<directory> for per-cell JSONL "
            "files, or max_workers=1 to trace in-process"
        )
    cell_config: Tuple[str, Optional[dict], Optional[dict]] = (
        tenant_mode,
        tenant_quotas,
        policy_kwargs,
    )
    cells: List[Tuple[str, float]] = [
        (policy, memory_gb)
        for policy in policies
        for memory_gb in memory_gbs
    ]
    result = SweepResult(trace_name=trace.name)
    total = len(cells)
    points_by_cell: Dict[int, object] = {}
    done = 0

    def settle(index: int, point) -> None:
        nonlocal done
        done += 1
        if point is not None:
            points_by_cell[index] = point
        if progress is not None:
            policy_name, memory_gb = cells[index]
            progress(done, total, policy_name, memory_gb)

    if max_workers is not None and max_workers <= 1:
        for index, (policy_name, memory_gb) in enumerate(cells):
            try:
                point = run_cell(
                    trace,
                    policy_name,
                    memory_gb,
                    tracer=tracer,
                    trace_dir=trace_dir,
                    fault_spec=fault_spec,
                    tenant_mode=tenant_mode,
                    tenant_quotas=tenant_quotas,
                    policy_kwargs=policy_kwargs,
                )
            except Exception as exc:
                result.failed_cells.append(
                    FailedCell(policy_name, memory_gb, repr(exc))
                )
                point = None
            settle(index, point)
        result.points = [
            points_by_cell[i] for i in range(total) if i in points_by_cell
        ]
        return result

    # Cells without a terminal outcome yet, with the retry attempts
    # each has already consumed. Surviving this map across pool
    # rebuilds is what makes retry budgets rebuild-proof: a pool crash
    # resubmits a cell with its old attempt count, while a genuine
    # cell failure increments it whichever pool generation it lands in.
    remaining: Dict[int, int] = {index: 0 for index in range(total)}
    generations = 0
    while remaining and generations < _MAX_POOL_GENERATIONS:
        generations += 1
        broken = False
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(trace, trace_dir, fault_spec, cell_config),
        ) as pool:
            futures: Dict[object, Tuple[int, int]] = {}
            for index in sorted(remaining):
                policy_name, memory_gb = cells[index]
                futures[pool.submit(_run_cell, policy_name, memory_gb)] = (
                    index,
                    remaining[index],
                )
            pending = set(futures)
            while pending and not broken:
                finished, pending = wait(
                    pending, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    index, attempts = futures.pop(future)
                    policy_name, memory_gb = cells[index]
                    try:
                        point = future.result()
                    except BrokenProcessPool:
                        # The pool is unusable; every sibling future
                        # fails the same way. Leave the unfinished
                        # cells in ``remaining`` (attempt counts
                        # untouched — a pool crash is not the cell's
                        # fault) and rebuild.
                        broken = True
                        break
                    except Exception as exc:
                        if attempts < retries:
                            remaining[index] = attempts + 1
                            try:
                                retry = pool.submit(
                                    _run_cell, policy_name, memory_gb
                                )
                            except RuntimeError:
                                # Pool already shutting down/broken;
                                # the rebuild will pick the cell up.
                                broken = True
                                break
                            futures[retry] = (index, attempts + 1)
                            pending.add(retry)
                            continue
                        result.failed_cells.append(
                            FailedCell(policy_name, memory_gb, repr(exc))
                        )
                        del remaining[index]
                        settle(index, None)
                        continue
                    del remaining[index]
                    settle(index, point)

    # Cells still unfinished after the generation cap: something keeps
    # hard-killing workers. Quarantine each in its own solo pool so
    # the poison stays contained and every cell still gets a verdict.
    for index in sorted(remaining):
        policy_name, memory_gb = cells[index]
        try:
            point = _run_cell_isolated(
                trace,
                policy_name,
                memory_gb,
                trace_dir=trace_dir,
                fault_spec=fault_spec,
                cell_config=cell_config,
            )
        except Exception as exc:
            result.failed_cells.append(
                FailedCell(policy_name, memory_gb, repr(exc))
            )
            point = None
        settle(index, point)
    remaining.clear()

    result.points = [
        points_by_cell[i] for i in range(total) if i in points_by_cell
    ]
    result.failed_cells.sort(key=lambda c: (c.policy, c.memory_gb))
    return result

"""Metrics collected by the keep-alive simulator.

The paper evaluates two headline metrics (Section 7):

* the **cold-start ratio** — the fraction of invocations that pay the
  initialization overhead, and
* the **increase in execution time** — total cold-start overhead
  relative to the ideal all-warm execution time, averaged across all
  invocations (this is the user-visible response-time inflation of
  Figure 5).

Dropped requests (invocations that could not obtain memory because
every container was busy) are tracked separately; they are what bends
the observed hit-ratio away from the reuse-distance prediction at
small cache sizes (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["FunctionOutcome", "SimulationMetrics", "jain_index"]


def jain_index(values: List[float]) -> float:
    """Jain's fairness index over ``values``: ``(Σx)² / (n·Σx²)``.

    1.0 means perfectly equal; 1/n means one party gets everything.
    Degenerate inputs (empty, or all zero) read as perfectly fair —
    there is no allocation to be unfair about.
    """
    n = len(values)
    if not n:
        return 1.0
    total = 0.0
    square = 0.0
    for v in values:
        total += v
        square += v * v
    if square <= 0.0:
        return 1.0
    return (total * total) / (n * square)


@dataclass
class FunctionOutcome:
    """Per-function invocation outcome counters."""

    warm: int = 0
    cold: int = 0
    dropped: int = 0

    @property
    def served(self) -> int:
        return self.warm + self.cold

    @property
    def total(self) -> int:
        return self.served + self.dropped

    @property
    def hit_ratio(self) -> float:
        return self.warm / self.served if self.served else 0.0


@dataclass
class SimulationMetrics:
    """Aggregated counters for one simulation run."""

    warm_starts: int = 0
    cold_starts: int = 0
    dropped: int = 0
    evictions: int = 0
    expirations: int = 0
    prewarms: int = 0

    # -- robustness counters (all zero on failure-free runs) ---------
    #: Attempts the fault model failed (spawn failures + crashes +
    #: timeouts); per-kind breakdown in :attr:`faults_by_kind`.
    faults_injected: int = 0
    #: Failed attempts re-scheduled with backoff by the retry policy.
    retries: int = 0
    #: Attempts given up on (budget/queue/pressure/unavailability);
    #: per-reason breakdown in :attr:`sheds_by_reason`.
    sheds: int = 0
    #: Whole-server failures applied to this server.
    server_downs: int = 0
    #: Simulated seconds this server spent down.
    downtime_s: float = 0.0

    # -- harvested/spot capacity counters (docs/robustness.md) -------
    #: Harvest steps that reduced this server's usable memory.
    capacity_shrinks: int = 0
    #: Capacity given back (harvest release or replacement spin-up).
    capacity_grows: int = 0
    #: Spot-eviction notices received by this server.
    eviction_notices: int = 0
    #: Warm containers evicted to meet a shrinking capacity target
    #: (kept apart from :attr:`evictions`: the pressure came from the
    #: platform, not the workload).
    deflations: int = 0

    #: Sum of warm running times over served invocations: the ideal
    #: execution time had every start been warm.
    ideal_exec_time_s: float = 0.0
    #: Sum of actual running times (warm or cold) over served invocations.
    actual_exec_time_s: float = 0.0

    #: ``fault_injected`` events by kind (spawn_failure/crash/timeout).
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    #: ``invocation_shed`` events by reason.
    sheds_by_reason: Dict[str, int] = field(default_factory=dict)

    per_function: Dict[str, FunctionOutcome] = field(default_factory=dict)
    #: Per-tenant invocation outcomes (docs/multi-tenancy.md).
    #: Populated only when the replayed trace carries tenant ids, so
    #: tenant-less runs keep producing exactly the legacy metrics.
    per_tenant: Dict[int, FunctionOutcome] = field(default_factory=dict)
    #: Sampled (time, used_mb) pairs, when timeline tracking is enabled.
    #: The simulator appends a closing sample at trace end so the tail
    #: interval after the last periodic sample carries its weight in
    #: :meth:`mean_memory_mb`.
    memory_timeline: List[Tuple[float, float]] = field(default_factory=list)

    #: Wall-clock seconds the replay took (simulator throughput, not a
    #: paper metric; excluded from :meth:`summary` so that equality
    #: comparisons between runs stay meaningful).
    wall_time_s: float = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _outcome(self, function_name: str) -> FunctionOutcome:
        outcome = self.per_function.get(function_name)
        if outcome is None:
            outcome = FunctionOutcome()
            self.per_function[function_name] = outcome
        return outcome

    def _tenant_outcome(self, tenant_id: int) -> FunctionOutcome:
        outcome = self.per_tenant.get(tenant_id)
        if outcome is None:
            outcome = FunctionOutcome()
            self.per_tenant[tenant_id] = outcome
        return outcome

    def record_warm(
        self,
        function_name: str,
        warm_time_s: float,
        actual_time_s: float | None = None,
        tenant_id: Optional[int] = None,
    ) -> None:
        """Record a warm start. ``actual_time_s`` (default: the warm
        time) can exceed the ideal when a prefetched container still
        had initialization work left (Section 9's explicit-init gap).
        ``tenant_id`` (``None`` on tenant-less runs) additionally books
        the outcome under :attr:`per_tenant`."""
        self.warm_starts += 1
        self.ideal_exec_time_s += warm_time_s
        self.actual_exec_time_s += (
            warm_time_s if actual_time_s is None else actual_time_s
        )
        self._outcome(function_name).warm += 1
        if tenant_id is not None:
            self._tenant_outcome(tenant_id).warm += 1

    def record_cold(
        self,
        function_name: str,
        warm_time_s: float,
        cold_time_s: float,
        tenant_id: Optional[int] = None,
    ) -> None:
        self.cold_starts += 1
        self.ideal_exec_time_s += warm_time_s
        self.actual_exec_time_s += cold_time_s
        self._outcome(function_name).cold += 1
        if tenant_id is not None:
            self._tenant_outcome(tenant_id).cold += 1

    def record_dropped(
        self, function_name: str, tenant_id: Optional[int] = None
    ) -> None:
        self.dropped += 1
        self._outcome(function_name).dropped += 1
        if tenant_id is not None:
            self._tenant_outcome(tenant_id).dropped += 1

    def record_fault(self, kind: str) -> None:
        """Record one injected fault (spawn failure, crash, timeout)."""
        self.faults_injected += 1
        self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1

    def record_retry(self) -> None:
        self.retries += 1

    def record_shed(self, reason: str) -> None:
        """Record one attempt given up on after failure."""
        self.sheds += 1
        self.sheds_by_reason[reason] = self.sheds_by_reason.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def served(self) -> int:
        return self.warm_starts + self.cold_starts

    @property
    def total_requests(self) -> int:
        return self.served + self.dropped

    @property
    def cold_start_ratio(self) -> float:
        """Fraction of *served* invocations that were cold (Figure 6)."""
        return self.cold_starts / self.served if self.served else 0.0

    @property
    def cold_start_pct(self) -> float:
        return 100.0 * self.cold_start_ratio

    @property
    def hit_ratio(self) -> float:
        """Warm starts over served invocations."""
        return self.warm_starts / self.served if self.served else 0.0

    @property
    def global_hit_ratio(self) -> float:
        """Warm starts over *all* requests: drops count as misses.

        This is the observed hit-ratio plotted against the
        reuse-distance prediction in Figure 3.
        """
        return self.warm_starts / self.total_requests if self.total_requests else 0.0

    @property
    def drop_ratio(self) -> float:
        return self.dropped / self.total_requests if self.total_requests else 0.0

    @property
    def added_exec_time_s(self) -> float:
        """Total cold-start overhead paid across the run."""
        return self.actual_exec_time_s - self.ideal_exec_time_s

    @property
    def exec_time_increase_pct(self) -> float:
        """Percentage increase in execution time due to cold starts.

        The Figure 5 metric: the total overhead relative to the ideal
        all-warm execution time, which equals the per-invocation
        overhead averaged across every invocation of every function.
        """
        if self.ideal_exec_time_s <= 0:
            return 0.0
        return 100.0 * self.added_exec_time_s / self.ideal_exec_time_s

    @property
    def invocations_per_s(self) -> float:
        """Replay throughput: trace invocations simulated per
        wall-clock second (0.0 when no timing was recorded)."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.total_requests / self.wall_time_s

    def throughput_summary(self) -> Dict[str, float]:
        """Observability numbers for harnesses and the CLI, kept apart
        from :meth:`summary` because they differ between otherwise
        identical runs."""
        return {
            "wall_time_s": self.wall_time_s,
            "invocations_per_s": self.invocations_per_s,
        }

    @property
    def mean_memory_mb(self) -> float:
        """Time-weighted mean of the sampled memory usage.

        Each sample's value is weighted by the interval until the next
        sample; the final sample (the simulator's closing sample at
        trace end) only marks the end of the last interval.
        """
        timeline = self.memory_timeline
        if len(timeline) < 2:
            return timeline[0][1] if timeline else 0.0
        weighted = 0.0
        span = timeline[-1][0] - timeline[0][0]
        if span <= 0:
            return timeline[-1][1]
        for (t0, used), (t1, __) in zip(timeline, timeline[1:]):
            weighted += used * (t1 - t0)
        return weighted / span

    def counters(self) -> Dict[str, int]:
        """The integer lifecycle counters only.

        This is the contract shared with the observability layer:
        :meth:`repro.obs.report.TraceReport.counters` rebuilds exactly
        these keys from an event trace, and the two must agree for a
        fully-traced run (the CI trace-consistency gate). Sweeps also
        snapshot this dict per cell.
        """
        return {
            "warm_starts": self.warm_starts,
            "cold_starts": self.cold_starts,
            "dropped": self.dropped,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "prewarms": self.prewarms,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "sheds": self.sheds,
            "server_downs": self.server_downs,
            "capacity_shrinks": self.capacity_shrinks,
            "capacity_grows": self.capacity_grows,
            "eviction_notices": self.eviction_notices,
            "deflations": self.deflations,
        }

    def tenant_counters(self) -> Dict[int, Dict[str, int]]:
        """Per-tenant lifecycle counters, in ascending tenant-id order.

        The per-tenant half of the trace/aggregate contract:
        :meth:`repro.obs.report.TraceReport.tenant_counters` rebuilds
        exactly these keys from the events' ``tenant`` fields, and the
        two must agree for a fully-traced tenant run (checked by the
        sanitizer and the tenant-fairness CI job). Empty on tenant-less
        runs. The inner key set is covered by the FC005 drift check.
        """
        return {
            tenant_id: {
                "warm_starts": outcome.warm,
                "cold_starts": outcome.cold,
                "dropped": outcome.dropped,
            }
            for tenant_id, outcome in sorted(self.per_tenant.items())
        }

    def tenant_cold_start_ratios(self) -> Dict[int, float]:
        """Per-tenant cold-start ratio over served invocations, in
        ascending tenant-id order. Empty on tenant-less runs."""
        return {
            tenant_id: (
                outcome.cold / outcome.served if outcome.served else 0.0
            )
            for tenant_id, outcome in sorted(self.per_tenant.items())
        }

    @property
    def jain_fairness_index(self) -> float:
        """Jain's fairness index over per-tenant warm-hit ratios.

        Tenants that had nothing served contribute no allocation and
        are excluded; a run with no tenant data (or where no tenant was
        served) reads as perfectly fair (1.0).
        """
        return jain_index(
            [
                outcome.hit_ratio
                for __, outcome in sorted(self.per_tenant.items())
                if outcome.served
            ]
        )

    @property
    def shed_ratio(self) -> float:
        """Sheds over all terminal outcomes (served + dropped + shed).

        The graceful-degradation headline: under faults, what fraction
        of demand was ultimately turned away rather than queued
        without bound. Retried attempts are not terminal and do not
        appear in the denominator.
        """
        terminal = self.served + self.dropped + self.sheds
        return self.sheds / terminal if terminal else 0.0

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline numbers, for tables and tests."""
        return {
            "warm_starts": self.warm_starts,
            "cold_starts": self.cold_starts,
            "dropped": self.dropped,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "prewarms": self.prewarms,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "sheds": self.sheds,
            "server_downs": self.server_downs,
            "capacity_shrinks": self.capacity_shrinks,
            "capacity_grows": self.capacity_grows,
            "eviction_notices": self.eviction_notices,
            "deflations": self.deflations,
            "cold_start_pct": self.cold_start_pct,
            "exec_time_increase_pct": self.exec_time_increase_pct,
            "hit_ratio": self.hit_ratio,
            "global_hit_ratio": self.global_hit_ratio,
            "drop_ratio": self.drop_ratio,
            "shed_ratio": self.shed_ratio,
            "jain_fairness_index": self.jain_fairness_index,
        }

"""A minimal discrete-event queue.

The trace-driven keep-alive simulator mostly advances from arrival to
arrival, but the OpenWhisk invoker model (Section 7.2) needs a genuine
event heap: request arrivals, container-launch completions, invocation
completions, and controller ticks interleave. Events at equal times
are delivered in insertion order (a monotone sequence number breaks
ties), which keeps simulations deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["EventQueue"]

T = TypeVar("T")


class EventQueue(Generic[T]):
    """A time-ordered priority queue of (time, payload) events."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, T]] = []
        self._counter = itertools.count()

    def push(self, time_s: float, payload: T) -> None:
        if time_s < 0:
            raise ValueError(f"event time must be >= 0, got {time_s}")
        heapq.heappush(self._heap, (time_s, next(self._counter), payload))

    def pop(self) -> Tuple[float, T]:
        """Remove and return the earliest (time, payload) event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        time_s, __, payload = heapq.heappop(self._heap)
        return time_s, payload

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def pop_until(self, time_s: float) -> Iterator[Tuple[float, T]]:
        """Yield and remove every event at or before ``time_s``, in order."""
        while self._heap and self._heap[0][0] <= time_s:
            yield self.pop()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def clear(self) -> None:
        self._heap.clear()

"""Server resource configuration.

The paper's server-level focus (Section 3's system model) means a
"server" is a memory capacity for the keep-alive cache plus, for the
OpenWhisk invoker model, a CPU core count that bounds concurrent
executions. The trace-driven simulator only constrains memory — the
paper notes CPUs multiplex easily while memory swapping is ruinous, so
memory is the binding resource for keep-alive.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerConfig", "GB_MB"]

#: Megabytes per gigabyte, for the GB-axis sweeps of Figures 5 and 6.
GB_MB = 1024.0


@dataclass(frozen=True)
class ServerConfig:
    """Physical resources of one FaaS server."""

    memory_mb: float
    cpu_cores: int = 48  # the paper's evaluation server

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError(f"memory must be positive, got {self.memory_mb}")
        if self.cpu_cores <= 0:
            raise ValueError(f"cpu cores must be positive, got {self.cpu_cores}")

    @property
    def memory_gb(self) -> float:
        return self.memory_mb / GB_MB

    @classmethod
    def with_memory_gb(cls, memory_gb: float, cpu_cores: int = 48) -> "ServerConfig":
        return cls(memory_mb=memory_gb * GB_MB, cpu_cores=cpu_cores)

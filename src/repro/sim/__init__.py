"""Trace-driven discrete-event keep-alive simulator (paper Section 6)."""

from repro.sim.events import EventQueue
from repro.sim.metrics import FunctionOutcome, SimulationMetrics
from repro.sim.parallel import run_sweep_parallel, simulate_cell
from repro.sim.scheduler import KeepAliveSimulator, SimulationResult, simulate
from repro.sim.server import GB_MB, ServerConfig
from repro.sim.sweep import (
    FailedCell,
    SweepPoint,
    SweepResult,
    memory_sizes_gb,
    run_sweep,
)

__all__ = [
    "FailedCell",
    "EventQueue",
    "FunctionOutcome",
    "SimulationMetrics",
    "run_sweep_parallel",
    "simulate_cell",
    "KeepAliveSimulator",
    "SimulationResult",
    "simulate",
    "GB_MB",
    "ServerConfig",
    "SweepPoint",
    "SweepResult",
    "memory_sizes_gb",
    "run_sweep",
]

"""Columnar replay engine: batched replay of struct-of-arrays traces.

The object-based :class:`~repro.sim.scheduler.KeepAliveSimulator`
pays per-invocation Python dispatch for every arrival. This engine
replays :class:`~repro.traces.columnar.ColumnarTrace` (or streaming)
workloads in chunks and, where the policy's semantics allow it,
replaces the per-arrival loop with vectorized NumPy recurrences —
while producing **byte-identical** :class:`SimulationMetrics` to the
object path, which stays in the tree as the differential-testing
oracle (``tests/test_columnar_differential.py``).

Two paths, chosen per run and reported via :attr:`last_path`:

``vectorized-ttl``
    An exact closed-form replay of the plain-TTL policy. Applies only
    when the replay is provably equivalent to the object simulator:
    pure :class:`TTLPolicy`, no tracer / faults / warmup / timeline /
    reserved concurrency, every function's arrival gap covers its
    cold time (so a function never holds two containers), and the
    arriving functions' total footprint fits in capacity (so pressure
    eviction never fires). Under those preconditions each function's
    container deadline follows the recurrence ``d_i = (t_i + dur_i) +
    ttl`` with ``cold_i ⇔ d_{i-1} <= t_i``, which resolves chunk by
    chunk with three vectorized classifications (certainly-cold,
    certainly-warm, and an alternating ambiguous band) — see
    ``docs/performance.md`` for the derivation. Metric sums use
    ``np.add.accumulate``, whose strict left-to-right evaluation
    reproduces the oracle's sequential ``+=`` bit for bit.

``sequential``
    The fallback for every other policy/configuration: the same
    object simulator, fed from chunked ``tolist`` buffers so a
    streamed trace never materializes invocation objects beyond the
    current chunk. Used unconditionally under ``REPRO_SANITIZE`` so
    the sanitizer's per-event invariant checks always see every
    arrival.

The kernel's preconditions are re-validated on every chunk; a
violation discovered mid-stream discards the kernel state and
restarts on the sequential path (chunk sources are restartable by
contract), so the fast path can never silently diverge.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.checks.sanitize import sanitize_enabled
from repro.core.clock import wall_clock_s
from repro.core.policies.base import KeepAlivePolicy, create_policy
from repro.core.policies.ttl import TTLPolicy
from repro.sim.metrics import FunctionOutcome, SimulationMetrics
from repro.sim.scheduler import KeepAliveSimulator, SimulationResult
from repro.traces.columnar import (
    DEFAULT_CHUNK_INVOCATIONS,
    ColumnarTrace,
    FunctionTable,
)
from repro.traces.model import Trace
from repro.traces.streaming import StreamingChurnTrace

__all__ = ["ColumnarReplayEngine", "replay_columnar"]

#: Trace forms the engine replays: materialized columnar arrays or a
#: restartable chunk stream (both expose ``name``, ``functions``,
#: ``functions_table``, and ``duration_s``).
ColumnarSource = Union[ColumnarTrace, StreamingChurnTrace]


def _chunks_of(
    trace: ColumnarSource, chunk_invocations: int
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    if isinstance(trace, ColumnarTrace):
        return trace.iter_chunks(chunk_invocations)
    return trace.chunks()


class ColumnarReplayEngine:
    """Replay columnar traces; vectorize when provably equivalent."""

    def __init__(
        self,
        policy: Union[str, KeepAlivePolicy],
        memory_mb: float,
        chunk_invocations: int = DEFAULT_CHUNK_INVOCATIONS,
        track_memory_timeline: bool = False,
        timeline_interval_s: float = 60.0,
        prewarm_effectiveness: float = 1.0,
        reserved_concurrency: Optional[dict] = None,
        warmup_s: float = 0.0,
        tracer=None,
        fault_spec=None,
        server_index: int = 0,
        tenant_mode: str = "shared",
        tenant_quotas: Optional[Dict[int, float]] = None,
        **policy_kwargs,
    ) -> None:
        """Same knobs as :class:`KeepAliveSimulator`; ``policy`` may be
        a registry name (with ``policy_kwargs``) or an instance. Like
        the simulator, one engine instance runs one replay — policies
        accumulate state across invocations by design."""
        if isinstance(policy, str):
            policy = create_policy(policy, **policy_kwargs)
        elif policy_kwargs:
            raise ValueError(
                "policy_kwargs are only valid with a policy name"
            )
        if chunk_invocations < 1:
            raise ValueError(
                f"chunk size must be >= 1, got {chunk_invocations}"
            )
        self.policy = policy
        self.memory_mb = float(memory_mb)
        self.chunk_invocations = chunk_invocations
        self._sim_kwargs = dict(
            track_memory_timeline=track_memory_timeline,
            timeline_interval_s=timeline_interval_s,
            prewarm_effectiveness=prewarm_effectiveness,
            reserved_concurrency=reserved_concurrency,
            warmup_s=warmup_s,
            tracer=tracer,
            fault_spec=fault_spec,
            server_index=server_index,
            tenant_mode=tenant_mode,
            tenant_quotas=tenant_quotas,
        )
        #: Which path the last :meth:`run` took: ``"vectorized-ttl"``
        #: or ``"sequential"`` (None before the first run).
        self.last_path: Optional[str] = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, trace: Union[Trace, ColumnarSource]) -> SimulationResult:
        """Replay ``trace`` and return the collected metrics."""
        if isinstance(trace, Trace):
            trace = ColumnarTrace.from_trace(trace)
        if self._kernel_eligible() and not trace.functions_table.has_tenants:
            result = _run_ttl_kernel(
                trace,
                self.policy.ttl_s,
                self.memory_mb,
                self.policy.name,
                self.chunk_invocations,
            )
            if result is not None:
                self.last_path = "vectorized-ttl"
                return result
        self.last_path = "sequential"
        return self._run_sequential(trace)

    # ------------------------------------------------------------------
    # Path selection
    # ------------------------------------------------------------------

    def _kernel_eligible(self) -> bool:
        """Static preconditions for the vectorized TTL kernel.

        Exact type match (a subclass may override any hook), default
        simulator configuration only, and never under the runtime
        sanitizer — the sequential loop is what the sanitizer's
        per-event invariants instrument, so sanitized runs take it
        unconditionally (maximal checking beats maximal speed there).
        Tenancy disqualifies the kernel twice over: non-shared pool
        modes change victim selection, and even a shared-mode replay of
        a tenant-tagged trace must fall back so the per-tenant metrics
        the oracle records are produced (``run`` additionally checks
        the trace's tenant column). Per-trace preconditions (arrival
        gaps, capacity headroom) are validated chunk by chunk inside
        the kernel itself.
        """
        if type(self.policy) is not TTLPolicy:
            return False
        kwargs = self._sim_kwargs
        if (
            kwargs["tracer"] is not None
            or kwargs["fault_spec"] is not None
            or kwargs["reserved_concurrency"]
            or kwargs["track_memory_timeline"]
            or kwargs["warmup_s"] > 0.0
            or kwargs["tenant_mode"] != "shared"
        ):
            return False
        if sanitize_enabled():
            return False
        return True

    # ------------------------------------------------------------------
    # Sequential path (the oracle, fed in chunks)
    # ------------------------------------------------------------------

    def _run_sequential(self, trace: ColumnarSource) -> SimulationResult:
        simulator = KeepAliveSimulator(
            trace, self.policy, self.memory_mb, **self._sim_kwargs
        )
        started = wall_clock_s()
        objects = trace.functions_table.objects()
        process = simulator.process_invocation
        end_s = 0.0
        for times, fids in _chunks_of(trace, self.chunk_invocations):
            # One bulk conversion per chunk: the inner loop runs on
            # plain floats and ints, with no per-invocation array
            # indexing or object construction.
            time_list = times.tolist()
            for now_s, fid in zip(time_list, fids.tolist()):
                process(objects[fid], now_s)
            if time_list:
                end_s = time_list[-1]
        return simulator.finalize(end_s, started)


# ----------------------------------------------------------------------
# Vectorized TTL kernel
# ----------------------------------------------------------------------
#
# Equivalence argument (with gaps >= cold time and capacity never
# binding, each function owns at most one container and pressure
# eviction never fires):
#
# * The object simulator schedules a container's expiry at
#   ``(start + duration) + ttl`` and pops deadlines ``<= now`` before
#   the warm lookup, so arrival *i* of a function is cold exactly when
#   its previous arrival's deadline ``d_{i-1} <= t_i``.
# * ``d_{i-1}`` is one of two per-arrival candidates — warm or cold
#   duration — so each arrival classifies as *certainly cold* (even
#   the cold-duration deadline has passed), *certainly warm* (even the
#   warm-duration deadline is alive), or *ambiguous*, where exactly
#   one step of history decides: ``cold_i = not cold_{i-1}`` (a cold
#   predecessor's longer deadline survives, a warm one's has lapsed).
#   Ambiguity therefore *alternates*, and a run of ambiguous arrivals
#   after a certain one resolves by parity — a gather plus an XOR.
# * Expirations: every non-final container of a function expired
#   before the cold start that replaced it, and the final one expires
#   iff its deadline precedes the global last arrival (the expiry
#   phase runs at every arrival under TTL), giving
#   ``(cold_starts - functions_arrived) + finals_lapsed``.
# * Metric sums replay the oracle's exact left-to-right float
#   accumulation via ``np.add.accumulate`` with a scalar carry across
#   chunks (covered by a dedicated exactness test).


class _TTLKernelState:
    """Per-function recurrence state carried across chunks."""

    def __init__(self, table: FunctionTable) -> None:
        count = len(table)
        self.d_prev = np.full(count, -np.inf)  # deadline after last use
        self.t_prev = np.full(count, -np.inf)  # last arrival time
        self.arrived = np.zeros(count, dtype=bool)
        self.cold_counts = np.zeros(count, dtype=np.int64)
        self.total_counts = np.zeros(count, dtype=np.int64)
        self.appearance: List[int] = []  # fids in first-arrival order
        self.arrived_memory_mb = 0.0
        self.ideal_sum = 0.0
        self.actual_sum = 0.0
        self.invocations = 0
        self.t_last = 0.0


def _run_ttl_kernel(
    trace: ColumnarSource,
    ttl_s: float,
    capacity_mb: float,
    policy_name: str,
    chunk_invocations: int,
) -> Optional[SimulationResult]:
    """Closed-form TTL replay; None when a precondition fails."""
    started = wall_clock_s()
    table = trace.functions_table
    state = _TTLKernelState(table)
    for times, fids in _chunks_of(trace, chunk_invocations):
        if not _ttl_kernel_chunk(state, table, times, fids, ttl_s, capacity_mb):
            return None
    metrics = _ttl_kernel_metrics(state, table)
    metrics.wall_time_s = wall_clock_s() - started
    return SimulationResult(
        trace_name=trace.name,
        policy_name=policy_name,
        memory_mb=capacity_mb,
        metrics=metrics,
    )


def _ttl_kernel_chunk(
    state: _TTLKernelState,
    table: FunctionTable,
    times: np.ndarray,
    fids: np.ndarray,
    ttl_s: float,
    capacity_mb: float,
) -> bool:
    """Process one chunk; False on a precondition violation."""
    size = times.size
    if size == 0:
        return True
    # Group by function with arrival order preserved inside groups.
    order = np.argsort(fids, kind="stable")
    fs = fids[order]
    ts = times[order]
    warm_t = table.warm_time_s[fs]
    cold_t = table.cold_time_s[fs]
    seg_start = np.empty(size, dtype=bool)
    seg_start[0] = True
    np.not_equal(fs[1:], fs[:-1], out=seg_start[1:])

    # Precondition: every same-function gap covers the cold time, so
    # the previous invocation (warm or cold) has always finished and
    # a function never needs a second concurrent container.
    gaps = np.empty(size)
    gaps[0] = np.inf
    np.subtract(ts[1:], ts[:-1], out=gaps[1:])
    carried_t_prev = state.t_prev[fs]
    gaps = np.where(seg_start, ts - carried_t_prev, gaps)
    if bool(np.any(gaps < cold_t)):
        return False

    # Precondition: the arriving working set fits outright, so the
    # pressure path (victim selection, drops) can never trigger.
    first_seen = seg_start & ~state.arrived[fs]
    if bool(np.any(first_seen)):
        new_fids = fs[first_seen]
        state.arrived_memory_mb += float(
            np.add.reduce(table.memory_mb[new_fids])
        )
        if state.arrived_memory_mb > capacity_mb:
            return False
        # Record first arrivals in *global* (chunk) order — the order
        # the oracle's per-function dict acquires its keys.
        chunk_arrived = state.arrived.copy()
        for pos in np.sort(order[first_seen]).tolist():
            fid = int(fids[pos])
            if not chunk_arrived[fid]:
                chunk_arrived[fid] = True
                state.appearance.append(fid)
        state.arrived[new_fids] = True

    # Deadline candidates after each arrival: the simulator schedules
    # (start + duration) + ttl with exactly this association order.
    d_warm = (ts + warm_t) + ttl_s
    d_cold = (ts + cold_t) + ttl_s

    # Classify arrivals. Segment heads compare against the carried
    # (exact) previous deadline; interior arrivals against their
    # predecessor's two candidates.
    prev_dw = np.empty(size)
    prev_dc = np.empty(size)
    prev_dw[0] = prev_dc[0] = np.inf  # head: decided by carried state
    prev_dw[1:] = d_warm[:-1]
    prev_dc[1:] = d_cold[:-1]
    certainly_cold = prev_dc <= ts
    certainly_warm = prev_dw > ts
    head_cold = state.d_prev[fs] <= ts
    certain = seg_start | certainly_cold | certainly_warm
    certain_value = np.where(seg_start, head_cold, certainly_cold)
    # Ambiguous arrivals alternate (cold_i = not cold_{i-1}); resolve
    # each against the nearest earlier certain arrival by parity.
    positions = np.arange(size)
    anchor = np.where(certain, positions, -1)
    np.maximum.accumulate(anchor, out=anchor)
    cold_sorted = certain_value[anchor] ^ (((positions - anchor) & 1) == 1)

    # Commit per-function recurrence state at segment tails.
    seg_end = np.empty(size, dtype=bool)
    seg_end[-1] = True
    seg_end[:-1] = seg_start[1:]
    d_final = np.where(cold_sorted, d_cold, d_warm)
    tail_fids = fs[seg_end]
    state.d_prev[tail_fids] = d_final[seg_end]
    state.t_prev[tail_fids] = ts[seg_end]

    # Counters and the oracle's exact sequential metric sums, in
    # global arrival order.
    function_count = len(table)
    state.cold_counts += np.bincount(
        fs[cold_sorted], minlength=function_count
    )
    state.total_counts += np.bincount(fs, minlength=function_count)
    cold_in_order = np.empty(size, dtype=bool)
    cold_in_order[order] = cold_sorted
    ideal = np.empty(size + 1)
    ideal[0] = state.ideal_sum
    ideal[1:] = table.warm_time_s[fids]
    state.ideal_sum = float(np.add.accumulate(ideal)[-1])
    actual = np.empty(size + 1)
    actual[0] = state.actual_sum
    actual[1:] = np.where(
        cold_in_order, table.cold_time_s[fids], table.warm_time_s[fids]
    )
    state.actual_sum = float(np.add.accumulate(actual)[-1])
    state.invocations += int(size)
    state.t_last = float(times[-1])
    return True


def _ttl_kernel_metrics(
    state: _TTLKernelState, table: FunctionTable
) -> SimulationMetrics:
    metrics = SimulationMetrics()
    if not state.invocations:
        return metrics
    total_cold = int(np.add.reduce(state.cold_counts))
    metrics.cold_starts = total_cold
    metrics.warm_starts = state.invocations - total_cold
    metrics.ideal_exec_time_s = state.ideal_sum
    metrics.actual_exec_time_s = state.actual_sum
    arrived_fids = np.array(state.appearance, dtype=np.int64)
    finals_lapsed = int(
        np.count_nonzero(state.d_prev[arrived_fids] <= state.t_last)
    )
    metrics.expirations = (
        total_cold - len(state.appearance) + finals_lapsed
    )
    names = table.names
    cold_counts = state.cold_counts
    total_counts = state.total_counts
    for fid in state.appearance:
        cold = int(cold_counts[fid])
        metrics.per_function[names[fid]] = FunctionOutcome(
            warm=int(total_counts[fid]) - cold, cold=cold
        )
    return metrics


def replay_columnar(
    trace: Union[Trace, ColumnarSource],
    policy: Union[str, KeepAlivePolicy],
    memory_mb: float,
    **kwargs,
) -> SimulationResult:
    """One-shot columnar replay (mirrors :func:`repro.sim.scheduler.simulate`)."""
    engine = ColumnarReplayEngine(policy, memory_mb, **kwargs)
    return engine.run(trace)

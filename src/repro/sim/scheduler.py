"""The trace-driven keep-alive simulator.

A reproduction of the paper's discrete-event simulator (Section 6,
"Keep-alive Simulator": ~2,000 lines of Python replaying Azure trace
samples). Each invocation is processed in arrival order; between
arrivals, container completions, time-based expirations, and scheduled
prewarms are applied lazily — exactly the structure of the original
``LambdaScheduler.runActivation``:

1. release containers whose invocations have finished,
2. ``cleanup_finished`` — expire containers past their TTL (TTL/HIST),
3. ``PreWarmContainers`` — materialize due prewarms (HIST),
4. find a warm idle container (cache hit) or create one (cache miss),
   evicting the lowest-priority idle containers if memory is short,
5. update the policy's priorities and bookkeeping.

An invocation that cannot obtain memory even after evicting every idle
container is **dropped** — all containers are busy running, which is
the behaviour that separates FaaS keep-alive from classical caching
(Section 5.1's "Limitations of the Caching Analogy").
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.checks.sanitize import (
    ReportSink,
    check_counter_equality,
    check_tenant_counter_equality,
    sanitize_enabled,
)
from repro.core.clock import SimClock, wall_clock_s
from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy, create_policy
from repro.core.pool import CapacityError, ContainerPool
from repro.faults import FaultModel, FaultSpec, RetryPolicy
from repro.obs.tracer import Tracer, active_tracer
from repro.sim.metrics import SimulationMetrics
from repro.traces.model import Trace, TraceFunction

__all__ = ["KeepAliveSimulator", "SimulationResult", "simulate"]


@dataclass
class SimulationResult:
    """Outcome of one (trace, policy, memory size) simulation."""

    trace_name: str
    policy_name: str
    memory_mb: float
    metrics: SimulationMetrics

    def __repr__(self) -> str:
        return (
            f"SimulationResult(trace={self.trace_name!r}, "
            f"policy={self.policy_name}, memory={self.memory_mb:.0f} MB, "
            f"cold={self.metrics.cold_start_pct:.2f}%, "
            f"increase={self.metrics.exec_time_increase_pct:.2f}%)"
        )


class KeepAliveSimulator:
    """Replays a trace against one keep-alive policy on one server."""

    def __init__(
        self,
        trace: Trace,
        policy: KeepAlivePolicy,
        memory_mb: float,
        track_memory_timeline: bool = False,
        timeline_interval_s: float = 60.0,
        prewarm_effectiveness: float = 1.0,
        reserved_concurrency: Optional[dict] = None,
        warmup_s: float = 0.0,
        tracer: Optional[Tracer] = None,
        fault_spec: Optional[FaultSpec] = None,
        server_index: int = 0,
        tenant_mode: str = "shared",
        tenant_quotas: Optional[Dict[int, float]] = None,
    ) -> None:
        """``prewarm_effectiveness`` models Section 9's explicit-
        initialization discussion: a prefetched (HIST) container only
        skips the application-level initialization if the function
        provides an explicit init callback, which the paper found FaaS
        applications rarely do. 1.0 means prewarming covers the whole
        init cost (explicit init everywhere); 0.0 means the first
        invocation on a prewarmed container still pays the full init
        (prewarming only saved the environment creation the trace's
        cold overhead does not include anyway).

        ``reserved_concurrency`` maps function names to a number of
        *pinned* containers created before replay — AWS-style
        provisioned concurrency (the paper's introduction cites
        exactly this industry mechanism). Pinned containers serve warm
        starts but can never be evicted or expired, so they both
        guarantee their function's warmth and permanently shrink the
        cache available to everyone else.

        ``warmup_s`` excludes a measurement warmup: invocations before
        this time are simulated with full fidelity (they populate the
        cache and the policy state) but are not counted in the
        metrics, removing the compulsory-miss transient from short
        replays — standard discrete-event-simulation practice.

        ``tracer`` (a :class:`repro.obs.Tracer`) turns on structured
        lifecycle-event emission: arrivals, warm hits, cold starts,
        spawns, evictions (with policy and priority), drops, and
        memory-pressure rounds. Disabled (the default) it costs one
        ``None`` check per emission site — the trace stream sees
        *every* invocation, including those before ``warmup_s`` that
        the metrics exclude.

        ``fault_spec`` (a :class:`repro.faults.FaultSpec`) turns on
        deterministic fault injection and retry/shed recovery; see
        ``docs/robustness.md``. A ``None`` or all-zero spec leaves the
        failure-free path byte-identical to a simulator built without
        the parameter. ``server_index`` identifies this server both in
        ``server_down``/``server_recovered`` events and as the
        coordinate for rate-based whole-server outages.

        ``tenant_mode`` selects the pool's multi-tenant behavior
        (docs/multi-tenancy.md): ``shared`` (the default, today's
        single-owner semantics), ``partitioned`` (hard per-tenant
        capacity slices), or ``quota`` (soft limits — an over-quota
        tenant becomes preferentially evictable). ``tenant_quotas``
        maps tenant ids to slice/quota MB; if omitted in a non-shared
        mode, capacity is split equally across the tenants appearing
        in the trace. Per-tenant metrics and ``tenant`` event fields
        are recorded whenever the trace carries tenant ids, in every
        mode; tenant-less traces replay byte-identically to the
        pre-tenancy simulator."""
        if not 0.0 <= prewarm_effectiveness <= 1.0:
            raise ValueError(
                f"prewarm effectiveness must be in [0, 1], "
                f"got {prewarm_effectiveness}"
            )
        if warmup_s < 0.0:
            raise ValueError(f"warmup must be >= 0, got {warmup_s}")
        self.trace = trace
        self.policy = policy
        # ``None`` when tracing is disabled: every emission site guards
        # with a plain ``is None`` test, the cheapest off switch.
        self._tracer = active_tracer(tracer)
        # Runtime sanitizer (docs/static-analysis.md): when enabled and
        # the caller attached no tracer of their own, record the event
        # stream into an in-memory report so run() can assert
        # trace/metrics counter equality at the end. Warmup runs are
        # excluded — metrics deliberately skip pre-warmup invocations
        # while the trace stream sees all of them.
        self._sanitize_report: Optional[ReportSink] = None
        if sanitize_enabled() and self._tracer is None and warmup_s <= 0.0:
            self._sanitize_report = ReportSink()
            self._tracer = Tracer(self._sanitize_report)
        # Multi-tenancy: per-tenant metrics (and ``tenant`` event
        # fields) are recorded exactly when the trace carries tenant
        # ids, so tenant-less replays take the legacy path bit for bit.
        self._tenants_active = any(
            f.tenant_id != 0 for f in trace.functions.values()
        )
        limits = tenant_quotas
        if tenant_mode != "shared" and limits is None:
            # Equal split across the trace's tenants — the sensible
            # default for CLI runs that name a mode but no quotas.
            tenant_ids = sorted(
                {f.tenant_id for f in trace.functions.values()}
            )
            share = memory_mb / len(tenant_ids) if tenant_ids else memory_mb
            limits = {tid: share for tid in tenant_ids}
        self.pool = ContainerPool(
            memory_mb,
            tracer=self._tracer,
            tenant_mode=tenant_mode,
            tenant_limits_mb=limits if tenant_mode != "shared" else None,
        )
        self.metrics = SimulationMetrics()
        # Timestamp source (docs/live-serving.md): the replay loop
        # advances this to each arrival and reads ``now_s`` back from
        # it, so sim and live mode share one code path — the live
        # service swaps in a RealTimeClock and drives the same engine.
        self.clock = SimClock()
        # Expiry fast path: policies that never expire (the resource-
        # conserving caching family) inherit the base
        # ``expired_containers``; detecting that once here lets the
        # event loop skip the expiry phase entirely instead of calling
        # into an empty-list stub 100k times per replay.
        self._policy_expires = (
            type(policy).expired_containers
            is not KeepAlivePolicy.expired_containers
        )
        # Prewarm fast path, same trick: only HIST (and wrappers)
        # override ``due_prewarms``, so everyone else skips the phase
        # without a call. For policies that *do* expire or prefetch,
        # the per-arrival work is further gated by the policies'
        # ``next_expiry_s``/``next_prewarm_s`` peeks (batched dispatch:
        # one float compare instead of a call returning a fresh empty
        # list on every quiet arrival).
        self._policy_prewarms = (
            type(policy).due_prewarms is not KeepAlivePolicy.due_prewarms
        )
        self.prewarm_effectiveness = prewarm_effectiveness
        self.warmup_s = warmup_s
        self._track_timeline = track_memory_timeline
        self._timeline_interval_s = timeline_interval_s
        self._last_sample_s = float("-inf")
        # Min-heap of (finish_time, container_id, container) for
        # running invocations.
        self._running: List[Tuple[float, int, Container]] = []
        # ---- fault injection & recovery (docs/robustness.md) -------
        # Whether this server is currently failed. Maintained even
        # without a fault spec so cluster layers can drive
        # fail_server()/recover_server() externally.
        self._down = False
        self._down_since = 0.0
        self._server_index = int(server_index)
        # Harvested capacity (docs/robustness.md): the provisioned size
        # every capacity fraction is relative to. ``set_harvest_capacity``
        # resizes the pool against this, never against the previous
        # (possibly already-shrunk or deferral-clamped) capacity.
        self._nominal_capacity_mb = float(memory_mb)
        if fault_spec is not None and fault_spec.enabled:
            self._fault_spec: Optional[FaultSpec] = fault_spec
            self._faults: Optional[FaultModel] = FaultModel(fault_spec)
            self._retry: Optional[RetryPolicy] = RetryPolicy.from_spec(
                fault_spec
            )
            # Min-heap of (due_s, seq, function_name, attempt) pending
            # retries. ``seq`` is a per-simulator counter (never a
            # process-global one) so heap order — and therefore every
            # downstream decision — is identical across processes.
            self._retry_heap: List[Tuple[float, int, str, int]] = []
            self._retry_seq = 0
            # Scheduled whole-server outages for *this* server, as a
            # FIFO of (time_s, kind) transitions with kind "down"/"up".
            transitions: List[Tuple[float, str]] = []
            for down_s, up_s in self._faults.downtime_spans(
                self._server_index, trace.duration_s
            ):
                transitions.append((down_s, "down"))
                transitions.append((up_s, "up"))
            self._transitions: Deque[Tuple[float, str]] = deque(transitions)
            # Scheduled capacity events for *this* server: harvest
            # shrink/grow steps and spot notice/evict/restore triples,
            # already merged time-ordered (see
            # :meth:`FaultModel.server_capacity_events`).
            self._capacity_events: Deque[Tuple[float, str, float]] = deque(
                self._faults.server_capacity_events(
                    self._server_index, trace.duration_s
                )
            )
        else:
            self._fault_spec = None
            self._faults = None
            self._retry = None
            self._retry_heap = []
            self._retry_seq = 0
            self._transitions = deque()
            self._capacity_events = deque()
        # Provisioned concurrency: pinned containers exist from t=0.
        for name, count in (reserved_concurrency or {}).items():
            function = trace.functions.get(name)
            if function is None:
                raise ValueError(f"reserved function {name!r} not in trace")
            if count < 1:
                raise ValueError(f"reserved count for {name!r} must be >= 1")
            for __ in range(count):
                container = Container(function, created_at_s=0.0)
                container.pinned = True
                self.pool.add(container)  # raises CapacityError if too big

    # ------------------------------------------------------------------
    # Per-arrival phases
    # ------------------------------------------------------------------

    def _trace_evicted(
        self, container: Container, now_s: float, reason: str
    ) -> None:
        """Emit one ``evicted`` event (callers guard on the tracer)."""
        self._tracer.emit(
            "evicted",
            now_s,
            function=container.function.name,
            container_id=container.container_id,
            policy=self.policy.name,
            reason=reason,
            freed_mb=container.memory_mb,
            priority=self.policy.eviction_priority(container, now_s),
            idle_s=container.idle_time_s(now_s),
            age_s=max(0.0, now_s - container.created_at_s),
        )

    def _release_finished(self, now_s: float) -> None:
        while self._running and self._running[0][0] <= now_s:
            finish_s, __, container = heapq.heappop(self._running)
            container.finish_invocation(finish_s)
            # A doomed container (its invocation crashed, or its server
            # died under it) is torn down instead of returning to the
            # warm pool. Reason "failure" is excluded from the
            # evictions/expirations counters: the fault was already
            # counted when it was injected.
            if container.doomed:
                if self._tracer is not None:
                    self._trace_evicted(container, finish_s, "failure")
                self.pool.evict(container)
                self.policy.on_evict(
                    container, finish_s, self.pool, pressure=False
                )
                continue
            # Provisioned concurrency is retained by definition: the
            # admission gate below must never see a pinned container
            # (``pool.evict`` rightly refuses to terminate one).
            if container.pinned:
                continue
            # Admission gate: policies with a doorkeeper may refuse to
            # keep an unproven function's container warm at all.
            if not self.policy.should_retain(container, finish_s, self.pool):
                if self._tracer is not None:
                    self._trace_evicted(container, finish_s, "admission")
                self.pool.evict(container)
                self.policy.on_evict(
                    container, finish_s, self.pool, pressure=False
                )
                self.metrics.expirations += 1
        # A deferred deflation (shrink below what busy containers held)
        # resumes as those containers idle: the pool re-walks its lazy
        # victim index and frees whatever it can. Cheap when no shrink
        # is pending (a single ``is None`` check).
        if self.pool.deflation_target_mb is not None:
            target = self.pool.deflation_target_mb
            victims = self.pool.resume_deflation(self._deflation_key_of(now_s))
            self._note_deflations(victims, now_s, target)

    def _expire_containers(self, now_s: float) -> None:
        for container, __ in self.policy.expired_containers(self.pool, now_s):
            if self._tracer is not None:
                self._trace_evicted(container, now_s, "expiry")
            self.pool.evict(container)
            self.policy.on_evict(container, now_s, self.pool, pressure=False)
            self.metrics.expirations += 1

    def _materialize_prewarms(self, now_s: float) -> None:
        for request in self.policy.due_prewarms(now_s):
            function = request.function
            # Skip if an idle container already exists or memory is
            # tight: prewarming never evicts real containers.
            if self.pool.idle_warm_container(function.name) is not None:
                continue
            if not self.pool.can_admit(function):
                continue
            container = Container(function, created_at_s=request.at_time_s)
            container.prewarmed = True
            self.pool.add(container)
            self.policy.on_prewarm(container, request, self.pool)
            self.metrics.prewarms += 1

    def _evict_for(self, function: TraceFunction, now_s: float) -> bool:
        """Free memory for a container of ``function``; False means the
        request drops. In non-shared tenant modes the deficit and the
        candidate set are tenant-aware (see
        :meth:`KeepAlivePolicy.select_victims_tenant`)."""
        needed_mb = function.memory_mb
        tracer = self._tracer
        if tracer is not None and needed_mb > self.pool.free_mb + 1e-9:
            tracer.emit(
                "pool_pressure",
                now_s,
                needed_mb=needed_mb,
                free_mb=self.pool.free_mb,
                evictable_mb=self.pool.evictable_mb(),
                used_mb=self.pool.used_mb,
                capacity_mb=self.pool.capacity_mb,
            )
        if self.pool.tenant_mode == "shared":
            victims = self.policy.select_victims(self.pool, needed_mb, now_s)
        else:
            victims = self.policy.select_victims_tenant(
                self.pool, needed_mb, now_s, function.tenant_id
            )
        if victims is None:
            return False
        for container in victims:
            if tracer is not None:
                self._trace_evicted(container, now_s, "pressure")
            self.pool.evict(container)
            self.policy.on_evict(container, now_s, self.pool, pressure=True)
            self.metrics.evictions += 1
        return True

    def _sample_memory(self, now_s: float) -> None:
        if not self._track_timeline:
            return
        if now_s - self._last_sample_s >= self._timeline_interval_s:
            self.metrics.memory_timeline.append((now_s, self.pool.used_mb))
            self._last_sample_s = now_s

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def process_invocation(self, function: TraceFunction, now_s: float) -> str:
        """Handle one arrival; returns 'warm', 'cold', 'dropped',
        'retried', or 'shed' (the last two only with a fault spec)."""
        if self._faults is not None:
            self._advance_faults(now_s)
        return self._attempt(function, now_s, attempt=0)

    def housekeeping(self, now_s: float) -> None:
        """Apply everything due by ``now_s`` that is not an arrival:
        release finished invocations back to the warm pool, expire
        containers past their policy deadline (draining the pool's
        incremental expiry heap), and materialize due prewarms.

        Every attempt runs this as its prologue; the live serving mode
        (docs/live-serving.md) also calls it from a periodic timer so
        expirations drain during idle stretches with no arrivals."""
        self._release_finished(now_s)
        if self._policy_expires and self.policy.next_expiry_s(self.pool) <= now_s:
            self._expire_containers(now_s)
        if self._policy_prewarms and self.policy.next_prewarm_s() <= now_s:
            self._materialize_prewarms(now_s)

    def _attempt(self, function: TraceFunction, now_s: float, attempt: int) -> str:
        """One attempt (first try or retry) at serving an invocation."""
        self.housekeeping(now_s)
        self.policy.on_invocation(function, now_s, self.pool)
        tracer = self._tracer
        # ``None`` on tenant-less runs: metrics skip per-tenant
        # bookkeeping and events carry no ``tenant`` field, keeping
        # legacy traces byte-identical.
        tenant_id = function.tenant_id if self._tenants_active else None
        tenant_extra = {} if tenant_id is None else {"tenant": tenant_id}
        if tracer is not None and attempt == 0:
            tracer.emit(
                "invocation_arrived",
                now_s,
                function=function.name,
                **tenant_extra,
            )

        if self._down:
            # Routed to (or retried on) a failed server. With a fault
            # spec the retry policy gets a say; without one (cluster
            # layers driving fail_server externally) shed outright.
            if self._faults is not None:
                return self._handle_failure(
                    function, now_s, attempt, "unavailable"
                )
            return self._shed(function, now_s, attempt, "unavailable")

        faults = self._faults
        fault_kind = (
            faults.invocation_fault(function.name, now_s, attempt)
            if faults is not None
            else None
        )

        container = self.pool.idle_warm_container(function.name)
        if container is not None:
            duration = function.warm_time_s
            if container.prewarmed and container.invocation_count == 0:
                # First use of a prefetched container: without an
                # explicit init callback, part of the initialization
                # still runs now (Section 9).
                duration += (
                    (1.0 - self.prewarm_effectiveness) * function.init_time_s
                )
            if fault_kind is not None:
                return self._faulted_start(
                    container, function, now_s, attempt, fault_kind,
                    duration, cold=False,
                )
            container.start_invocation(now_s, duration)
            heapq.heappush(
                self._running,
                (container.busy_until_s, container.container_id, container),
            )
            self.policy.on_warm_start(container, now_s, self.pool)
            if tracer is not None:
                tracer.emit(
                    "warm_hit",
                    now_s,
                    function=function.name,
                    container_id=container.container_id,
                    duration_s=duration,
                    **tenant_extra,
                )
            if now_s >= self.warmup_s:
                self.metrics.record_warm(
                    function.name,
                    function.warm_time_s,
                    actual_time_s=duration,
                    tenant_id=tenant_id,
                )
            self._sample_memory(now_s)
            return "warm"

        # A spawn failure strikes before any eviction work happens: the
        # sandbox never comes up, so no warm container is sacrificed.
        if faults is not None and faults.spawn_fails(
            function.name, now_s, attempt
        ):
            if tracer is not None:
                tracer.emit(
                    "fault_injected",
                    now_s,
                    function=function.name,
                    kind="spawn_failure",
                )
            if now_s >= self.warmup_s:
                self.metrics.record_fault("spawn_failure")
            return self._handle_failure(function, now_s, attempt, "retry_budget")

        if not self._evict_for(function, now_s):
            if faults is not None:
                # Graceful degradation: under a fault spec, memory
                # pressure feeds the same bounded retry/shed machinery
                # instead of the plain drop counter.
                return self._handle_failure(
                    function, now_s, attempt, "memory_pressure"
                )
            if tracer is not None:
                tracer.emit(
                    "dropped",
                    now_s,
                    function=function.name,
                    needed_mb=function.memory_mb,
                    **tenant_extra,
                )
            if now_s >= self.warmup_s:
                self.metrics.record_dropped(function.name, tenant_id=tenant_id)
            self._sample_memory(now_s)
            return "dropped"

        container = Container(function, created_at_s=now_s)
        self.pool.add(container)
        if fault_kind is not None:
            return self._faulted_start(
                container, function, now_s, attempt, fault_kind,
                function.cold_time_s, cold=True,
            )
        container.start_invocation(now_s, function.cold_time_s)
        heapq.heappush(
            self._running,
            (container.busy_until_s, container.container_id, container),
        )
        self.policy.on_cold_start(container, now_s, self.pool)
        if tracer is not None:
            tracer.emit(
                "cold_start",
                now_s,
                function=function.name,
                container_id=container.container_id,
                duration_s=function.cold_time_s,
                **tenant_extra,
            )
        if now_s >= self.warmup_s:
            self.metrics.record_cold(
                function.name,
                function.warm_time_s,
                function.cold_time_s,
                tenant_id=tenant_id,
            )
        self._sample_memory(now_s)
        return "cold"

    # ------------------------------------------------------------------
    # Fault injection & recovery
    # ------------------------------------------------------------------

    def _faulted_start(
        self,
        container: Container,
        function: TraceFunction,
        now_s: float,
        attempt: int,
        kind: str,
        duration_s: float,
        cold: bool,
    ) -> str:
        """An attempt that got a container but crashed or timed out.

        The container still occupies memory for the invocation's
        duration (the work ran, then failed); a crash additionally
        dooms it so it is torn down at completion instead of going
        warm. The attempt is *not* counted as warm/cold served — its
        terminal outcome is the eventual retry or shed.
        """
        container.start_invocation(now_s, duration_s)
        heapq.heappush(
            self._running,
            (container.busy_until_s, container.container_id, container),
        )
        # The policy still observes the usage: the container genuinely
        # ran, and policies must keep scoring it while it exists.
        if cold:
            self.policy.on_cold_start(container, now_s, self.pool)
        else:
            self.policy.on_warm_start(container, now_s, self.pool)
        if kind == "crash" and not container.pinned:
            container.doomed = True
        if self._tracer is not None:
            self._tracer.emit(
                "fault_injected", now_s, function=function.name, kind=kind
            )
        if now_s >= self.warmup_s:
            self.metrics.record_fault(kind)
        return self._handle_failure(function, now_s, attempt, "retry_budget")

    def _shed(
        self, function: TraceFunction, now_s: float, attempt: int, reason: str
    ) -> str:
        if self._tracer is not None:
            self._tracer.emit(
                "invocation_shed",
                now_s,
                function=function.name,
                reason=reason,
                attempts=attempt + 1,
            )
        if now_s >= self.warmup_s:
            self.metrics.record_shed(reason)
        self._sample_memory(now_s)
        return "shed"

    def _handle_failure(
        self,
        function: TraceFunction,
        now_s: float,
        attempt: int,
        shed_reason: str,
    ) -> str:
        """Route a failed attempt to the retry queue or shed it.

        ``shed_reason`` is used if the retry policy declines (budget or
        cap exhausted); a full retry queue overrides it with
        ``queue_full`` — the admission-controlled load shedding that
        replaces unbounded queueing.
        """
        assert self._fault_spec is not None and self._retry is not None
        if len(self._retry_heap) >= self._fault_spec.max_pending_retries:
            return self._shed(function, now_s, attempt, "queue_full")
        delay = self._retry.next_delay(function.name, attempt + 1, now_s)
        if delay is None:
            return self._shed(function, now_s, attempt, shed_reason)
        heapq.heappush(
            self._retry_heap,
            (now_s + delay, self._retry_seq, function.name, attempt + 1),
        )
        self._retry_seq += 1
        if self._tracer is not None:
            self._tracer.emit(
                "invocation_retried",
                now_s,
                function=function.name,
                attempt=attempt + 1,
                delay_s=delay,
            )
        if now_s >= self.warmup_s:
            self.metrics.record_retry()
        self._sample_memory(now_s)
        return "retried"

    def _advance_faults(self, now_s: float) -> None:
        """Apply every scheduled outage transition, capacity event, and
        due retry up to ``now_s``, in chronological order (interleaved,
        so a retry due while the server is down — or freshly shrunk —
        sees that state). At equal times: transitions, then capacity
        events, then retries."""
        heap = self._retry_heap
        transitions = self._transitions
        capacity = self._capacity_events
        functions = self.trace.functions
        while True:
            retry_due = heap[0][0] if heap else float("inf")
            trans_due = transitions[0][0] if transitions else float("inf")
            cap_due = capacity[0][0] if capacity else float("inf")
            if min(retry_due, trans_due, cap_due) > now_s:
                return
            if trans_due <= cap_due and trans_due <= retry_due:
                at_s, kind = transitions.popleft()
                if kind == "down":
                    self.fail_server(at_s)
                else:
                    self.recover_server(at_s)
            elif cap_due <= retry_due:
                at_s, kind, value = capacity.popleft()
                self._apply_capacity_event(at_s, kind, value)
            else:
                due_s, __, function_name, attempt = heapq.heappop(heap)
                self._attempt(functions[function_name], due_s, attempt)

    def fail_server(self, now_s: float) -> None:
        """Take this server down: its warm pool is lost and running
        invocations are doomed (their containers die at completion).
        Pinned containers survive — the platform re-establishes
        provisioned concurrency out of band. Idempotent while down.
        """
        if self._down:
            return
        self._down = True
        self._down_since = now_s
        if now_s >= self.warmup_s:
            self.metrics.server_downs += 1
        if self._tracer is not None:
            self._tracer.emit("server_down", now_s, server=self._server_index)
        self._release_finished(now_s)
        for container in self.pool.idle_containers():
            if self._tracer is not None:
                self._trace_evicted(container, now_s, "failure")
            self.pool.evict(container)
            self.policy.on_evict(container, now_s, self.pool, pressure=False)
        for container in self.pool.running_containers():
            if not container.pinned:
                container.doomed = True
        self._sample_memory(now_s)

    def recover_server(self, now_s: float) -> None:
        """Bring the server back (empty-cache restart). Idempotent."""
        if not self._down:
            return
        self._down = False
        downtime_s = max(0.0, now_s - self._down_since)
        if now_s >= self.warmup_s:
            self.metrics.downtime_s += downtime_s
        if self._tracer is not None:
            self._tracer.emit(
                "server_recovered",
                now_s,
                server=self._server_index,
                downtime_s=downtime_s,
            )

    @property
    def is_down(self) -> bool:
        """Whether the server is currently failed."""
        return self._down

    @property
    def outstanding(self) -> int:
        """Number of in-flight invocations (the server's queue depth,
        as seen by queue-aware balancers)."""
        return len(self._running)

    # ------------------------------------------------------------------
    # Harvested / spot capacity (docs/robustness.md)
    # ------------------------------------------------------------------

    def _apply_capacity_event(
        self, at_s: float, kind: str, value: float
    ) -> None:
        """Dispatch one scheduled capacity event (see
        :meth:`repro.faults.FaultModel.server_capacity_events`)."""
        if kind == "capacity":
            self.set_harvest_capacity(at_s, value)
        elif kind == "notice":
            self.notice_eviction(at_s, evict_at_s=value)
        elif kind == "evict":
            self.fail_server(at_s)
        else:  # "restore": a replacement server, cold and full-size
            self.recover_server(at_s)
            self.set_harvest_capacity(at_s, 1.0)

    def _deflation_key_of(self, now_s: float):
        """The policy's victim key, frozen at ``now_s``, for the
        pool's lazy victim index. Policies that select victims without
        a scalar priority fall back to LRU order (last-used, then id) —
        the same tie-break every scored key already carries."""
        policy = self.policy

        def key_of(container: Container) -> Tuple[float, float, int]:
            try:
                prio = policy.priority(container, now_s)
            except NotImplementedError:
                prio = 0.0
            return (prio, container.last_used_s, container.container_id)

        return key_of

    def _note_deflations(
        self, victims: List[Container], now_s: float, target_mb: float
    ) -> None:
        """Policy cleanup + observability for containers the pool just
        deflated away (they are already evicted)."""
        tracer = self._tracer
        for container in victims:
            self.policy.on_evict(container, now_s, self.pool, pressure=True)
            if tracer is not None:
                tracer.emit(
                    "container_deflated",
                    now_s,
                    function=container.function.name,
                    container_id=container.container_id,
                    memory_mb=container.memory_mb,
                    target_mb=target_mb,
                )
            if now_s >= self.warmup_s:
                self.metrics.deflations += 1
        if victims:
            self._sample_memory(now_s)

    def set_harvest_capacity(self, now_s: float, frac: float) -> None:
        """Resize this server to ``frac`` of its nominal capacity.

        The graceful path for time-varying (harvested) resources: a
        shrink evicts idle containers in the policy's victim order via
        :meth:`ContainerPool.deflate_to` and defers whatever busy
        containers still hold (freed as they finish —
        :meth:`_release_finished` resumes the deflation); growth
        applies immediately. Emits ``capacity_shrunk`` /
        ``capacity_grown`` and keeps the matching counters. Cluster
        layers may call this directly to drive harvest timelines
        centrally.
        """
        if frac <= 0.0:
            raise ValueError(f"capacity fraction must be > 0, got {frac}")
        target = frac * self._nominal_capacity_mb
        old = self.pool.capacity_mb
        victims = self.pool.deflate_to(target, self._deflation_key_of(now_s))
        self._note_deflations(victims, now_s, target)
        slack = 1e-9 * max(old, target)
        if target < old - slack:
            if now_s >= self.warmup_s:
                self.metrics.capacity_shrinks += 1
            if self._tracer is not None:
                self._tracer.emit(
                    "capacity_shrunk",
                    now_s,
                    server=self._server_index,
                    old_mb=old,
                    new_mb=target,
                    deferred_mb=self.pool.deflation_deferred_mb,
                )
        elif target > old + slack:
            if now_s >= self.warmup_s:
                self.metrics.capacity_grows += 1
            if self._tracer is not None:
                self._tracer.emit(
                    "capacity_grown",
                    now_s,
                    server=self._server_index,
                    old_mb=old,
                    new_mb=target,
                )

    def notice_eviction(self, now_s: float, evict_at_s: float) -> None:
        """Record a spot-eviction notice for this server.

        The server keeps serving until the eviction lands (the cluster
        layer stops routing *new* work here — see
        ``LoadBalancer.mark_draining``); the notice itself is pure
        observability plus a counter.
        """
        if now_s >= self.warmup_s:
            self.metrics.eviction_notices += 1
        if self._tracer is not None:
            self._tracer.emit(
                "eviction_notice",
                now_s,
                server=self._server_index,
                evict_at_s=evict_at_s,
                notice_s=max(0.0, evict_at_s - now_s),
            )

    def drain_retries(self) -> None:
        """Run every still-pending retry (and any outage transition
        that precedes it) past the end of the trace, so no failed
        attempt is left without a terminal outcome. Called by
        :meth:`run`; cluster drivers call it once arrivals stop."""
        if self._faults is None:
            return
        heap = self._retry_heap
        while heap:
            # Advancing to the next due time processes that retry (and
            # any outage transition before it); retries it schedules in
            # turn stay in the heap for the next iteration.
            self._advance_faults(heap[0][0])

    def run(self) -> SimulationResult:
        """Replay the whole trace and return the collected metrics.

        Besides the paper's counters this also records throughput
        observability: the wall-clock time of the replay and (derived)
        invocations simulated per second, so sweep harnesses can spot
        hot-path regressions per cell. When timeline tracking is on, a
        closing ``(trace_end, used_mb)`` sample is appended so the
        tail interval after the last periodic sample is weighted in
        :meth:`SimulationMetrics.mean_memory_mb` instead of silently
        dropped.
        """
        started = wall_clock_s()
        functions = self.trace.functions
        clock = self.clock
        end_s = 0.0
        for invocation in self.trace:
            # Timestamps flow through the SimClock (traces are sorted,
            # so advance_to/now round-trips each arrival time exactly —
            # byte-identical to passing invocation.time_s directly).
            clock.advance_to(invocation.time_s)
            end_s = clock.now()
            self.process_invocation(functions[invocation.function_name], end_s)
        return self.finalize(end_s, started)

    def finalize(self, end_s: float, started_wall_s: float) -> SimulationResult:
        """Post-replay epilogue shared by :meth:`run` and external
        arrival drivers (the columnar engine's chunked loop): drain
        pending retries, close the memory timeline, stamp the wall
        clock, run the sanitizer's trace/metrics counter-equality
        check, and package the result. ``end_s`` is the time of the
        last processed arrival (0.0 for an empty replay)."""
        # Give every pending retry a terminal outcome before reporting.
        self.drain_retries()
        if self._track_timeline and end_s > self._last_sample_s:
            self.metrics.memory_timeline.append((end_s, self.pool.used_mb))
            self._last_sample_s = end_s
        self.metrics.wall_time_s = wall_clock_s() - started_wall_s
        if self._sanitize_report is not None:
            # Sanitizer: counters rebuilt from the event stream must
            # equal the aggregate metrics (raises SanitizeError).
            check_counter_equality(
                self._sanitize_report.report, self.metrics.counters()
            )
            check_tenant_counter_equality(
                self._sanitize_report.report, self.metrics.tenant_counters()
            )
        return SimulationResult(
            trace_name=self.trace.name,
            policy_name=self.policy.name,
            memory_mb=self.pool.capacity_mb,
            metrics=self.metrics,
        )


def simulate(
    trace: Trace,
    policy: str | KeepAlivePolicy,
    memory_mb: float,
    track_memory_timeline: bool = False,
    timeline_interval_s: float = 60.0,
    prewarm_effectiveness: float = 1.0,
    reserved_concurrency: Optional[dict] = None,
    warmup_s: float = 0.0,
    tracer: Optional[Tracer] = None,
    fault_spec: Optional[FaultSpec] = None,
    engine: str = "object",
    tenant_mode: str = "shared",
    tenant_quotas: Optional[Dict[int, float]] = None,
    **policy_kwargs,
) -> SimulationResult:
    """Convenience one-shot simulation.

    ``policy`` may be a short policy name (``"GD"``, ``"TTL"``, ...) or
    an already-constructed policy instance. The simulator's own knobs
    (``timeline_interval_s``, ``prewarm_effectiveness``,
    ``reserved_concurrency``, ``warmup_s``, ``tracer``,
    ``fault_spec``) are forwarded to :class:`KeepAliveSimulator`
    explicitly; any remaining keyword arguments configure the *policy*
    and are therefore only valid with a policy name.

    ``engine`` selects the replay implementation: ``"object"`` (this
    module's per-invocation simulator) or ``"columnar"``
    (:class:`repro.sim.columnar.ColumnarReplayEngine`, batched and —
    for eligible TTL configurations — vectorized). The two produce
    byte-identical metrics; the differential suite holds them to it.

    >>> from repro.traces.synth import skewed_frequency_trace
    >>> result = simulate(skewed_frequency_trace(seed=1), "GD", 4096)
    >>> result.metrics.served > 0
    True
    """
    if isinstance(policy, str):
        policy = create_policy(policy, **policy_kwargs)
    elif policy_kwargs:
        raise ValueError("policy_kwargs are only valid with a policy name")
    if engine not in ("object", "columnar"):
        raise ValueError(
            f"engine must be 'object' or 'columnar', got {engine!r}"
        )
    if engine == "columnar":
        # Imported here: repro.sim.columnar imports this module.
        from repro.sim.columnar import ColumnarReplayEngine

        return ColumnarReplayEngine(
            policy,
            memory_mb,
            track_memory_timeline=track_memory_timeline,
            timeline_interval_s=timeline_interval_s,
            prewarm_effectiveness=prewarm_effectiveness,
            reserved_concurrency=reserved_concurrency,
            warmup_s=warmup_s,
            tracer=tracer,
            fault_spec=fault_spec,
            tenant_mode=tenant_mode,
            tenant_quotas=tenant_quotas,
        ).run(trace)
    simulator = KeepAliveSimulator(
        trace,
        policy,
        memory_mb,
        track_memory_timeline=track_memory_timeline,
        timeline_interval_s=timeline_interval_s,
        prewarm_effectiveness=prewarm_effectiveness,
        reserved_concurrency=reserved_concurrency,
        warmup_s=warmup_s,
        tracer=tracer,
        fault_spec=fault_spec,
        tenant_mode=tenant_mode,
        tenant_quotas=tenant_quotas,
    )
    return simulator.run()

"""Elastic (horizontal) cluster scaling with keep-alive awareness.

The paper's introduction credits FaaS with "near-infinite horizontal
scaling"; its Section 5 scales one server vertically and leaves the
cluster dimension to classical techniques. This module composes the
two: a cluster of keep-alive servers whose *count* follows the load
(AutoScale-style reactive scaling with a scale-down hold, via
:class:`~repro.provisioning.cpu_autoscale.ReactiveCpuScaler`), routed
by consistent hashing so that scaling events disturb as little
function-to-server affinity as possible.

Keep-alive interaction, which is the interesting part: decommissioning
a server discards its warm containers, so every scale-down buys
efficiency at the price of a cold-start burst when its functions
re-hash — the cluster-level version of the paper's
latency-vs-utilization tradeoff.
"""

from __future__ import annotations

import hashlib
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.cluster.simulation import _server_level_spec
from repro.core.policies.base import create_policy
from repro.faults import FaultModel, FaultSpec
from repro.obs.tracer import Tracer, active_tracer
from repro.provisioning.cpu_autoscale import ReactiveCpuScaler
from repro.sim.metrics import SimulationMetrics
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Trace

__all__ = ["ElasticClusterResult", "ElasticClusterSimulation"]


@dataclass
class ElasticClusterResult:
    """Aggregate outcome plus the scaling timeline."""

    warm_starts: int = 0
    cold_starts: int = 0
    dropped: int = 0
    #: (time, active server count) at each control period.
    server_timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: Integral of active servers over time, in server-seconds.
    server_seconds: float = 0.0
    scale_ups: int = 0
    scale_downs: int = 0
    # -- fault injection / recovery ----------------------------------
    faults_injected: int = 0
    retries: int = 0
    #: Per-server sheds (budget/queue/pressure) folded from members.
    sheds: int = 0
    #: Whole-server failures applied across the ring.
    server_downs: int = 0
    #: Invocations shed at the cluster level: every active ring
    #: position was failed when they arrived.
    shed_unavailable: int = 0
    # -- harvested / spot capacity ------------------------------------
    #: Harvest shrink/grow steps applied across members.
    capacity_shrinks: int = 0
    capacity_grows: int = 0
    #: Spot eviction notices received (pre-drain started).
    eviction_notices: int = 0
    #: Containers gracefully deflated away by harvest shrinks.
    deflations: int = 0
    #: Cold replacement servers spun up after spot evictions.
    replacements: int = 0

    @property
    def served(self) -> int:
        return self.warm_starts + self.cold_starts

    @property
    def cold_start_pct(self) -> float:
        return 100.0 * self.cold_starts / self.served if self.served else 0.0

    @property
    def mean_servers(self) -> float:
        if not self.server_timeline:
            return 0.0
        return sum(n for __, n in self.server_timeline) / len(
            self.server_timeline
        )


class ElasticClusterSimulation:
    """Replay a trace on a cluster whose size tracks the load."""

    def __init__(
        self,
        trace: Trace,
        server_memory_mb: float = 8192.0,
        policy: str = "GD",
        min_servers: int = 1,
        max_servers: int = 16,
        requests_per_server_per_s: float = 50.0,
        target_utilization: float = 0.7,
        control_period_s: float = 600.0,
        scale_down_hold_s: float = 1200.0,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        fault_spec: Optional[FaultSpec] = None,
    ) -> None:
        if requests_per_server_per_s <= 0:
            raise ValueError("per-server request capacity must be positive")
        if not 1 <= min_servers <= max_servers:
            raise ValueError("need 1 <= min_servers <= max_servers")
        self.trace = trace
        self.server_memory_mb = server_memory_mb
        self.policy_name = policy.upper()
        self.min_servers = min_servers
        self.max_servers = max_servers
        self.requests_per_server_per_s = requests_per_server_per_s
        self.control_period_s = control_period_s
        self._seed = seed
        self._tracer = active_tracer(tracer)
        # One "core" in the scaler = one server; offered load is the
        # arrival rate over the per-server request capacity.
        self._scaler = ReactiveCpuScaler(
            target_utilization=target_utilization,
            min_cores=min_servers,
            max_cores=max_servers,
            scale_down_hold_s=scale_down_hold_s,
            initial_cores=min_servers,
        )
        # Whole-server outages are driven at this level over the fixed
        # ring positions; member simulators only see invocation-level
        # faults (see repro.cluster.simulation._server_level_spec).
        self._fault_spec = (
            fault_spec if fault_spec is not None and fault_spec.enabled
            else None
        )
        self._server_spec = _server_level_spec(self._fault_spec)
        self._outages: Deque[Tuple[float, int, str]] = deque()
        # Harvest/spot capacity events over the same ring positions:
        # (time_s, ring index, kind, value).
        self._capacity: Deque[Tuple[float, int, str, float]] = deque()
        if self._fault_spec is not None:
            model = FaultModel(self._fault_spec)
            self._outages = deque(
                model.server_schedule(max_servers, trace.duration_s)
            )
            self._capacity = deque(
                model.capacity_schedule(max_servers, trace.duration_s)
            )
        # Ring positions currently failed; routing and scale-up skip
        # them until the scheduled recovery.
        self._failed: Set[int] = set()
        # Ring positions under a spot eviction notice: excluded from
        # new placements (and from scale-up) while their server
        # finishes its in-flight work.
        self._draining: Set[int] = set()
        # Slot i holds the simulator of ring position i, or None when
        # the position is inactive.
        self._servers: List[Optional[KeepAliveSimulator]] = [
            None
        ] * max_servers
        for i in range(min_servers):
            self._servers[i] = self._new_server(i)
        self._active = min_servers

    def _new_server(self, ring_index: int) -> KeepAliveSimulator:
        return KeepAliveSimulator(
            self.trace,
            create_policy(self.policy_name),
            self.server_memory_mb,
            tracer=(
                self._tracer.bind(server=ring_index)
                if self._tracer is not None
                else None
            ),
            fault_spec=self._server_spec,
            server_index=ring_index,
        )

    # ------------------------------------------------------------------
    # Routing: consistent hashing over the fixed ring of positions,
    # walking forward to the next active position.
    # ------------------------------------------------------------------

    def _ring_start(self, function_name: str) -> int:
        digest = hashlib.blake2b(
            function_name.encode("utf-8"),
            digest_size=8,
            salt=self._seed.to_bytes(8, "little"),
        ).digest()
        return int.from_bytes(digest, "little") % self.max_servers

    def _route(self, function_name: str) -> Optional[KeepAliveSimulator]:
        """The next active, healthy, non-draining server on the ring,
        or ``None`` when every active position is currently failed or
        draining (the caller sheds the invocation as
        ``unavailable``)."""
        start = self._ring_start(function_name)
        for offset in range(self.max_servers):
            index = (start + offset) % self.max_servers
            server = self._servers[index]
            if (
                server is not None
                and index not in self._failed
                and index not in self._draining
            ):
                return server
        return None

    # ------------------------------------------------------------------
    # Scaling actuation
    # ------------------------------------------------------------------

    def _apply_scaling(self, desired: int, result: ElasticClusterResult) -> None:
        while self._active < desired:
            # New capacity never lands on a failed or draining (about
            # to be evicted) ring position.
            candidates = [
                i
                for i, s in enumerate(self._servers)
                if s is None
                and i not in self._failed
                and i not in self._draining
            ]
            if not candidates:
                break
            index = candidates[0]
            self._servers[index] = self._new_server(index)
            self._active += 1
            result.scale_ups += 1
        while self._active > desired and self._active > self.min_servers:
            # Decommission the highest-index active server; its warm
            # containers are lost (running ones finish off-record).
            index = max(
                i for i, s in enumerate(self._servers) if s is not None
            )
            retired = self._servers[index]
            self._servers[index] = None
            self._active -= 1
            result.scale_downs += 1
            retired.drain_retries()
            self._fold_metrics(retired.metrics, result)

    def _apply_outages(self, now_s: float, result: ElasticClusterResult) -> None:
        """Fail/recover ring positions per the outage schedule, and
        apply harvest/spot capacity events, chronologically merged (at
        equal times outage transitions win, matching the lower
        layers)."""
        outages = self._outages
        capacity = self._capacity
        while True:
            out_due = outages[0][0] if outages else float("inf")
            cap_due = capacity[0][0] if capacity else float("inf")
            if min(out_due, cap_due) > now_s:
                return
            if out_due <= cap_due:
                at_s, index, kind = outages.popleft()
                server = self._servers[index]
                if kind == "down":
                    self._failed.add(index)
                    if server is not None:
                        server.fail_server(at_s)
                else:
                    self._failed.discard(index)
                    if server is not None:
                        server.recover_server(at_s)
            else:
                at_s, index, kind, value = capacity.popleft()
                self._apply_capacity_event(at_s, index, kind, value, result)

    def _apply_capacity_event(
        self,
        at_s: float,
        index: int,
        kind: str,
        value: float,
        result: ElasticClusterResult,
    ) -> None:
        """One harvest/spot event against a ring position.

        Unlike the fixed-size cluster, an elastic ring treats a spot
        eviction as *permanent loss of that instance*: the server is
        decommissioned (metrics folded, warm state gone) and a cold
        **replacement** spins up on the lowest free healthy ring
        position immediately, so harvested churn does not silently
        shrink the fleet below what the autoscaler asked for. The
        later "restore" merely frees the ring position for future
        scale-ups.
        """
        server = self._servers[index]
        if kind == "capacity":
            if server is not None and index not in self._failed:
                server.set_harvest_capacity(at_s, value)
        elif kind == "notice":
            # Pre-drain: stop routing new work at this position; the
            # server keeps finishing its own in-flight invocations
            # until the eviction lands.
            self._draining.add(index)
            if server is not None and index not in self._failed:
                server.notice_eviction(at_s, evict_at_s=value)
        elif kind == "evict":
            self._draining.discard(index)
            self._failed.add(index)
            if server is not None:
                # The instance is gone: doom in-flight work, settle
                # retries, fold what it measured, release the slot.
                server.fail_server(at_s)
                server.drain_retries()
                self._fold_metrics(server.metrics, result)
                self._servers[index] = None
                self._active -= 1
                self._spin_replacement(at_s, result)
        else:  # "restore": the position is usable again, nothing more —
            # the replacement already took over the capacity.
            self._failed.discard(index)
            self._draining.discard(index)

    def _spin_replacement(
        self, at_s: float, result: ElasticClusterResult
    ) -> None:
        """Cold replacement for an evicted spot instance, on the lowest
        free healthy ring position (no-op when the ring is full)."""
        for i, slot in enumerate(self._servers):
            if (
                slot is None
                and i not in self._failed
                and i not in self._draining
            ):
                self._servers[i] = self._new_server(i)
                self._active += 1
                result.replacements += 1
                return

    @staticmethod
    def _fold_metrics(
        metrics: SimulationMetrics, result: ElasticClusterResult
    ) -> None:
        result.warm_starts += metrics.warm_starts
        result.cold_starts += metrics.cold_starts
        result.dropped += metrics.dropped
        result.faults_injected += metrics.faults_injected
        result.retries += metrics.retries
        result.sheds += metrics.sheds
        result.server_downs += metrics.server_downs
        result.capacity_shrinks += metrics.capacity_shrinks
        result.capacity_grows += metrics.capacity_grows
        result.eviction_notices += metrics.eviction_notices
        result.deflations += metrics.deflations

    # ------------------------------------------------------------------

    def run(self) -> ElasticClusterResult:
        result = ElasticClusterResult()
        functions = self.trace.functions
        period = self.control_period_s
        next_tick = period
        arrivals_in_period = 0
        result.server_timeline.append((0.0, self._active))
        for invocation in self.trace:
            while invocation.time_s >= next_tick:
                rate = arrivals_in_period / period
                decision = self._scaler.step(
                    next_tick,
                    arrival_rate=rate / self.requests_per_server_per_s,
                    mean_service_time_s=1.0,
                )
                if self._tracer is not None:
                    self._tracer.emit(
                        "autoscale_decision",
                        next_tick,
                        desired_servers=decision.cores,
                        active_servers=self._active,
                        arrival_rate=rate,
                    )
                self._apply_scaling(decision.cores, result)
                result.server_timeline.append((next_tick, self._active))
                result.server_seconds += self._active * period
                arrivals_in_period = 0
                next_tick += period
            arrivals_in_period += 1
            if self._outages or self._capacity:
                self._apply_outages(invocation.time_s, result)
            server = self._route(invocation.function_name)
            if server is None:
                # Every active ring position is down right now.
                result.shed_unavailable += 1
                if self._tracer is not None:
                    self._tracer.emit(
                        "invocation_shed",
                        invocation.time_s,
                        function=invocation.function_name,
                        reason="unavailable",
                        attempts=1,
                    )
                continue
            server.process_invocation(
                functions[invocation.function_name], invocation.time_s
            )
        # Fold the still-active servers' metrics.
        for server in self._servers:
            if server is not None:
                server.drain_retries()
                self._fold_metrics(server.metrics, result)
        return result

"""Cluster-level load balancing and keep-alive locality (Section 9)."""

from repro.cluster.loadbalancer import (
    AffinityWithSpilloverBalancer,
    HashAffinityBalancer,
    LeastLoadedBalancer,
    LoadBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    create_balancer,
)
from repro.cluster.elastic import ElasticClusterResult, ElasticClusterSimulation
from repro.cluster.simulation import ClusterResult, ClusterSimulator

__all__ = [
    "AffinityWithSpilloverBalancer",
    "HashAffinityBalancer",
    "LeastLoadedBalancer",
    "LoadBalancer",
    "RandomBalancer",
    "RoundRobinBalancer",
    "create_balancer",
    "ElasticClusterResult",
    "ElasticClusterSimulation",
    "ClusterResult",
    "ClusterSimulator",
]

"""Cluster-level load-balancing policies (Section 9's discussion).

The paper deliberately evaluates at single-server scope but discusses
how the cluster's load balancer determines each server's function mix
and therefore its keep-alive effectiveness: "a stateful load-balancing
policy which runs a function on the same subset of servers will result
in better temporal locality ... randomized load-balancing is simpler
to implement and scale, but offers worse temporal locality".

This module implements that spectrum so the claim can be measured:

* :class:`RandomBalancer` — uniform random server per request.
* :class:`RoundRobinBalancer` — rotate servers per request.
* :class:`HashAffinityBalancer` — stateful: a function consistently
  hashes to ``replicas`` servers and its requests round-robin among
  only those, concentrating each function's temporal locality.
* :class:`LeastLoadedBalancer` — pick the server with the least
  memory in use (greedy packing, locality-blind).
"""

from __future__ import annotations

import abc
import hashlib
import random
from typing import Dict, List, Sequence

__all__ = [
    "LoadBalancer",
    "RandomBalancer",
    "RoundRobinBalancer",
    "HashAffinityBalancer",
    "AffinityWithSpilloverBalancer",
    "LeastLoadedBalancer",
    "create_balancer",
]


class LoadBalancer(abc.ABC):
    """Routes each function invocation to a server index."""

    name: str = "base"

    def __init__(self, num_servers: int) -> None:
        if num_servers <= 0:
            raise ValueError(f"need at least one server, got {num_servers}")
        self.num_servers = num_servers

    @abc.abstractmethod
    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        """Pick a server for one invocation.

        ``used_mb`` is the current memory usage of every server, for
        load-aware policies.
        """

    def route_traced(
        self,
        function_name: str,
        used_mb: Sequence[float],
        now_s: float,
        tracer,
    ) -> int:
        """Route one invocation and emit an ``invocation_routed`` event.

        The observability entry point used by
        :class:`~repro.cluster.simulation.ClusterSimulator` when
        tracing is enabled; subclasses with richer routing state
        (spillover, rebalancing) override this to annotate the event.
        """
        server = self.route(function_name, used_mb)
        tracer.emit(
            "invocation_routed",
            now_s,
            function=function_name,
            server=server,
            balancer=self.name,
        )
        return server

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_servers={self.num_servers})"


class RandomBalancer(LoadBalancer):
    """Uniform random routing — maximal simplicity, minimal locality."""

    name = "random"

    def __init__(self, num_servers: int, seed: int = 0) -> None:
        super().__init__(num_servers)
        self._rng = random.Random(seed)

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        return self._rng.randrange(self.num_servers)


class RoundRobinBalancer(LoadBalancer):
    """Rotate through servers regardless of the function."""

    name = "round-robin"

    def __init__(self, num_servers: int) -> None:
        super().__init__(num_servers)
        self._next = 0

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        server = self._next
        self._next = (self._next + 1) % self.num_servers
        return server


class HashAffinityBalancer(LoadBalancer):
    """Stateful affinity: each function owns a small server subset.

    A function's requests consistently go to ``replicas`` servers
    chosen by hashing its name, rotating among them for concurrency.
    Keep-alive caches then see each function on few servers — the
    high-locality end of the paper's spectrum.
    """

    name = "hash-affinity"

    def __init__(self, num_servers: int, replicas: int = 1, seed: int = 0) -> None:
        super().__init__(num_servers)
        if not 1 <= replicas <= num_servers:
            raise ValueError(
                f"replicas must be in [1, {num_servers}], got {replicas}"
            )
        self.replicas = replicas
        self._seed = seed
        self._rotation: Dict[str, int] = {}

    def _servers_for(self, function_name: str) -> List[int]:
        digest = hashlib.blake2b(
            function_name.encode("utf-8"),
            digest_size=8,
            salt=self._seed.to_bytes(8, "little"),
        ).digest()
        start = int.from_bytes(digest, "little") % self.num_servers
        return [(start + i) % self.num_servers for i in range(self.replicas)]

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        servers = self._servers_for(function_name)
        turn = self._rotation.get(function_name, 0)
        self._rotation[function_name] = (turn + 1) % len(servers)
        return servers[turn % len(servers)]


class AffinityWithSpilloverBalancer(HashAffinityBalancer):
    """Stateful affinity with a load-aware escape hatch.

    Pure affinity concentrates locality but can hot-spot a server.
    This variant keeps each function's home-server routing until the
    home servers' memory usage crosses a spillover fraction of the
    cluster mean, then temporarily diverts to the least-loaded server
    — trading a little locality for bounded imbalance. (The follow-on
    literature on FaaS load balancing converged on exactly this
    structure: consistent hashing with bounded loads.)
    """

    name = "affinity-spillover"

    def __init__(
        self,
        num_servers: int,
        replicas: int = 1,
        seed: int = 0,
        spillover_factor: float = 1.5,
    ) -> None:
        super().__init__(num_servers, replicas=replicas, seed=seed)
        if spillover_factor <= 1.0:
            raise ValueError(
                f"spillover factor must exceed 1, got {spillover_factor}"
            )
        self.spillover_factor = spillover_factor
        self.spillovers = 0

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        if len(used_mb) != self.num_servers:
            raise ValueError(
                f"expected {self.num_servers} load entries, got {len(used_mb)}"
            )
        home = super().route(function_name, used_mb)
        mean_load = sum(used_mb) / len(used_mb)
        if mean_load > 0 and used_mb[home] > self.spillover_factor * mean_load:
            self.spillovers += 1
            return min(range(self.num_servers), key=lambda i: used_mb[i])
        return home

    def route_traced(
        self,
        function_name: str,
        used_mb: Sequence[float],
        now_s: float,
        tracer,
    ) -> int:
        # Annotate the routing event with whether the load escape
        # hatch fired — the cluster-level pressure signal.
        before = self.spillovers
        server = self.route(function_name, used_mb)
        tracer.emit(
            "invocation_routed",
            now_s,
            function=function_name,
            server=server,
            balancer=self.name,
            spilled=self.spillovers > before,
        )
        return server


class LeastLoadedBalancer(LoadBalancer):
    """Send each request to the server using the least memory."""

    name = "least-loaded"

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        if len(used_mb) != self.num_servers:
            raise ValueError(
                f"expected {self.num_servers} load entries, got {len(used_mb)}"
            )
        return min(range(self.num_servers), key=lambda i: used_mb[i])


_BALANCERS = {
    "random": RandomBalancer,
    "affinity-spillover": AffinityWithSpilloverBalancer,
    "round-robin": RoundRobinBalancer,
    "hash-affinity": HashAffinityBalancer,
    "least-loaded": LeastLoadedBalancer,
}


def create_balancer(name: str, num_servers: int, **kwargs) -> LoadBalancer:
    """Instantiate a balancer by name.

    >>> create_balancer("round-robin", 4).name
    'round-robin'
    """
    try:
        factory = _BALANCERS[name]
    except KeyError:
        raise ValueError(
            f"unknown balancer {name!r}; available: {sorted(_BALANCERS)}"
        ) from None
    return factory(num_servers=num_servers, **kwargs)

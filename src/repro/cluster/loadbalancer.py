"""Cluster-level load-balancing policies (Section 9's discussion).

The paper deliberately evaluates at single-server scope but discusses
how the cluster's load balancer determines each server's function mix
and therefore its keep-alive effectiveness: "a stateful load-balancing
policy which runs a function on the same subset of servers will result
in better temporal locality ... randomized load-balancing is simpler
to implement and scale, but offers worse temporal locality".

This module implements that spectrum so the claim can be measured:

* :class:`RandomBalancer` — uniform random server per request.
* :class:`RoundRobinBalancer` — rotate servers per request.
* :class:`HashAffinityBalancer` — stateful: a function consistently
  hashes to ``replicas`` servers and its requests round-robin among
  only those, concentrating each function's temporal locality.
* :class:`LeastLoadedBalancer` — pick the server with the least
  memory in use (greedy packing, locality-blind).
* :class:`MinWorkerSetBalancer` — pack load onto the smallest prefix
  of servers that fits under a high watermark, leaving the rest idle
  and harvestable (the harvested-capacity literature's shape).
* :class:`JoinShortestQueueBalancer` — route to the server with the
  fewest in-flight invocations (queue-depth JSQ).

All balancers are **health-aware**: the cluster marks failed servers
down via :meth:`LoadBalancer.mark_down` and every policy then routes
around them (affinity sets are rerouted along the hash ring) until
:meth:`LoadBalancer.mark_up` restores them. With no server down, each
policy's routing — including any internal RNG draw sequence — is
byte-identical to its pre-health-awareness behaviour. When every
server is down, ``route`` raises :class:`NoHealthyServers` and the
cluster simulator sheds the invocation as ``unavailable``.

Servers can also be **draining**: a spot eviction notice arrived and
the server will disappear shortly (:meth:`LoadBalancer.mark_draining`).
A draining server receives no *new* placements — every policy excludes
it exactly as if it were down — but unlike a down server it is still
alive: in-flight invocations and their retries run on it to completion
(retries are scheduled inside the member simulator that owns them and
are never re-routed through the balancer, so exclusion here cannot
strand them). ``mark_up`` clears both states, so a replacement server
re-enters routing cleanly.
"""

from __future__ import annotations

import abc
import hashlib
import random
from typing import Dict, List, Sequence, Set

__all__ = [
    "LoadBalancer",
    "NoHealthyServers",
    "RandomBalancer",
    "RoundRobinBalancer",
    "HashAffinityBalancer",
    "AffinityWithSpilloverBalancer",
    "LeastLoadedBalancer",
    "MinWorkerSetBalancer",
    "JoinShortestQueueBalancer",
    "create_balancer",
]


class NoHealthyServers(RuntimeError):
    """Every server is marked down; no routing decision is possible."""


class LoadBalancer(abc.ABC):
    """Routes each function invocation to a server index."""

    name: str = "base"
    #: What ``used_mb`` should carry for this policy: "memory" (the
    #: default, each server's pool usage in MB) or "queue" (in-flight
    #: invocation counts). The cluster simulator builds the matching
    #: load vector before calling :meth:`route`.
    load_signal: str = "memory"

    def __init__(self, num_servers: int) -> None:
        if num_servers <= 0:
            raise ValueError(f"need at least one server, got {num_servers}")
        self.num_servers = num_servers
        #: Servers currently failed (health-aware routing skips them).
        self._down: Set[int] = set()
        #: Servers under an eviction notice: excluded from *new*
        #: placements, but still alive and finishing their own work.
        self._draining: Set[int] = set()

    # -- health tracking ------------------------------------------------

    def mark_down(self, server: int) -> None:
        """Exclude ``server`` from routing until :meth:`mark_up`."""
        if not 0 <= server < self.num_servers:
            raise ValueError(f"server {server} out of range")
        self._down.add(server)

    def mark_up(self, server: int) -> None:
        """Restore a recovered server to the routing set. Idempotent.

        Clears the draining flag too: a restored server is a fresh
        replacement, not the evicted instance limping back.
        """
        self._down.discard(server)
        self._draining.discard(server)

    def mark_draining(self, server: int) -> None:
        """Stop placing *new* work on ``server`` (eviction notice).

        The server stays alive until the eviction lands: invocations
        already placed there — including their retries, which the
        owning member simulator schedules internally — run to
        completion. Only fresh routing decisions skip it.
        """
        if not 0 <= server < self.num_servers:
            raise ValueError(f"server {server} out of range")
        self._draining.add(server)

    def clear_draining(self, server: int) -> None:
        """Withdraw an eviction notice. Idempotent."""
        self._draining.discard(server)

    @property
    def down_servers(self) -> Set[int]:
        """A copy of the currently-down server set."""
        return set(self._down)

    @property
    def draining_servers(self) -> Set[int]:
        """A copy of the currently-draining server set."""
        return set(self._draining)

    def _available(self, server: int) -> bool:
        """Whether ``server`` may receive new placements."""
        return server not in self._down and server not in self._draining

    def _healthy(self) -> List[int]:
        """Ascending indices of placeable servers; raises if none.

        Draining servers count as unplaceable here: they are alive,
        but new work must not land on a machine about to vanish.
        """
        if not self._down and not self._draining:
            return list(range(self.num_servers))
        healthy = [
            i for i in range(self.num_servers) if self._available(i)
        ]
        if not healthy:
            raise NoHealthyServers(
                f"all {self.num_servers} servers are down or draining"
            )
        return healthy

    @abc.abstractmethod
    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        """Pick a healthy server for one invocation.

        ``used_mb`` is the current memory usage of every server, for
        load-aware policies. Raises :class:`NoHealthyServers` when all
        servers are marked down.
        """

    def route_traced(
        self,
        function_name: str,
        used_mb: Sequence[float],
        now_s: float,
        tracer,
    ) -> int:
        """Route one invocation and emit an ``invocation_routed`` event.

        The observability entry point used by
        :class:`~repro.cluster.simulation.ClusterSimulator` when
        tracing is enabled; subclasses with richer routing state
        (spillover, rebalancing) override this to annotate the event.
        """
        server = self.route(function_name, used_mb)
        tracer.emit(
            "invocation_routed",
            now_s,
            function=function_name,
            server=server,
            balancer=self.name,
        )
        return server

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_servers={self.num_servers})"


class RandomBalancer(LoadBalancer):
    """Uniform random routing — maximal simplicity, minimal locality."""

    name = "random"

    def __init__(self, num_servers: int, seed: int = 0) -> None:
        super().__init__(num_servers)
        self._rng = random.Random(seed)

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        # Fast path preserves the exact draw sequence of the
        # pre-health-awareness balancer when every server is placeable.
        if not self._down and not self._draining:
            return self._rng.randrange(self.num_servers)
        healthy = self._healthy()
        return healthy[self._rng.randrange(len(healthy))]


class RoundRobinBalancer(LoadBalancer):
    """Rotate through servers regardless of the function."""

    name = "round-robin"

    def __init__(self, num_servers: int) -> None:
        super().__init__(num_servers)
        self._next = 0

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        if len(self._down) + len(self._draining) >= self.num_servers:
            # Sets are disjoint-checked the cheap way: walking the ring
            # below would loop forever only if *no* server is
            # available, which _healthy() detects exactly.
            self._healthy()
        server = self._next
        while not self._available(server):
            server = (server + 1) % self.num_servers
        self._next = (server + 1) % self.num_servers
        return server


class HashAffinityBalancer(LoadBalancer):
    """Stateful affinity: each function owns a small server subset.

    A function's requests consistently go to ``replicas`` servers
    chosen by hashing its name, rotating among them for concurrency.
    Keep-alive caches then see each function on few servers — the
    high-locality end of the paper's spectrum.
    """

    name = "hash-affinity"

    def __init__(self, num_servers: int, replicas: int = 1, seed: int = 0) -> None:
        super().__init__(num_servers)
        if not 1 <= replicas <= num_servers:
            raise ValueError(
                f"replicas must be in [1, {num_servers}], got {replicas}"
            )
        self.replicas = replicas
        self._seed = seed
        self._rotation: Dict[str, int] = {}

    def _servers_for(self, function_name: str) -> List[int]:
        digest = hashlib.blake2b(
            function_name.encode("utf-8"),
            digest_size=8,
            salt=self._seed.to_bytes(8, "little"),
        ).digest()
        start = int.from_bytes(digest, "little") % self.num_servers
        return [(start + i) % self.num_servers for i in range(self.replicas)]

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        servers = self._servers_for(function_name)
        turn = self._rotation.get(function_name, 0)
        self._rotation[function_name] = (turn + 1) % len(servers)
        chosen = servers[turn % len(servers)]
        if self._available(chosen):
            return chosen
        # Rerouted affinity: try the rest of the affinity set in
        # rotation order, then walk the hash ring past it — the
        # function's traffic lands on the deterministic "next" servers
        # until its home set recovers.
        for offset in range(1, len(servers)):
            candidate = servers[(turn + offset) % len(servers)]
            if self._available(candidate):
                return candidate
        ring_next = (servers[0] + self.replicas) % self.num_servers
        for offset in range(self.num_servers - self.replicas):
            candidate = (ring_next + offset) % self.num_servers
            if self._available(candidate):
                return candidate
        raise NoHealthyServers(
            f"all {self.num_servers} servers are down or draining"
        )


class AffinityWithSpilloverBalancer(HashAffinityBalancer):
    """Stateful affinity with a load-aware escape hatch.

    Pure affinity concentrates locality but can hot-spot a server.
    This variant keeps each function's home-server routing until the
    home servers' memory usage crosses a spillover fraction of the
    cluster mean, then temporarily diverts to the least-loaded server
    — trading a little locality for bounded imbalance. (The follow-on
    literature on FaaS load balancing converged on exactly this
    structure: consistent hashing with bounded loads.)
    """

    name = "affinity-spillover"

    def __init__(
        self,
        num_servers: int,
        replicas: int = 1,
        seed: int = 0,
        spillover_factor: float = 1.5,
    ) -> None:
        super().__init__(num_servers, replicas=replicas, seed=seed)
        if spillover_factor <= 1.0:
            raise ValueError(
                f"spillover factor must exceed 1, got {spillover_factor}"
            )
        self.spillover_factor = spillover_factor
        self.spillovers = 0

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        if len(used_mb) != self.num_servers:
            raise ValueError(
                f"expected {self.num_servers} load entries, got {len(used_mb)}"
            )
        home = super().route(function_name, used_mb)
        # Load statistics consider healthy servers only: a dead
        # server's zero usage must not drag the mean down or attract
        # spillover traffic.
        healthy = self._healthy()
        mean_load = sum(used_mb[i] for i in healthy) / len(healthy)
        if mean_load > 0 and used_mb[home] > self.spillover_factor * mean_load:
            self.spillovers += 1
            return min(healthy, key=lambda i: used_mb[i])
        return home

    def route_traced(
        self,
        function_name: str,
        used_mb: Sequence[float],
        now_s: float,
        tracer,
    ) -> int:
        # Annotate the routing event with whether the load escape
        # hatch fired — the cluster-level pressure signal.
        before = self.spillovers
        server = self.route(function_name, used_mb)
        tracer.emit(
            "invocation_routed",
            now_s,
            function=function_name,
            server=server,
            balancer=self.name,
            spilled=self.spillovers > before,
        )
        return server


class LeastLoadedBalancer(LoadBalancer):
    """Send each request to the server using the least memory.

    Tie-breaking is part of the contract: among equally-loaded healthy
    servers the **lowest index wins**, always. This keeps routing a
    pure function of the load vector (and the down set), so replayed
    runs and cross-process sweeps make identical decisions — ties are
    common (e.g. every server empty at t=0) and any unspecified order
    here would silently fan out into divergent cluster states.
    """

    name = "least-loaded"

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        if len(used_mb) != self.num_servers:
            raise ValueError(
                f"expected {self.num_servers} load entries, got {len(used_mb)}"
            )
        best = -1
        for i in range(self.num_servers):
            if not self._available(i):
                continue
            # Strict < : the first (lowest-index) minimum is kept.
            if best < 0 or used_mb[i] < used_mb[best]:
                best = i
        if best < 0:
            raise NoHealthyServers(
                f"all {self.num_servers} servers are down or draining"
            )
        return best


class MinWorkerSetBalancer(LoadBalancer):
    """Pack load onto the smallest prefix of servers that fits.

    The routing shape of harvested/spot serverless platforms: instead
    of spreading load, concentrate it on the lowest-index available
    servers so the remainder stay idle — idle servers are exactly the
    capacity the infrastructure can harvest or reclaim with the least
    disruption. Each request goes to the lowest-index available server
    whose memory usage is still under ``high_watermark`` of its
    capacity; only when every server in the current working set is
    saturated does the set grow by one. If *all* available servers are
    over the watermark, the least-loaded one absorbs the overflow.

    Stateless and a pure function of the load vector plus the
    down/draining sets, so replays are deterministic. As servers drain
    or fail, the "prefix" is simply the lowest available indices —
    traffic slides off a draining server onto the next one without any
    rebalancing machinery.
    """

    name = "min-worker-set"

    def __init__(
        self,
        num_servers: int,
        server_capacity_mb: float = 8192.0,
        high_watermark: float = 0.85,
    ) -> None:
        super().__init__(num_servers)
        if server_capacity_mb <= 0:
            raise ValueError(
                f"server capacity must be > 0, got {server_capacity_mb}"
            )
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError(
                f"high watermark must be in (0, 1], got {high_watermark}"
            )
        self.server_capacity_mb = server_capacity_mb
        self.high_watermark = high_watermark

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        if len(used_mb) != self.num_servers:
            raise ValueError(
                f"expected {self.num_servers} load entries, got {len(used_mb)}"
            )
        threshold = self.high_watermark * self.server_capacity_mb
        best = -1
        for i in range(self.num_servers):
            if not self._available(i):
                continue
            if used_mb[i] < threshold:
                return i
            # Track the least-loaded fallback (first minimum wins) in
            # the same pass, for the everyone-saturated case.
            if best < 0 or used_mb[i] < used_mb[best]:
                best = i
        if best < 0:
            raise NoHealthyServers(
                f"all {self.num_servers} servers are down or draining"
            )
        return best


class JoinShortestQueueBalancer(LoadBalancer):
    """Route each request to the server with the fewest in-flight
    invocations.

    Classic JSQ, on queue depth rather than memory: the cluster
    simulator sees ``load_signal == "queue"`` and supplies in-flight
    invocation counts instead of pool usage. Among equally-short
    queues the lowest index wins (same determinism contract as
    :class:`LeastLoadedBalancer`).
    """

    name = "join-shortest-queue"
    load_signal = "queue"

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        if len(used_mb) != self.num_servers:
            raise ValueError(
                f"expected {self.num_servers} load entries, got {len(used_mb)}"
            )
        best = -1
        for i in range(self.num_servers):
            if not self._available(i):
                continue
            if best < 0 or used_mb[i] < used_mb[best]:
                best = i
        if best < 0:
            raise NoHealthyServers(
                f"all {self.num_servers} servers are down or draining"
            )
        return best


_BALANCERS = {
    "random": RandomBalancer,
    "affinity-spillover": AffinityWithSpilloverBalancer,
    "round-robin": RoundRobinBalancer,
    "hash-affinity": HashAffinityBalancer,
    "least-loaded": LeastLoadedBalancer,
    "min-worker-set": MinWorkerSetBalancer,
    "join-shortest-queue": JoinShortestQueueBalancer,
}


def create_balancer(name: str, num_servers: int, **kwargs) -> LoadBalancer:
    """Instantiate a balancer by name.

    >>> create_balancer("round-robin", 4).name
    'round-robin'
    """
    try:
        factory = _BALANCERS[name]
    except KeyError:
        raise ValueError(
            f"unknown balancer {name!r}; available: {sorted(_BALANCERS)}"
        ) from None
    return factory(num_servers=num_servers, **kwargs)

"""Cluster-level load-balancing policies (Section 9's discussion).

The paper deliberately evaluates at single-server scope but discusses
how the cluster's load balancer determines each server's function mix
and therefore its keep-alive effectiveness: "a stateful load-balancing
policy which runs a function on the same subset of servers will result
in better temporal locality ... randomized load-balancing is simpler
to implement and scale, but offers worse temporal locality".

This module implements that spectrum so the claim can be measured:

* :class:`RandomBalancer` — uniform random server per request.
* :class:`RoundRobinBalancer` — rotate servers per request.
* :class:`HashAffinityBalancer` — stateful: a function consistently
  hashes to ``replicas`` servers and its requests round-robin among
  only those, concentrating each function's temporal locality.
* :class:`LeastLoadedBalancer` — pick the server with the least
  memory in use (greedy packing, locality-blind).

All balancers are **health-aware**: the cluster marks failed servers
down via :meth:`LoadBalancer.mark_down` and every policy then routes
around them (affinity sets are rerouted along the hash ring) until
:meth:`LoadBalancer.mark_up` restores them. With no server down, each
policy's routing — including any internal RNG draw sequence — is
byte-identical to its pre-health-awareness behaviour. When every
server is down, ``route`` raises :class:`NoHealthyServers` and the
cluster simulator sheds the invocation as ``unavailable``.
"""

from __future__ import annotations

import abc
import hashlib
import random
from typing import Dict, List, Sequence, Set

__all__ = [
    "LoadBalancer",
    "NoHealthyServers",
    "RandomBalancer",
    "RoundRobinBalancer",
    "HashAffinityBalancer",
    "AffinityWithSpilloverBalancer",
    "LeastLoadedBalancer",
    "create_balancer",
]


class NoHealthyServers(RuntimeError):
    """Every server is marked down; no routing decision is possible."""


class LoadBalancer(abc.ABC):
    """Routes each function invocation to a server index."""

    name: str = "base"

    def __init__(self, num_servers: int) -> None:
        if num_servers <= 0:
            raise ValueError(f"need at least one server, got {num_servers}")
        self.num_servers = num_servers
        #: Servers currently failed (health-aware routing skips them).
        self._down: Set[int] = set()

    # -- health tracking ------------------------------------------------

    def mark_down(self, server: int) -> None:
        """Exclude ``server`` from routing until :meth:`mark_up`."""
        if not 0 <= server < self.num_servers:
            raise ValueError(f"server {server} out of range")
        self._down.add(server)

    def mark_up(self, server: int) -> None:
        """Restore a recovered server to the routing set. Idempotent."""
        self._down.discard(server)

    @property
    def down_servers(self) -> Set[int]:
        """A copy of the currently-down server set."""
        return set(self._down)

    def _healthy(self) -> List[int]:
        """Ascending indices of healthy servers; raises if none."""
        if not self._down:
            return list(range(self.num_servers))
        healthy = [
            i for i in range(self.num_servers) if i not in self._down
        ]
        if not healthy:
            raise NoHealthyServers(
                f"all {self.num_servers} servers are down"
            )
        return healthy

    @abc.abstractmethod
    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        """Pick a healthy server for one invocation.

        ``used_mb`` is the current memory usage of every server, for
        load-aware policies. Raises :class:`NoHealthyServers` when all
        servers are marked down.
        """

    def route_traced(
        self,
        function_name: str,
        used_mb: Sequence[float],
        now_s: float,
        tracer,
    ) -> int:
        """Route one invocation and emit an ``invocation_routed`` event.

        The observability entry point used by
        :class:`~repro.cluster.simulation.ClusterSimulator` when
        tracing is enabled; subclasses with richer routing state
        (spillover, rebalancing) override this to annotate the event.
        """
        server = self.route(function_name, used_mb)
        tracer.emit(
            "invocation_routed",
            now_s,
            function=function_name,
            server=server,
            balancer=self.name,
        )
        return server

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_servers={self.num_servers})"


class RandomBalancer(LoadBalancer):
    """Uniform random routing — maximal simplicity, minimal locality."""

    name = "random"

    def __init__(self, num_servers: int, seed: int = 0) -> None:
        super().__init__(num_servers)
        self._rng = random.Random(seed)

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        # Fast path preserves the exact draw sequence of the
        # pre-health-awareness balancer when no server is down.
        if not self._down:
            return self._rng.randrange(self.num_servers)
        healthy = self._healthy()
        return healthy[self._rng.randrange(len(healthy))]


class RoundRobinBalancer(LoadBalancer):
    """Rotate through servers regardless of the function."""

    name = "round-robin"

    def __init__(self, num_servers: int) -> None:
        super().__init__(num_servers)
        self._next = 0

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        if self._down and len(self._down) >= self.num_servers:
            raise NoHealthyServers(f"all {self.num_servers} servers are down")
        server = self._next
        while server in self._down:
            server = (server + 1) % self.num_servers
        self._next = (server + 1) % self.num_servers
        return server


class HashAffinityBalancer(LoadBalancer):
    """Stateful affinity: each function owns a small server subset.

    A function's requests consistently go to ``replicas`` servers
    chosen by hashing its name, rotating among them for concurrency.
    Keep-alive caches then see each function on few servers — the
    high-locality end of the paper's spectrum.
    """

    name = "hash-affinity"

    def __init__(self, num_servers: int, replicas: int = 1, seed: int = 0) -> None:
        super().__init__(num_servers)
        if not 1 <= replicas <= num_servers:
            raise ValueError(
                f"replicas must be in [1, {num_servers}], got {replicas}"
            )
        self.replicas = replicas
        self._seed = seed
        self._rotation: Dict[str, int] = {}

    def _servers_for(self, function_name: str) -> List[int]:
        digest = hashlib.blake2b(
            function_name.encode("utf-8"),
            digest_size=8,
            salt=self._seed.to_bytes(8, "little"),
        ).digest()
        start = int.from_bytes(digest, "little") % self.num_servers
        return [(start + i) % self.num_servers for i in range(self.replicas)]

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        servers = self._servers_for(function_name)
        turn = self._rotation.get(function_name, 0)
        self._rotation[function_name] = (turn + 1) % len(servers)
        chosen = servers[turn % len(servers)]
        if chosen not in self._down:
            return chosen
        # Rerouted affinity: try the rest of the affinity set in
        # rotation order, then walk the hash ring past it — the
        # function's traffic lands on the deterministic "next" servers
        # until its home set recovers.
        for offset in range(1, len(servers)):
            candidate = servers[(turn + offset) % len(servers)]
            if candidate not in self._down:
                return candidate
        ring_next = (servers[0] + self.replicas) % self.num_servers
        for offset in range(self.num_servers - self.replicas):
            candidate = (ring_next + offset) % self.num_servers
            if candidate not in self._down:
                return candidate
        raise NoHealthyServers(f"all {self.num_servers} servers are down")


class AffinityWithSpilloverBalancer(HashAffinityBalancer):
    """Stateful affinity with a load-aware escape hatch.

    Pure affinity concentrates locality but can hot-spot a server.
    This variant keeps each function's home-server routing until the
    home servers' memory usage crosses a spillover fraction of the
    cluster mean, then temporarily diverts to the least-loaded server
    — trading a little locality for bounded imbalance. (The follow-on
    literature on FaaS load balancing converged on exactly this
    structure: consistent hashing with bounded loads.)
    """

    name = "affinity-spillover"

    def __init__(
        self,
        num_servers: int,
        replicas: int = 1,
        seed: int = 0,
        spillover_factor: float = 1.5,
    ) -> None:
        super().__init__(num_servers, replicas=replicas, seed=seed)
        if spillover_factor <= 1.0:
            raise ValueError(
                f"spillover factor must exceed 1, got {spillover_factor}"
            )
        self.spillover_factor = spillover_factor
        self.spillovers = 0

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        if len(used_mb) != self.num_servers:
            raise ValueError(
                f"expected {self.num_servers} load entries, got {len(used_mb)}"
            )
        home = super().route(function_name, used_mb)
        # Load statistics consider healthy servers only: a dead
        # server's zero usage must not drag the mean down or attract
        # spillover traffic.
        healthy = self._healthy()
        mean_load = sum(used_mb[i] for i in healthy) / len(healthy)
        if mean_load > 0 and used_mb[home] > self.spillover_factor * mean_load:
            self.spillovers += 1
            return min(healthy, key=lambda i: used_mb[i])
        return home

    def route_traced(
        self,
        function_name: str,
        used_mb: Sequence[float],
        now_s: float,
        tracer,
    ) -> int:
        # Annotate the routing event with whether the load escape
        # hatch fired — the cluster-level pressure signal.
        before = self.spillovers
        server = self.route(function_name, used_mb)
        tracer.emit(
            "invocation_routed",
            now_s,
            function=function_name,
            server=server,
            balancer=self.name,
            spilled=self.spillovers > before,
        )
        return server


class LeastLoadedBalancer(LoadBalancer):
    """Send each request to the server using the least memory.

    Tie-breaking is part of the contract: among equally-loaded healthy
    servers the **lowest index wins**, always. This keeps routing a
    pure function of the load vector (and the down set), so replayed
    runs and cross-process sweeps make identical decisions — ties are
    common (e.g. every server empty at t=0) and any unspecified order
    here would silently fan out into divergent cluster states.
    """

    name = "least-loaded"

    def route(self, function_name: str, used_mb: Sequence[float]) -> int:
        if len(used_mb) != self.num_servers:
            raise ValueError(
                f"expected {self.num_servers} load entries, got {len(used_mb)}"
            )
        best = -1
        for i in range(self.num_servers):
            if i in self._down:
                continue
            # Strict < : the first (lowest-index) minimum is kept.
            if best < 0 or used_mb[i] < used_mb[best]:
                best = i
        if best < 0:
            raise NoHealthyServers(f"all {self.num_servers} servers are down")
        return best


_BALANCERS = {
    "random": RandomBalancer,
    "affinity-spillover": AffinityWithSpilloverBalancer,
    "round-robin": RoundRobinBalancer,
    "hash-affinity": HashAffinityBalancer,
    "least-loaded": LeastLoadedBalancer,
}


def create_balancer(name: str, num_servers: int, **kwargs) -> LoadBalancer:
    """Instantiate a balancer by name.

    >>> create_balancer("round-robin", 4).name
    'round-robin'
    """
    try:
        factory = _BALANCERS[name]
    except KeyError:
        raise ValueError(
            f"unknown balancer {name!r}; available: {sorted(_BALANCERS)}"
        ) from None
    return factory(num_servers=num_servers, **kwargs)

"""Cluster keep-alive simulation: N servers behind a load balancer.

Measures the Section 9 claim end to end: route a workload across a
cluster of keep-alive servers (each an independent
:class:`~repro.sim.scheduler.KeepAliveSimulator`) under different
load-balancing policies and compare the aggregate cold-start and
execution-time metrics. Stateful (affinity) routing concentrates each
function's temporal locality on few servers and should beat random
routing at equal total memory.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.cluster.loadbalancer import (
    LoadBalancer,
    NoHealthyServers,
    create_balancer,
)
from repro.core.policies.base import KeepAlivePolicy, create_policy
from repro.faults import FaultModel, FaultSpec
from repro.obs.tracer import Tracer, active_tracer
from repro.sim.metrics import SimulationMetrics
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Trace

__all__ = ["ClusterResult", "ClusterSimulator"]


def _server_level_spec(spec: Optional[FaultSpec]) -> Optional[FaultSpec]:
    """The per-server spec a cluster hands to its member simulators.

    Whole-server outages — and likewise harvest/spot capacity events,
    which must change the balancer's routing view and the server's
    pool in lockstep — are owned by the *cluster*, so the server-level
    copy keeps only the invocation-level rates and retry knobs. Returns
    ``None`` when nothing remains enabled.
    """
    if spec is None or not spec.enabled:
        return None
    stripped = dataclasses.replace(
        spec,
        server_mtbf_s=0.0,
        server_downtimes=(),
        capacity_steps=(),
        harvest_interval_s=0.0,
        spot_mtbf_s=0.0,
    )
    return stripped if stripped.enabled else None


@dataclass
class ClusterResult:
    """Aggregate and per-server outcomes of one cluster run."""

    balancer_name: str
    policy_name: str
    per_server: List[SimulationMetrics] = field(default_factory=list)
    #: invocations routed to each server
    routed: List[int] = field(default_factory=list)
    #: Invocations shed *at the cluster level* because no healthy
    #: server existed when they arrived. These belong to no server, so
    #: they appear here rather than in any per-server metrics.
    shed_unavailable: int = 0

    @property
    def warm_starts(self) -> int:
        return sum(m.warm_starts for m in self.per_server)

    @property
    def cold_starts(self) -> int:
        return sum(m.cold_starts for m in self.per_server)

    @property
    def dropped(self) -> int:
        return sum(m.dropped for m in self.per_server)

    @property
    def served(self) -> int:
        return self.warm_starts + self.cold_starts

    @property
    def faults_injected(self) -> int:
        return sum(m.faults_injected for m in self.per_server)

    @property
    def retries(self) -> int:
        return sum(m.retries for m in self.per_server)

    @property
    def sheds(self) -> int:
        """All shed invocations: per-server sheds plus cluster-level
        ``shed_unavailable`` ones."""
        return sum(m.sheds for m in self.per_server) + self.shed_unavailable

    @property
    def server_downs(self) -> int:
        return sum(m.server_downs for m in self.per_server)

    @property
    def cold_start_pct(self) -> float:
        return 100.0 * self.cold_starts / self.served if self.served else 0.0

    @property
    def exec_time_increase_pct(self) -> float:
        ideal = sum(m.ideal_exec_time_s for m in self.per_server)
        actual = sum(m.actual_exec_time_s for m in self.per_server)
        if ideal <= 0:
            return 0.0
        return 100.0 * (actual - ideal) / ideal

    def load_imbalance(self) -> float:
        """Max-over-mean of routed request counts (1.0 = perfect)."""
        if not self.routed or sum(self.routed) == 0:
            return 1.0
        mean = sum(self.routed) / len(self.routed)
        return max(self.routed) / mean if mean else 1.0


class ClusterSimulator:
    """Replay one trace across a cluster of keep-alive servers."""

    def __init__(
        self,
        trace: Trace,
        balancer: str | LoadBalancer,
        num_servers: int = 4,
        server_memory_mb: float = 8192.0,
        policy: str = "GD",
        balancer_kwargs: Dict | None = None,
        tracer: Optional[Tracer] = None,
        fault_spec: Optional[FaultSpec] = None,
    ) -> None:
        if isinstance(balancer, str):
            kwargs = dict(balancer_kwargs or {})
            if balancer == "min-worker-set":
                # The packing watermark is a fraction of *this*
                # cluster's server size unless the caller overrode it.
                kwargs.setdefault("server_capacity_mb", server_memory_mb)
            balancer = create_balancer(balancer, num_servers, **kwargs)
        elif balancer.num_servers != num_servers:
            raise ValueError(
                "balancer server count does not match the cluster size"
            )
        self.trace = trace
        self.balancer = balancer
        self.policy_name = policy.upper()
        # Each server's lifecycle events carry its index; routing
        # decisions are emitted by the balancer itself.
        self._tracer = active_tracer(tracer)
        # Whole-server outages are driven here — the balancer's health
        # view and the server's state must change together — while
        # invocation-level faults run inside each server simulator.
        self._fault_spec = (
            fault_spec if fault_spec is not None and fault_spec.enabled
            else None
        )
        self._server_schedule: Deque[Tuple[float, int, str]] = deque()
        # Harvest/spot capacity events, merged across servers:
        # (time_s, server, kind, value) with kind one of "capacity",
        # "notice", "evict", "restore".
        self._capacity_schedule: Deque[Tuple[float, int, str, float]] = (
            deque()
        )
        server_spec = _server_level_spec(self._fault_spec)
        if self._fault_spec is not None:
            model = FaultModel(self._fault_spec)
            self._server_schedule = deque(
                model.server_schedule(num_servers, trace.duration_s)
            )
            self._capacity_schedule = deque(
                model.capacity_schedule(num_servers, trace.duration_s)
            )
        self.servers = [
            KeepAliveSimulator(
                trace,
                create_policy(policy),
                server_memory_mb,
                tracer=(
                    self._tracer.bind(server=i)
                    if self._tracer is not None
                    else None
                ),
                fault_spec=server_spec,
                server_index=i,
            )
            for i in range(num_servers)
        ]

    def _apply_outages(self, now_s: float) -> None:
        """Apply every scheduled down/up transition and capacity event
        up to ``now_s``, chronologically merged across both streams, to
        both the affected server and the balancer's routing view. At
        equal times outage transitions win (matching the single-server
        simulator's transitions-then-capacity tie order)."""
        outages = self._server_schedule
        capacity = self._capacity_schedule
        while True:
            out_due = outages[0][0] if outages else float("inf")
            cap_due = capacity[0][0] if capacity else float("inf")
            if min(out_due, cap_due) > now_s:
                return
            if out_due <= cap_due:
                at_s, index, kind = outages.popleft()
                if kind == "down":
                    self.servers[index].fail_server(at_s)
                    self.balancer.mark_down(index)
                else:
                    self.servers[index].recover_server(at_s)
                    self.balancer.mark_up(index)
            else:
                at_s, index, kind, value = capacity.popleft()
                self._apply_capacity_event(at_s, index, kind, value)

    def _apply_capacity_event(
        self, at_s: float, index: int, kind: str, value: float
    ) -> None:
        """Apply one harvest/spot event to a server and the balancer.

        * ``capacity`` — resize the server's pool (graceful deflation
          on shrink); routing is unaffected, the balancer's load signal
          sees the smaller pool on the next decision.
        * ``notice`` — pre-drain: the server stops receiving new
          placements (it finishes its own in-flight work) while it
          keeps serving until the eviction lands.
        * ``evict`` — the spot instance disappears: fail the server
          and route around it.
        * ``restore`` — a *replacement* server joins: cold pools, full
          nominal capacity, back in the routing set.
        """
        server = self.servers[index]
        if kind == "capacity":
            server.set_harvest_capacity(at_s, value)
        elif kind == "notice":
            self.balancer.mark_draining(index)
            server.notice_eviction(at_s, evict_at_s=value)
        elif kind == "evict":
            server.fail_server(at_s)
            self.balancer.mark_down(index)
        else:  # "restore"
            server.recover_server(at_s)
            self.balancer.mark_up(index)  # clears draining too
            server.set_harvest_capacity(at_s, 1.0)

    def _shed_unavailable(
        self, result: ClusterResult, function_name: str, now_s: float
    ) -> None:
        result.shed_unavailable += 1
        if self._tracer is not None:
            self._tracer.emit(
                "invocation_shed",
                now_s,
                function=function_name,
                reason="unavailable",
                attempts=1,
            )

    def run(self) -> ClusterResult:
        functions = self.trace.functions
        routed = [0] * len(self.servers)
        tracer = self._tracer
        result = ClusterResult(
            balancer_name=self.balancer.name,
            policy_name=self.policy_name,
            per_server=[server.metrics for server in self.servers],
            routed=routed,
        )
        queue_signal = self.balancer.load_signal == "queue"
        for invocation in self.trace:
            if self._server_schedule or self._capacity_schedule:
                self._apply_outages(invocation.time_s)
            if queue_signal:
                used = [float(server.outstanding) for server in self.servers]
            else:
                used = [server.pool.used_mb for server in self.servers]
            try:
                if tracer is None:
                    index = self.balancer.route(
                        invocation.function_name, used
                    )
                else:
                    index = self.balancer.route_traced(
                        invocation.function_name,
                        used,
                        invocation.time_s,
                        tracer,
                    )
            except NoHealthyServers:
                self._shed_unavailable(
                    result, invocation.function_name, invocation.time_s
                )
                continue
            if not 0 <= index < len(self.servers):
                raise ValueError(
                    f"balancer routed to invalid server {index}"
                )
            routed[index] += 1
            self.servers[index].process_invocation(
                functions[invocation.function_name], invocation.time_s
            )
        for server in self.servers:
            server.drain_retries()
        return result

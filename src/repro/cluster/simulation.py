"""Cluster keep-alive simulation: N servers behind a load balancer.

Measures the Section 9 claim end to end: route a workload across a
cluster of keep-alive servers (each an independent
:class:`~repro.sim.scheduler.KeepAliveSimulator`) under different
load-balancing policies and compare the aggregate cold-start and
execution-time metrics. Stateful (affinity) routing concentrates each
function's temporal locality on few servers and should beat random
routing at equal total memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.loadbalancer import LoadBalancer, create_balancer
from repro.core.policies.base import KeepAlivePolicy, create_policy
from repro.obs.tracer import Tracer, active_tracer
from repro.sim.metrics import SimulationMetrics
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Trace

__all__ = ["ClusterResult", "ClusterSimulator"]


@dataclass
class ClusterResult:
    """Aggregate and per-server outcomes of one cluster run."""

    balancer_name: str
    policy_name: str
    per_server: List[SimulationMetrics] = field(default_factory=list)
    #: invocations routed to each server
    routed: List[int] = field(default_factory=list)

    @property
    def warm_starts(self) -> int:
        return sum(m.warm_starts for m in self.per_server)

    @property
    def cold_starts(self) -> int:
        return sum(m.cold_starts for m in self.per_server)

    @property
    def dropped(self) -> int:
        return sum(m.dropped for m in self.per_server)

    @property
    def served(self) -> int:
        return self.warm_starts + self.cold_starts

    @property
    def cold_start_pct(self) -> float:
        return 100.0 * self.cold_starts / self.served if self.served else 0.0

    @property
    def exec_time_increase_pct(self) -> float:
        ideal = sum(m.ideal_exec_time_s for m in self.per_server)
        actual = sum(m.actual_exec_time_s for m in self.per_server)
        if ideal <= 0:
            return 0.0
        return 100.0 * (actual - ideal) / ideal

    def load_imbalance(self) -> float:
        """Max-over-mean of routed request counts (1.0 = perfect)."""
        if not self.routed or sum(self.routed) == 0:
            return 1.0
        mean = sum(self.routed) / len(self.routed)
        return max(self.routed) / mean if mean else 1.0


class ClusterSimulator:
    """Replay one trace across a cluster of keep-alive servers."""

    def __init__(
        self,
        trace: Trace,
        balancer: str | LoadBalancer,
        num_servers: int = 4,
        server_memory_mb: float = 8192.0,
        policy: str = "GD",
        balancer_kwargs: Dict | None = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if isinstance(balancer, str):
            balancer = create_balancer(
                balancer, num_servers, **(balancer_kwargs or {})
            )
        elif balancer.num_servers != num_servers:
            raise ValueError(
                "balancer server count does not match the cluster size"
            )
        self.trace = trace
        self.balancer = balancer
        self.policy_name = policy.upper()
        # Each server's lifecycle events carry its index; routing
        # decisions are emitted by the balancer itself.
        self._tracer = active_tracer(tracer)
        self.servers = [
            KeepAliveSimulator(
                trace,
                create_policy(policy),
                server_memory_mb,
                tracer=(
                    self._tracer.bind(server=i)
                    if self._tracer is not None
                    else None
                ),
            )
            for i in range(num_servers)
        ]

    def run(self) -> ClusterResult:
        functions = self.trace.functions
        routed = [0] * len(self.servers)
        tracer = self._tracer
        for invocation in self.trace:
            used = [server.pool.used_mb for server in self.servers]
            if tracer is None:
                index = self.balancer.route(invocation.function_name, used)
            else:
                index = self.balancer.route_traced(
                    invocation.function_name, used, invocation.time_s, tracer
                )
            if not 0 <= index < len(self.servers):
                raise ValueError(
                    f"balancer routed to invalid server {index}"
                )
            routed[index] += 1
            self.servers[index].process_invocation(
                functions[invocation.function_name], invocation.time_s
            )
        return ClusterResult(
            balancer_name=self.balancer.name,
            policy_name=self.policy_name,
            per_server=[server.metrics for server in self.servers],
            routed=routed,
        )

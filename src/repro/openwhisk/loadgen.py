"""Load-test helpers: vanilla OpenWhisk vs FaasCache comparisons.

The paper's empirical evaluation (Section 7.2, Figures 7 and 8) runs
the same workload against two systems and compares warm/cold/dropped
request counts and application latency:

* **vanilla OpenWhisk** — the 10-minute TTL keep-alive with LRU
  eviction under pressure, and
* **FaasCache** — the Greedy-Dual keep-alive with online-learned
  initialization costs and batched evictions.

These factories wire the right policy and pool settings into
:class:`~repro.openwhisk.invoker.SimulatedInvoker` so benchmarks and
examples stay one-liners.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.core.function import FunctionStatsTable
from repro.core.policies.ttl import TTLPolicy
from repro.openwhisk.containerpool import (
    DEFAULT_FREE_THRESHOLD_MB,
    OnlineGreedyDualPolicy,
)
from repro.openwhisk.invoker import InvokerConfig, InvokerResult, SimulatedInvoker
from repro.openwhisk.latency import ColdStartModel
from repro.traces.model import Trace

__all__ = [
    "openwhisk_invoker",
    "faascache_invoker",
    "LoadTestComparison",
    "compare_keepalive_systems",
]


def openwhisk_invoker(
    config: InvokerConfig,
    cold_start_model: Optional[ColdStartModel] = None,
) -> SimulatedInvoker:
    """A vanilla-OpenWhisk invoker: 10-minute TTL, LRU under pressure."""
    return SimulatedInvoker(
        config=config,
        policy=TTLPolicy(),
        cold_start_model=cold_start_model,
    )


def faascache_invoker(
    config: InvokerConfig,
    cold_start_model: Optional[ColdStartModel] = None,
    free_threshold_mb: Optional[float] = None,
) -> SimulatedInvoker:
    """A FaasCache invoker: online Greedy-Dual with batched eviction."""
    if free_threshold_mb is not None:
        config = replace(config, free_threshold_mb=free_threshold_mb)
    stats = FunctionStatsTable()
    invoker = SimulatedInvoker(
        config=config,
        policy=OnlineGreedyDualPolicy(stats),
        cold_start_model=cold_start_model,
    )
    # The policy and the pool must share one stats table so learned
    # costs feed the priorities.
    invoker.stats = stats
    invoker.pool.stats = stats
    return invoker


@dataclass
class LoadTestComparison:
    """Side-by-side results of the two systems on one workload."""

    trace_name: str
    openwhisk: InvokerResult
    faascache: InvokerResult

    @property
    def warm_start_gain(self) -> float:
        """FaasCache warm starts over OpenWhisk warm starts."""
        if self.openwhisk.warm_starts == 0:
            return float("inf") if self.faascache.warm_starts else 1.0
        return self.faascache.warm_starts / self.openwhisk.warm_starts

    @property
    def served_gain(self) -> float:
        """Total served (warm + cold) requests, FaasCache over OpenWhisk."""
        if self.openwhisk.served == 0:
            return float("inf") if self.faascache.served else 1.0
        return self.faascache.served / self.openwhisk.served

    @property
    def latency_improvement(self) -> float:
        """Mean application latency, OpenWhisk over FaasCache."""
        fc = self.faascache.mean_latency_s()
        if fc <= 0:
            return 1.0
        return self.openwhisk.mean_latency_s() / fc


def compare_keepalive_systems(
    trace: Trace,
    config: InvokerConfig,
    cold_start_model: Optional[ColdStartModel] = None,
) -> LoadTestComparison:
    """Run one workload against both systems and compare.

    When the config does not set a batched-eviction threshold,
    FaasCache uses the paper's 1000 MB default capped at 5% of the
    pool — 1000 MB is 0.4% of the paper's 250 GB server, and batching
    away a large fraction of a small pool would throw out the very
    containers the policy means to keep.
    """
    ow = openwhisk_invoker(config, cold_start_model).run(trace)
    fc_threshold = config.free_threshold_mb or min(
        DEFAULT_FREE_THRESHOLD_MB, 0.05 * config.memory_mb
    )
    fc = faascache_invoker(
        config, cold_start_model, free_threshold_mb=fc_threshold
    ).run(trace)
    return LoadTestComparison(trace_name=trace.name, openwhisk=ow, faascache=fc)

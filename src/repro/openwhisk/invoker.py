"""A simulated OpenWhisk invoker (Section 7.2's evaluation substrate).

The paper evaluates FaasCache as a modified OpenWhisk invoker on a
real server. This module reproduces the invoker's request-handling
behaviour as a discrete-event model so the same comparison — vanilla
TTL OpenWhisk vs Greedy-Dual FaasCache — runs without the platform:

* Each request needs a **CPU slot** (the server has a fixed core
  count) and a **container** (warm hit, or a cold launch that must
  find pool memory).
* Cold launches pass through the Figure 1 phase pipeline and are
  limited by a **launch concurrency** bound (the Docker daemon
  serializes container creation), so cold-start storms back up.
* Requests that cannot be served immediately are **buffered FIFO**;
  buffered requests time out and are **dropped** — OpenWhisk "buffers
  and eventually drops requests if it cannot fulfill them".

The feedback loop the paper observes emerges naturally: cold starts
hold CPU and memory for seconds instead of milliseconds, which backs
up the queue, which causes timeouts and drops; a keep-alive policy
with a better hit rate serves strictly more requests in the same time
frame (Figures 7 and 8).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.function import FunctionStatsTable
from repro.core.policies.base import KeepAlivePolicy, create_policy
from repro.openwhisk.containerpool import InvokerContainerPool
from repro.openwhisk.latency import ColdStartModel
from repro.sim.events import EventQueue
from repro.sim.metrics import FunctionOutcome
from repro.traces.model import Trace, TraceFunction

__all__ = ["InvokerConfig", "RequestRecord", "InvokerResult", "SimulatedInvoker"]


@dataclass(frozen=True)
class InvokerConfig:
    """Resources and limits of one simulated invoker."""

    #: ContainerPool user-memory (the keep-alive cache size). OpenWhisk
    #: reserves most of a server's physical RAM for the system; the
    #: pool's usable share is this configured value.
    memory_mb: float = 8192.0
    cpu_cores: int = 48
    #: Buffered-request capacity before immediate drops.
    queue_capacity: int = 512
    #: Buffered requests older than this are dropped.
    request_timeout_s: float = 30.0
    #: Concurrent container launches (Docker daemon parallelism).
    max_concurrent_launches: int = 4
    #: Batched-eviction free threshold (0 disables batching).
    free_threshold_mb: float = 0.0
    #: Slow-path stall of entering an eviction round (pool sort plus
    #: Docker round trip) — charged to the triggering cold start.
    eviction_event_latency_s: float = 0.5
    #: Docker removal time per evicted container.
    eviction_per_container_s: float = 0.25
    #: kswapd-style background reclaim toward the free threshold,
    #: keeping eviction off the invocation critical path (the
    #: Section 6 future-work design). Requires free_threshold_mb > 0.
    async_reclaim: bool = False
    #: Generic pre-created ("stem cell") containers, as real OpenWhisk
    #: maintains per runtime and as the warm-pool line of work
    #: [Lin & Glikson, the paper's ref 41] formalizes. A cold start
    #: that grabs a stem skips the Docker-creation phase (the stem is
    #: specialized in place); the stem is replenished in the
    #: background. Stems occupy ``stem_cell_mb`` each.
    stem_cell_count: int = 0
    stem_cell_mb: float = 256.0

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError("memory must be positive")
        if self.cpu_cores <= 0:
            raise ValueError("cpu cores must be positive")
        if self.queue_capacity < 0:
            raise ValueError("queue capacity must be non-negative")
        if self.request_timeout_s <= 0:
            raise ValueError("request timeout must be positive")
        if self.max_concurrent_launches <= 0:
            raise ValueError("launch concurrency must be positive")
        if self.stem_cell_count < 0 or self.stem_cell_mb <= 0:
            raise ValueError("invalid stem-cell configuration")
        if self.stem_cell_count * self.stem_cell_mb >= self.memory_mb:
            raise ValueError("stem cells would consume the whole pool")


@dataclass
class RequestRecord:
    """One request's journey through the invoker."""

    function_name: str
    arrival_s: float
    start_s: Optional[float] = None
    completion_s: Optional[float] = None
    outcome: str = "pending"  # hit | miss | dropped

    @property
    def latency_s(self) -> Optional[float]:
        """Application-visible latency: arrival to completion."""
        if self.completion_s is None:
            return None
        return self.completion_s - self.arrival_s

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Time buffered before service began (0 if served at once)."""
        if self.start_s is None:
            return None
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> Optional[float]:
        """Time from service start to completion (cold or warm path)."""
        if self.completion_s is None or self.start_s is None:
            return None
        return self.completion_s - self.start_s


@dataclass
class InvokerResult:
    """Aggregated outcome of one load test."""

    policy_name: str
    records: List[RequestRecord] = field(default_factory=list)

    @property
    def warm_starts(self) -> int:
        return sum(1 for r in self.records if r.outcome == "hit")

    @property
    def cold_starts(self) -> int:
        return sum(1 for r in self.records if r.outcome == "miss")

    @property
    def dropped(self) -> int:
        return sum(1 for r in self.records if r.outcome == "dropped")

    @property
    def served(self) -> int:
        return self.warm_starts + self.cold_starts

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def hit_ratio(self) -> float:
        return self.warm_starts / self.served if self.served else 0.0

    def per_function(self) -> Dict[str, FunctionOutcome]:
        outcomes: Dict[str, FunctionOutcome] = {}
        for record in self.records:
            outcome = outcomes.setdefault(record.function_name, FunctionOutcome())
            if record.outcome == "hit":
                outcome.warm += 1
            elif record.outcome == "miss":
                outcome.cold += 1
            else:
                outcome.dropped += 1
        return outcomes

    def latencies_s(self, function_name: Optional[str] = None) -> List[float]:
        return [
            r.latency_s
            for r in self.records
            if r.latency_s is not None
            and (function_name is None or r.function_name == function_name)
        ]

    def mean_latency_s(self, function_name: Optional[str] = None) -> float:
        latencies = self.latencies_s(function_name)
        return sum(latencies) / len(latencies) if latencies else 0.0

    def percentile_latency_s(
        self, q: float, function_name: Optional[str] = None
    ) -> float:
        """Nearest-rank latency percentile (e.g. ``q=99`` for p99)."""
        from repro.analysis.stats import percentile

        latencies = self.latencies_s(function_name)
        if not latencies:
            return 0.0
        return percentile(latencies, q)

    def mean_queue_wait_s(self) -> float:
        """Mean buffering delay over served requests — the congestion
        component of latency, separate from cold-start service time."""
        waits = [
            r.queue_wait_s
            for r in self.records
            if r.queue_wait_s is not None and r.completion_s is not None
        ]
        return sum(waits) / len(waits) if waits else 0.0

    def function_hit_ratio(self, function_name: str) -> float:
        outcome = self.per_function().get(function_name)
        return outcome.hit_ratio if outcome else 0.0


class _Event:
    """Invoker event kinds (payloads for the shared EventQueue)."""

    ARRIVAL = "arrival"
    COMPLETE = "complete"
    LAUNCH_DONE = "launch_done"
    STEM_READY = "stem_ready"
    CONTROL_TICK = "control_tick"


class SimulatedInvoker:
    """Discrete-event model of one OpenWhisk(-like) invoker."""

    def __init__(
        self,
        config: InvokerConfig,
        policy: str | KeepAlivePolicy = "TTL",
        cold_start_model: Optional[ColdStartModel] = None,
        controller=None,
        deflation_engine=None,
    ) -> None:
        """``controller`` (a
        :class:`~repro.provisioning.controller.ProportionalController`)
        attaches the Figure 4 provisioning loop to this invoker: every
        control period the observed arrival and cold-start counts feed
        the controller, and its size decision is actuated on the
        container pool via ``deflation_engine`` (cascade deflation by
        default). Without a controller the pool size is static."""
        if isinstance(policy, str):
            policy = create_policy(policy)
        self.config = config
        self.policy = policy
        self.latency_model = cold_start_model or ColdStartModel()
        self.controller = controller
        if controller is not None and deflation_engine is None:
            from repro.provisioning.deflation import DeflationEngine

            deflation_engine = DeflationEngine()
        self.deflation_engine = deflation_engine
        self.deflations = []
        self._period_arrivals = 0
        self._period_colds = 0
        self.stats = FunctionStatsTable()
        # Stem cells reserve their memory off the top of the pool.
        pool_memory = config.memory_mb - (
            config.stem_cell_count * config.stem_cell_mb
        )
        self.pool = InvokerContainerPool(
            capacity_mb=pool_memory,
            policy=policy,
            free_threshold_mb=config.free_threshold_mb,
            stats=self.stats,
            eviction_event_latency_s=config.eviction_event_latency_s,
            eviction_per_container_s=config.eviction_per_container_s,
            async_reclaim=config.async_reclaim,
        )
        self._stems_available = config.stem_cell_count
        self.stem_hits = 0
        self._events: EventQueue = EventQueue()
        self._queue: Deque[RequestRecord] = deque()
        self._running = 0
        self._launches = 0
        self._result = InvokerResult(policy_name=policy.name)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _try_serve(
        self, record: RequestRecord, function: TraceFunction, now_s: float
    ) -> bool:
        if self._running >= self.config.cpu_cores:
            return False
        container = self.pool.pool.idle_warm_container(function.name)
        kind = "hit"
        if container is None:
            if self._launches >= self.config.max_concurrent_launches:
                return False
            container, kind = self.pool.acquire(function, now_s)
            if container is None:
                return False
        if kind == "hit":
            duration = self.latency_model.warm_duration_s(function)
        else:
            eviction_stall = self.pool.take_eviction_latency()
            duration = self.latency_model.cold_duration_s(function) + eviction_stall
            launch = self.latency_model.launch_duration_s(function) + eviction_stall
            if self._stems_available > 0:
                # Specialize a pre-created stem: the Docker-creation
                # phase is already done; schedule its replacement.
                self._stems_available -= 1
                self.stem_hits += 1
                duration -= self.latency_model.docker_startup_s
                launch -= self.latency_model.docker_startup_s
                self._events.push(
                    now_s + self.latency_model.docker_startup_s,
                    (_Event.STEM_READY, None),
                )
            self._launches += 1
            self._events.push(now_s + launch, (_Event.LAUNCH_DONE, None))
        container.start_invocation(now_s, duration)
        self.pool.notify_start(container, kind, now_s)
        self._running += 1
        if kind == "miss":
            self._period_colds += 1
        record.start_s = now_s
        record.outcome = kind
        self._events.push(
            now_s + duration, (_Event.COMPLETE, (container, record, kind))
        )
        return True

    def _drain_queue(self, now_s: float, functions: Dict[str, TraceFunction]) -> None:
        # Time out stale entries anywhere in the buffer.
        deadline = now_s - self.config.request_timeout_s
        if self._queue and self._queue[0].arrival_s < deadline:
            survivors: Deque[RequestRecord] = deque()
            for record in self._queue:
                if record.arrival_s < deadline:
                    record.outcome = "dropped"
                else:
                    survivors.append(record)
            self._queue = survivors
        # Serve in arrival order, but skip requests that cannot be
        # served yet (OpenWhisk buffers per action: a large function
        # waiting for memory does not block other functions).
        if not self._queue:
            return
        blocked: Deque[RequestRecord] = deque()
        progress = True
        while progress:
            progress = False
            while self._queue:
                head = self._queue.popleft()
                if self._try_serve(head, functions[head.function_name], now_s):
                    progress = True
                else:
                    blocked.append(head)
            # Serving may have freed memory (batched eviction) that
            # unblocks earlier-skipped requests; retry them in order.
            self._queue, blocked = blocked, self._queue
            if self._running >= self.config.cpu_cores:
                break
        # Anything left stays buffered in arrival order.

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _handle_arrival(
        self,
        now_s: float,
        record: RequestRecord,
        functions: Dict[str, TraceFunction],
    ) -> None:
        function = functions[record.function_name]
        self._period_arrivals += 1
        self.pool.expire(now_s)
        self.pool.maintain(now_s)
        self.pool.record_arrival(function, now_s)
        # Older buffered requests get the first shot at freed
        # resources; whatever the drain leaves is currently blocked,
        # so serving this arrival next is fair and avoids a blocked
        # large function head-of-line-blocking it.
        self._drain_queue(now_s, functions)
        if self._try_serve(record, function, now_s):
            return
        if len(self._queue) >= self.config.queue_capacity:
            record.outcome = "dropped"
        else:
            self._queue.append(record)

    def _handle_complete(
        self,
        now_s: float,
        payload: Tuple,
        functions: Dict[str, TraceFunction],
    ) -> None:
        container, record, kind = payload
        record.completion_s = now_s
        elapsed = now_s - record.start_s
        self.pool.release(container, now_s, kind, elapsed)
        self._running -= 1
        self.pool.expire(now_s)
        self.pool.maintain(now_s)
        self._drain_queue(now_s, functions)

    def _handle_control_tick(
        self, now_s: float, functions: Dict[str, TraceFunction]
    ) -> None:
        """One Figure 4 provisioning period: observe, decide, deflate."""
        decision = self.controller.step(
            now_s, self._period_arrivals, self._period_colds
        )
        self._period_arrivals = 0
        self._period_colds = 0
        if decision.resized:
            report = self.deflation_engine.resize(
                self.pool.pool,
                self.policy,
                self.controller.cache_size_mb,
                now_s,
            )
            self.controller.cache_size_mb = report.achieved_mb
            self.deflations.append(report)
            self._drain_queue(now_s, functions)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, trace: Trace) -> InvokerResult:
        """Replay ``trace`` through the invoker and return the result."""
        functions = trace.functions
        for invocation in trace:
            record = RequestRecord(
                function_name=invocation.function_name,
                arrival_s=invocation.time_s,
            )
            self._result.records.append(record)
            self._events.push(invocation.time_s, (_Event.ARRIVAL, record))
        if self.controller is not None and len(trace):
            period = self.controller.control_period_s
            span = trace.invocations[-1].time_s
            tick = period
            while tick <= span + period:
                self._events.push(tick, (_Event.CONTROL_TICK, None))
                tick += period

        while self._events:
            now_s, (kind, payload) = self._events.pop()
            if kind == _Event.ARRIVAL:
                self._handle_arrival(now_s, payload, functions)
            elif kind == _Event.COMPLETE:
                self._handle_complete(now_s, payload, functions)
            elif kind == _Event.CONTROL_TICK:
                self._handle_control_tick(now_s, functions)
            elif kind == _Event.STEM_READY:
                self._stems_available = min(
                    self._stems_available + 1, self.config.stem_cell_count
                )
                self._drain_queue(now_s, functions)
            else:  # LAUNCH_DONE
                self._launches -= 1
                self._drain_queue(now_s, functions)

        # Anything still buffered after the last event would time out.
        for record in self._queue:
            record.outcome = "dropped"
        self._queue.clear()
        return self._result

"""Simulated OpenWhisk invoker substrate (paper Sections 6 and 7.2)."""

from repro.openwhisk.containerpool import (
    DEFAULT_FREE_THRESHOLD_MB,
    InvokerContainerPool,
    OnlineGreedyDualPolicy,
)
from repro.openwhisk.invoker import (
    InvokerConfig,
    InvokerResult,
    RequestRecord,
    SimulatedInvoker,
)
from repro.openwhisk.latency import ColdStartModel, PhaseBreakdown
from repro.openwhisk.loadgen import (
    LoadTestComparison,
    compare_keepalive_systems,
    faascache_invoker,
    openwhisk_invoker,
)

__all__ = [
    "DEFAULT_FREE_THRESHOLD_MB",
    "InvokerContainerPool",
    "OnlineGreedyDualPolicy",
    "InvokerConfig",
    "InvokerResult",
    "RequestRecord",
    "SimulatedInvoker",
    "ColdStartModel",
    "PhaseBreakdown",
    "LoadTestComparison",
    "compare_keepalive_systems",
    "faascache_invoker",
    "openwhisk_invoker",
]

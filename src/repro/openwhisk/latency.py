"""Cold-start latency pipeline (Figure 1 of the paper).

A function invocation on OpenWhisk passes through a chain of
initialization phases before user code runs. Figure 1's timeline for
an ML-inference cold start breaks the compulsory overhead into:

* **container-pool check** — finding (or failing to find) a warm
  container; microseconds to milliseconds.
* **Akka + Docker startup** — creating and launching the container
  (~0.45 s).
* **OpenWhisk runtime initialization** — the language runtime and
  OpenWhisk glue inside the container (~1.5 s).
* **explicit (function) initialization** — the application's own
  imports and data-dependency downloads; this is the per-function
  ``init_time`` of Table 1.

The first three phases are *platform* overhead — roughly constant per
invocation and, the paper notes, about 2.5 s of compulsory latency
before user-provided code executes. The Azure dataset's cold-start
estimates do not include them (Section 7, "Adapting the Azure
Functions Trace"), so the trace-driven simulator uses trace cold times
directly while the invoker model adds the platform phases explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.traces.model import TraceFunction

__all__ = ["ColdStartModel", "PhaseBreakdown"]


@dataclass(frozen=True)
class PhaseBreakdown:
    """Per-phase latency of one invocation, in seconds."""

    phases: Tuple[Tuple[str, float], ...]

    @property
    def total_s(self) -> float:
        return sum(duration for __, duration in self.phases)

    @property
    def overhead_s(self) -> float:
        """Everything before actual function execution."""
        return self.total_s - dict(self.phases).get("function-execution", 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self.phases)


@dataclass(frozen=True)
class ColdStartModel:
    """Latency parameters of the invocation pipeline.

    Defaults follow Figure 1's measured timeline for OpenWhisk.
    """

    pool_check_s: float = 0.01
    docker_startup_s: float = 0.45
    runtime_init_s: float = 1.5

    @property
    def platform_overhead_s(self) -> float:
        """Compulsory platform latency of a cold start (pre-user-code)."""
        return self.pool_check_s + self.docker_startup_s + self.runtime_init_s

    def cold_breakdown(self, function: TraceFunction) -> PhaseBreakdown:
        """The Figure 1 timeline for a cold invocation of ``function``."""
        return PhaseBreakdown(
            phases=(
                ("container-pool-check", self.pool_check_s),
                ("docker-startup", self.docker_startup_s),
                ("runtime-init", self.runtime_init_s),
                ("explicit-init", function.init_time_s),
                ("function-execution", function.warm_time_s),
            )
        )

    def warm_breakdown(self, function: TraceFunction) -> PhaseBreakdown:
        """The (short) timeline of a warm invocation."""
        return PhaseBreakdown(
            phases=(
                ("container-pool-check", self.pool_check_s),
                ("function-execution", function.warm_time_s),
            )
        )

    def cold_duration_s(self, function: TraceFunction) -> float:
        return self.cold_breakdown(function).total_s

    def warm_duration_s(self, function: TraceFunction) -> float:
        return self.warm_breakdown(function).total_s

    def launch_duration_s(self, function: TraceFunction) -> float:
        """Time from cold-start decision to a ready, initialized
        container (everything except the execution itself)."""
        return self.platform_overhead_s + function.init_time_s

"""The invoker's container pool: FaasCache vs vanilla OpenWhisk.

This mirrors the paper's implementation (Section 6): FaasCache is a
~100-line modification of OpenWhisk's ``ContainerPool.scala`` that

* replaces the 10-minute TTL with Greedy-Dual-Size-Frequency priority
  eviction,
* learns each function's cold and warm times online (the first
  invocation's time is the worst-case cold estimate; the
  initialization overhead is cold minus warm once a warm run is
  observed), and
* **batches evictions**: to keep eviction off the invocation fast
  path, the pool is only sorted by priority during evictions, and
  evicts enough containers to reach a free-memory threshold (1000 MB
  by default) rather than just the immediate need.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.container import Container
from repro.core.function import FunctionStatsTable
from repro.core.policies.base import KeepAlivePolicy
from repro.core.policies.greedy_dual import GreedyDualPolicy
from repro.core.pool import ContainerPool
from repro.traces.model import TraceFunction

__all__ = ["OnlineGreedyDualPolicy", "InvokerContainerPool"]

#: The paper's default free-memory threshold for batched evictions.
DEFAULT_FREE_THRESHOLD_MB = 1000.0


class OnlineGreedyDualPolicy(GreedyDualPolicy):
    """Greedy-Dual with *learned* initialization costs.

    The offline simulator reads the cold-start cost from the trace; a
    real platform must estimate it. This variant reads the cost from a
    :class:`FunctionStatsTable` maintained by the invoker, falling
    back to the worst-case assumption (whole first cold run counts as
    initialization) until a warm run has been observed — exactly the
    estimation scheme of Section 6.
    """

    def __init__(self, stats: FunctionStatsTable) -> None:
        super().__init__()
        self._stats = stats

    def _value_term(self, function: TraceFunction) -> float:
        freq = self.frequency_of(function.name)
        cost = self._stats.get(function.name).init_time_s
        return freq * cost / function.memory_mb


class InvokerContainerPool:
    """Policy-managed container pool with batched eviction."""

    def __init__(
        self,
        capacity_mb: float,
        policy: KeepAlivePolicy,
        free_threshold_mb: float = DEFAULT_FREE_THRESHOLD_MB,
        stats: Optional[FunctionStatsTable] = None,
        eviction_event_latency_s: float = 0.0,
        eviction_per_container_s: float = 0.0,
        async_reclaim: bool = False,
    ) -> None:
        """``eviction_event_latency_s`` and ``eviction_per_container_s``
        model the slow path the paper batches away: entering an
        eviction round stalls the invocation path (pool sort + Docker
        round trip), and each terminated container pays a Docker
        removal. Batching (a non-zero ``free_threshold_mb``) makes
        eviction rounds rare, amortizing the fixed cost — exactly the
        Section 6 optimization.

        ``async_reclaim`` enables the kswapd-style design the paper
        sketches as future work: a background task keeps free memory
        at the threshold by evicting low-priority containers *between*
        requests (:meth:`maintain`), so eviction leaves the invocation
        critical path entirely — background evictions charge no
        latency to any request."""
        if free_threshold_mb < 0:
            raise ValueError("free threshold must be non-negative")
        self.pool = ContainerPool(capacity_mb)
        self.policy = policy
        self.free_threshold_mb = free_threshold_mb
        self.stats = stats if stats is not None else FunctionStatsTable()
        self.eviction_event_latency_s = eviction_event_latency_s
        self.eviction_per_container_s = eviction_per_container_s
        self.async_reclaim = async_reclaim
        self.evictions = 0
        self.eviction_events = 0
        self.background_evictions = 0
        self.expirations = 0
        #: Slow-path latency owed by the *next* cold start (set by
        #: the eviction round that made room for it).
        self.pending_eviction_latency_s = 0.0

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def record_arrival(self, function: TraceFunction, now_s: float) -> None:
        """Announce one request arrival (exactly once per request)."""
        self.policy.on_invocation(function, now_s, self.pool)

    def acquire(
        self, function: TraceFunction, now_s: float
    ) -> Tuple[Optional[Container], str]:
        """Obtain a container for an invocation of ``function``.

        Returns ``(container, "hit")`` for a warm container,
        ``(container, "miss")`` after a successful cold-start
        allocation, or ``(None, "full")`` when memory cannot be freed
        (every resident container is busy).

        The caller must have announced the request once via
        :meth:`record_arrival` (acquire may be retried for queued
        requests and must not inflate frequencies), starts the
        invocation on the returned container, and calls
        :meth:`release` when it completes.
        """
        container = self.pool.idle_warm_container(function.name)
        if container is not None:
            return container, "hit"
        if not self._make_room(function.memory_mb, now_s):
            return None, "full"
        container = Container(function, created_at_s=now_s)
        self.pool.add(container)
        return container, "miss"

    def _make_room(self, needed_mb: float, now_s: float) -> bool:
        victims = self.policy.select_victims(self.pool, needed_mb, now_s)
        if victims is None:
            return False
        evicted = 0
        if victims:
            self.eviction_events += 1
        for victim in victims:
            self._evict(victim, now_s, pressure=True)
            evicted += 1
        # Batch: when an eviction round was genuinely needed, keep
        # evicting low-priority containers until the free threshold is
        # reached, amortizing the round's fixed cost across the next
        # several cold starts (Section 6). With async reclaim the
        # background task owns the threshold, so the fast path evicts
        # the minimum. No round, no batch: topping up on every miss
        # would charge the slow path as often as not batching at all.
        if victims and self.free_threshold_mb > 0 and not self.async_reclaim:
            target_free = min(
                max(needed_mb, self.free_threshold_mb), self.pool.capacity_mb
            )
            idle = self.pool.idle_containers()
            idle.sort(
                key=lambda c: (
                    self.policy.priority(c, now_s),
                    c.last_used_s,
                    c.container_id,
                )
            )
            for container in idle:
                if self.pool.free_mb >= target_free - 1e-9:
                    break
                self._evict(container, now_s, pressure=True)
                evicted += 1
        if evicted:
            self.pending_eviction_latency_s = (
                self.eviction_event_latency_s
                + evicted * self.eviction_per_container_s
            )
        return True

    def take_eviction_latency(self) -> float:
        """Consume the slow-path latency owed by the current cold start."""
        latency = self.pending_eviction_latency_s
        self.pending_eviction_latency_s = 0.0
        return latency

    def maintain(self, now_s: float) -> int:
        """Background (kswapd-style) reclaim toward the free threshold.

        Only active with ``async_reclaim``; called by the invoker
        between requests. Evicts low-priority idle containers until
        ``free_threshold_mb`` is free, charging no request latency.
        Returns the number of containers reclaimed.
        """
        if not self.async_reclaim or self.free_threshold_mb <= 0:
            return 0
        target_free = min(self.free_threshold_mb, self.pool.capacity_mb)
        reclaimed = 0
        while self.pool.free_mb < target_free - 1e-9:
            idle = self.pool.idle_containers()
            if not idle:
                break
            victim = min(
                idle,
                key=lambda c: (
                    self.policy.priority(c, now_s),
                    c.last_used_s,
                    c.container_id,
                ),
            )
            self._evict(victim, now_s, pressure=True)
            self.background_evictions += 1
            reclaimed += 1
        return reclaimed

    def _evict(self, container: Container, now_s: float, pressure: bool) -> None:
        self.pool.evict(container)
        self.policy.on_evict(container, now_s, self.pool, pressure=pressure)
        if pressure:
            self.evictions += 1
        else:
            self.expirations += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def notify_start(self, container: Container, kind: str, now_s: float) -> None:
        """Policy bookkeeping once the invocation has been started."""
        if kind == "hit":
            self.policy.on_warm_start(container, now_s, self.pool)
        else:
            self.policy.on_cold_start(container, now_s, self.pool)

    def release(
        self, container: Container, now_s: float, kind: str, elapsed_s: float
    ) -> None:
        """Finish an invocation and fold its timing into the stats."""
        container.finish_invocation(now_s)
        stats = self.stats.get(container.function.name)
        if kind == "hit":
            stats.observe_warm(elapsed_s)
        else:
            stats.observe_cold(elapsed_s)

    def expire(self, now_s: float) -> int:
        """Apply the policy's time-based expirations; returns the count."""
        expired = self.policy.expired_containers(self.pool, now_s)
        for container, __ in expired:
            self._evict(container, now_s, pressure=False)
        return len(expired)

"""``repro.faults`` — deterministic fault injection and recovery.

The robustness layer of the reproduction. FaasCache's published
numbers are measured on failure-free runs; this package makes failures
a *sweepable experiment axis*: a seeded :class:`FaultSpec` describes
container spawn failures, invocation crashes/timeouts, and whole-server
outages, and every injection decision is a pure function of the seed
and the invocation's identity — never of draw order — so the same spec
produces byte-identical metrics across runs, across worker processes,
and across retried sweep cells.

Quick tour::

    from repro.faults import FaultSpec
    from repro.sim.scheduler import simulate

    spec = FaultSpec(seed=7, spawn_failure_rate=0.05, crash_rate=0.02)
    result = simulate(trace, "GD", 4096, fault_spec=spec)
    result.metrics.retries, result.metrics.sheds

A spec whose every rate is zero and whose schedule is empty is
*disabled*: the simulators store ``None`` and take exactly the same
code path as a run with no spec at all, so baselines are unperturbed.
"""

from repro.faults.model import (
    CapacityStep,
    FaultModel,
    FaultSpec,
    ServerDowntime,
    cell_fault_spec,
    derive_seed,
    load_fault_spec,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "CapacityStep",
    "FaultModel",
    "FaultSpec",
    "ServerDowntime",
    "RetryPolicy",
    "cell_fault_spec",
    "derive_seed",
    "load_fault_spec",
]

"""Seeded, fully deterministic fault specification and injection model.

Two design rules make chaos experiments reproducible here where naive
``random.random()`` injection is not:

1. **Decisions are pure functions of coordinates, not draw order.**
   Whether invocation ``(function, time, attempt)`` suffers a spawn
   failure is a blake2b hash of the seed and those coordinates mapped
   to a uniform ``[0, 1)`` draw. Re-running a sweep cell in another
   worker process, retrying it after a crash, or reordering the grid
   cannot shift any decision — there is no shared RNG stream to
   perturb.
2. **A disabled spec is indistinguishable from no spec.** Every rate
   zero and no downtime schedule means :attr:`FaultSpec.enabled` is
   false; the simulators then store ``None`` and take the exact
   baseline code path, so zero-fault runs stay byte-identical to
   pre-fault builds (a CI-gated invariant).

Whole-server outages are the one place a generator is used — the
downtime spans for server *i* come from ``random.Random`` seeded with
``derive_seed(seed, "server", i)``, so each server's outage timeline is
an independent, replayable stream regardless of how many servers the
cluster has or in which order they are asked.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import random
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple, Union

__all__ = [
    "FaultSpec",
    "FaultModel",
    "ServerDowntime",
    "CapacityStep",
    "FAULT_KINDS",
    "derive_seed",
    "load_fault_spec",
    "cell_fault_spec",
]

#: Injectable invocation-level fault kinds (see ``fault_injected``).
FAULT_KINDS: Tuple[str, ...] = ("spawn_failure", "crash", "timeout")

_SEED_BYTES = 8
_MASK_53 = (1 << 53) - 1


def _pack(part: Union[str, int, float]) -> bytes:
    """Stable byte encoding of one hash-key part.

    Each part is tagged with its type so ``("a", 1)`` and ``("a1",)``
    can never collide, and floats go through IEEE-754 packing so the
    encoding is platform- and repr-independent.
    """
    if isinstance(part, str):
        data = part.encode("utf-8")
        return b"s" + len(data).to_bytes(4, "little") + data
    if isinstance(part, bool):  # bool before int: it is an int subclass
        return b"b" + bytes([part])
    if isinstance(part, int):
        return b"i" + part.to_bytes(16, "little", signed=True)
    if isinstance(part, float):
        return b"f" + struct.pack("<d", part)
    raise TypeError(f"unhashable fault-key part: {part!r}")


def _digest(base: int, parts: Tuple[Union[str, int, float], ...]) -> bytes:
    h = hashlib.blake2b(
        digest_size=_SEED_BYTES,
        salt=(base & ((1 << 64) - 1)).to_bytes(8, "little"),
    )
    for part in parts:
        h.update(_pack(part))
    return h.digest()


def derive_seed(base: int, *parts: Union[str, int, float]) -> int:
    """A stable child seed from a base seed and identifying parts.

    >>> derive_seed(0, "cell", "GD", "1") != derive_seed(0, "cell", "GD", "2")
    True
    >>> derive_seed(7, "server", 3) == derive_seed(7, "server", 3)
    True
    """
    return int.from_bytes(_digest(base, parts), "little")


def _u01(base: int, *parts: Union[str, int, float]) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed on coordinates."""
    value = int.from_bytes(_digest(base, parts), "little")
    return (value & _MASK_53) / float(1 << 53)


@dataclass(frozen=True)
class ServerDowntime:
    """One explicitly scheduled outage of one server."""

    server: int
    down_s: float
    up_s: float

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ValueError(f"server index must be >= 0, got {self.server}")
        if not 0.0 <= self.down_s < self.up_s:
            raise ValueError(
                f"need 0 <= down_s < up_s, got [{self.down_s}, {self.up_s}]"
            )


@dataclass(frozen=True)
class CapacityStep:
    """One explicit capacity change of one server.

    ``capacity_frac`` is the fraction of the server's *nominal*
    capacity available from ``time_s`` onward — ``1.0`` restores full
    capacity, ``0.5`` harvests half the memory away. Fractions are
    relative to the original provisioned size, never to the previous
    step, so steps commute with reordering of equal-time duplicates.
    """

    server: int
    time_s: float
    capacity_frac: float

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ValueError(f"server index must be >= 0, got {self.server}")
        if self.time_s < 0.0:
            raise ValueError(f"time_s must be >= 0, got {self.time_s}")
        if not 0.0 < self.capacity_frac <= 1.0:
            raise ValueError(
                f"capacity_frac must be in (0, 1], got {self.capacity_frac}"
            )


@dataclass(frozen=True)
class FaultSpec:
    """Everything a chaos experiment needs, in one frozen value.

    Rates are per-attempt probabilities in ``[0, 1]``; ``crash_rate``
    and ``timeout_rate`` together must not exceed 1 (they partition the
    same draw). Server outages come from an explicit
    ``server_downtimes`` schedule, a rate-based
    ``server_mtbf_s``/``server_recovery_s`` pair, or both merged.

    Recovery knobs configure the :class:`~repro.faults.retry.RetryPolicy`
    paired with the model: capped exponential backoff with
    deterministic jitter, a bounded pending-retry queue (admission
    control — overflow is shed, never queued unboundedly), and a
    per-function lifetime retry budget.
    """

    seed: int = 0
    # -- invocation-level fault rates --------------------------------
    spawn_failure_rate: float = 0.0
    crash_rate: float = 0.0
    timeout_rate: float = 0.0
    # -- whole-server outages ----------------------------------------
    server_mtbf_s: float = 0.0  # 0 disables rate-based outages
    server_recovery_s: float = 300.0
    server_downtimes: Tuple[ServerDowntime, ...] = ()
    # -- harvested capacity (time-varying server memory) -------------
    capacity_steps: Tuple[CapacityStep, ...] = ()
    harvest_interval_s: float = 0.0  # 0 disables rate-based harvesting
    harvest_min_frac: float = 0.5
    harvest_max_frac: float = 1.0
    # -- spot evictions (whole-server loss with advance notice) ------
    spot_mtbf_s: float = 0.0  # 0 disables spot evictions
    spot_notice_s: float = 30.0
    # -- recovery / retry --------------------------------------------
    max_retries: int = 3
    base_delay_s: float = 1.0
    max_delay_s: float = 60.0
    jitter: float = 0.5
    max_pending_retries: int = 1024
    per_function_retry_budget: int = 100

    def __post_init__(self) -> None:
        for name in ("spawn_failure_rate", "crash_rate", "timeout_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.crash_rate + self.timeout_rate > 1.0 + 1e-12:
            raise ValueError(
                "crash_rate + timeout_rate must not exceed 1, got "
                f"{self.crash_rate} + {self.timeout_rate}"
            )
        if self.server_mtbf_s < 0.0:
            raise ValueError(
                f"server_mtbf_s must be >= 0, got {self.server_mtbf_s}"
            )
        if self.server_recovery_s <= 0.0:
            raise ValueError(
                f"server_recovery_s must be positive, "
                f"got {self.server_recovery_s}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_s <= 0.0 or self.max_delay_s < self.base_delay_s:
            raise ValueError(
                "need 0 < base_delay_s <= max_delay_s, got "
                f"{self.base_delay_s}/{self.max_delay_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.max_pending_retries < 0:
            raise ValueError(
                f"max_pending_retries must be >= 0, "
                f"got {self.max_pending_retries}"
            )
        if self.per_function_retry_budget < 0:
            raise ValueError(
                f"per_function_retry_budget must be >= 0, "
                f"got {self.per_function_retry_budget}"
            )
        if self.harvest_interval_s < 0.0:
            raise ValueError(
                f"harvest_interval_s must be >= 0, "
                f"got {self.harvest_interval_s}"
            )
        if not (
            0.0 < self.harvest_min_frac
            <= self.harvest_max_frac
            <= 1.0
        ):
            raise ValueError(
                "need 0 < harvest_min_frac <= harvest_max_frac <= 1, got "
                f"{self.harvest_min_frac}/{self.harvest_max_frac}"
            )
        if self.spot_mtbf_s < 0.0:
            raise ValueError(
                f"spot_mtbf_s must be >= 0, got {self.spot_mtbf_s}"
            )
        if self.spot_notice_s < 0.0:
            raise ValueError(
                f"spot_notice_s must be >= 0, got {self.spot_notice_s}"
            )
        # Normalize downtime entries: accept ServerDowntime instances,
        # mappings, or (server, down_s, up_s) sequences, in any
        # container — literal construction is as lenient as from_dict.
        normalized: List[ServerDowntime] = []
        for entry in self.server_downtimes:
            if isinstance(entry, ServerDowntime):
                normalized.append(entry)
            elif isinstance(entry, Mapping):
                normalized.append(ServerDowntime(**entry))
            else:
                server, down_s, up_s = entry
                normalized.append(
                    ServerDowntime(int(server), float(down_s), float(up_s))
                )
        object.__setattr__(self, "server_downtimes", tuple(normalized))
        # Same leniency for capacity steps.
        steps: List[CapacityStep] = []
        for step in self.capacity_steps:
            if isinstance(step, CapacityStep):
                steps.append(step)
            elif isinstance(step, Mapping):
                steps.append(CapacityStep(**step))
            else:
                server, time_s, frac = step
                steps.append(
                    CapacityStep(int(server), float(time_s), float(frac))
                )
        object.__setattr__(self, "capacity_steps", tuple(steps))

    @property
    def enabled(self) -> bool:
        """Whether this spec can inject anything at all.

        A disabled spec must be treated exactly like no spec — the
        simulators store ``None`` for it, keeping the baseline hot
        path (and its results) untouched.
        """
        return bool(
            self.spawn_failure_rate > 0.0
            or self.crash_rate > 0.0
            or self.timeout_rate > 0.0
            or self.server_mtbf_s > 0.0
            or self.server_downtimes
            or self.capacity_steps
            or self.harvest_interval_s > 0.0
            or self.spot_mtbf_s > 0.0
        )

    # -- (de)serialization -------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["server_downtimes"] = [
            [d.server, d.down_s, d.up_s] for d in self.server_downtimes
        ]
        out["capacity_steps"] = [
            [s.server, s.time_s, s.capacity_frac]
            for s in self.capacity_steps
        ]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault-spec fields: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        # __post_init__ normalizes server_downtimes entries.
        return cls(**dict(data))


def load_fault_spec(path: Union[str, pathlib.Path]) -> FaultSpec:
    """Load a :class:`FaultSpec` from a JSON file (the CLI's
    ``--fault-spec`` format; see ``docs/robustness.md``)."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: fault spec must be a JSON object")
    try:
        return FaultSpec.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}: invalid fault spec: {exc}") from None


def cell_fault_spec(
    spec: FaultSpec, policy_name: str, memory_gb: float
) -> FaultSpec:
    """The per-cell spec a sweep derives from its base spec.

    The child seed is a pure function of the base seed and the cell
    coordinates, so each grid cell sees independent fault draws while
    any re-execution of the same cell — sequential, parallel, or a
    retry after a worker crash — replays the identical fault sequence.
    """
    return dataclasses.replace(
        spec,
        seed=derive_seed(spec.seed, "cell", policy_name, f"{memory_gb:g}"),
    )


class FaultModel:
    """Answers every injection question a simulator asks, statelessly.

    All methods are pure in the spec: two models built from equal specs
    return identical answers for identical arguments, in any order,
    from any process.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    def spawn_fails(
        self, function_name: str, time_s: float, attempt: int
    ) -> bool:
        """Whether creating a container for this attempt fails."""
        rate = self.spec.spawn_failure_rate
        if rate <= 0.0:
            return False
        return _u01(self.spec.seed, "spawn", function_name, time_s, attempt) < rate

    def invocation_fault(
        self, function_name: str, time_s: float, attempt: int
    ) -> Union[str, None]:
        """``"crash"``, ``"timeout"``, or ``None`` for this attempt.

        One draw partitioned between the two kinds, so their combined
        probability is exactly ``crash_rate + timeout_rate``.
        """
        crash, timeout = self.spec.crash_rate, self.spec.timeout_rate
        if crash <= 0.0 and timeout <= 0.0:
            return None
        draw = _u01(self.spec.seed, "invoke", function_name, time_s, attempt)
        if draw < crash:
            return "crash"
        if draw < crash + timeout:
            return "timeout"
        return None

    def downtime_spans(
        self, server: int, horizon_s: float
    ) -> List[Tuple[float, float]]:
        """Merged, sorted ``(down_s, up_s)`` outage spans for one server.

        Explicit :attr:`FaultSpec.server_downtimes` entries for the
        server are combined with rate-based spans drawn from an
        exponential inter-failure process (mean ``server_mtbf_s``,
        fixed ``server_recovery_s`` repair time) seeded per server.
        Overlapping spans are coalesced.
        """
        spec = self.spec
        spans = [
            (d.down_s, d.up_s)
            for d in spec.server_downtimes
            if d.server == server and d.down_s < horizon_s
        ]
        if spec.server_mtbf_s > 0.0:
            rng = random.Random(derive_seed(spec.seed, "server", server))
            t = rng.expovariate(1.0 / spec.server_mtbf_s)
            while t < horizon_s:
                spans.append((t, t + spec.server_recovery_s))
                t += spec.server_recovery_s
                t += rng.expovariate(1.0 / spec.server_mtbf_s)
        spans.sort()
        merged: List[Tuple[float, float]] = []
        for down_s, up_s in spans:
            if merged and down_s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], up_s))
            else:
                merged.append((down_s, up_s))
        return merged

    def server_schedule(
        self, num_servers: int, horizon_s: float
    ) -> List[Tuple[float, int, str]]:
        """All servers' transitions as a time-ordered event list.

        Each element is ``(time_s, server, kind)`` with kind ``"down"``
        or ``"up"`` — the form the cluster simulators consume while
        replaying a trace.
        """
        events: List[Tuple[float, int, str]] = []
        for server in range(num_servers):
            for down_s, up_s in self.downtime_spans(server, horizon_s):
                events.append((down_s, server, "down"))
                events.append((up_s, server, "up"))
        # "up" before "down" at equal times so a zero-gap repair cannot
        # leave a server stuck down; server index breaks the remainder.
        events.sort(key=lambda e: (e[0], e[2] != "up", e[1]))
        return events

    def capacity_timeline(
        self, server: int, horizon_s: float
    ) -> List[Tuple[float, float]]:
        """Time-ordered ``(time_s, capacity_frac)`` steps for one server.

        Explicit :attr:`FaultSpec.capacity_steps` entries are combined
        with a rate-based harvest stream (exponential step gaps with
        mean ``harvest_interval_s``, fraction uniform in
        ``[harvest_min_frac, harvest_max_frac]``) seeded per server via
        ``derive_seed(seed, "harvest", server)``. Each fraction is
        absolute (relative to nominal capacity), so applying the steps
        in list order is the authoritative semantics — at equal times
        the later-listed step wins.
        """
        spec = self.spec
        steps = [
            (s.time_s, s.capacity_frac)
            for s in spec.capacity_steps
            if s.server == server and s.time_s < horizon_s
        ]
        if spec.harvest_interval_s > 0.0:
            rng = random.Random(derive_seed(spec.seed, "harvest", server))
            t = rng.expovariate(1.0 / spec.harvest_interval_s)
            while t < horizon_s:
                steps.append(
                    (t, rng.uniform(spec.harvest_min_frac,
                                    spec.harvest_max_frac))
                )
                t += rng.expovariate(1.0 / spec.harvest_interval_s)
        steps.sort(key=lambda s: s[0])  # stable: ties keep list order
        return steps

    def spot_evictions(
        self, server: int, horizon_s: float
    ) -> List[Tuple[float, float]]:
        """Sorted ``(notice_s, evict_s)`` spot-eviction pairs.

        Evictions are drawn from an exponential inter-eviction process
        (mean ``spot_mtbf_s``) seeded per server via
        ``derive_seed(seed, "spot", server)``; the notice lands
        ``spot_notice_s`` before the eviction (clamped to 0). The next
        draw starts after ``server_recovery_s`` — the time a
        replacement takes to come up — so spans never overlap.
        """
        spec = self.spec
        if spec.spot_mtbf_s <= 0.0:
            return []
        rng = random.Random(derive_seed(spec.seed, "spot", server))
        pairs: List[Tuple[float, float]] = []
        t = rng.expovariate(1.0 / spec.spot_mtbf_s)
        while t < horizon_s:
            pairs.append((max(0.0, t - spec.spot_notice_s), t))
            t += spec.server_recovery_s
            t += rng.expovariate(1.0 / spec.spot_mtbf_s)
        return pairs

    #: Tie order of capacity-schedule kinds at equal times: a restore
    #: precedes new shrinks/notices, and the eviction itself lands
    #: last so a zero-notice spec still sees its notice event.
    _CAPACITY_KIND_ORDER = {"restore": 0, "capacity": 1,
                            "notice": 2, "evict": 3}

    def server_capacity_events(
        self, server: int, horizon_s: float
    ) -> List[Tuple[float, str, float]]:
        """One server's capacity events as time-ordered
        ``(time_s, kind, value)`` triples — the form a single-server
        simulator consumes (:class:`repro.sim.scheduler`):

        ``("capacity", frac)``
            The server's capacity becomes ``frac`` of nominal.
        ``("notice", evict_at_s)``
            A spot eviction was announced for ``evict_at_s``.
        ``("evict", 0.0)``
            The server is reclaimed (whole-server loss).
        ``("restore", 1.0)``
            A replacement server is up at full (cold) capacity,
            ``server_recovery_s`` after the eviction.
        """
        events: List[Tuple[float, str, float]] = []
        order = self._CAPACITY_KIND_ORDER
        for time_s, frac in self.capacity_timeline(server, horizon_s):
            events.append((time_s, "capacity", frac))
        for notice_s, evict_s in self.spot_evictions(server, horizon_s):
            events.append((notice_s, "notice", evict_s))
            events.append((evict_s, "evict", 0.0))
            events.append(
                (evict_s + self.spec.server_recovery_s, "restore", 1.0)
            )
        events.sort(key=lambda e: (e[0], order[e[1]]))
        return events

    def capacity_schedule(
        self, num_servers: int, horizon_s: float
    ) -> List[Tuple[float, int, str, float]]:
        """All servers' capacity events as a time-ordered list of
        ``(time_s, server, kind, value)`` — the cluster-level merge of
        :meth:`server_capacity_events` (same kinds, same tie order,
        server index breaking the remainder)."""
        events: List[Tuple[float, int, str, float]] = []
        order = self._CAPACITY_KIND_ORDER
        for server in range(num_servers):
            for time_s, kind, value in self.server_capacity_events(
                server, horizon_s
            ):
                events.append((time_s, server, kind, value))
        events.sort(key=lambda e: (e[0], order[e[2]], e[1]))
        return events

    def __repr__(self) -> str:
        return f"FaultModel(seed={self.spec.seed}, enabled={self.spec.enabled})"

"""Deterministic retry policy: capped exponential backoff with jitter.

Classic recovery machinery (AWS-style ``base * 2**n`` capped backoff
with jitter) made replayable: the jitter for a given retry is a hash of
the seed and the retry's identity — function, retry number, and the
failing attempt's time — not a shared RNG draw, so a retried sweep
cell schedules every retry at exactly the same simulated instant as
the original run.

Budgets bound the recovery work twice over:

* ``max_retries`` caps attempts per invocation (then the invocation is
  shed);
* ``per_function_retry_budget`` caps total retries one function may
  consume across a run, so a persistently failing function degrades to
  immediate shedding instead of monopolizing the retry queue.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.model import FaultSpec, _u01

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Decides whether — and when — a failed attempt runs again."""

    def __init__(
        self,
        max_retries: int = 3,
        base_delay_s: float = 1.0,
        max_delay_s: float = 60.0,
        jitter: float = 0.5,
        per_function_budget: int = 100,
        seed: int = 0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if base_delay_s <= 0.0 or max_delay_s < base_delay_s:
            raise ValueError(
                "need 0 < base_delay_s <= max_delay_s, got "
                f"{base_delay_s}/{max_delay_s}"
            )
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        if per_function_budget < 0:
            raise ValueError(
                f"per_function_budget must be >= 0, got {per_function_budget}"
            )
        self.max_retries = max_retries
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.per_function_budget = per_function_budget
        self.seed = seed
        self._budget_used: Dict[str, int] = {}

    @classmethod
    def from_spec(cls, spec: FaultSpec) -> "RetryPolicy":
        return cls(
            max_retries=spec.max_retries,
            base_delay_s=spec.base_delay_s,
            max_delay_s=spec.max_delay_s,
            jitter=spec.jitter,
            per_function_budget=spec.per_function_retry_budget,
            seed=spec.seed,
        )

    def budget_remaining(self, function_name: str) -> int:
        return self.per_function_budget - self._budget_used.get(
            function_name, 0
        )

    def next_delay(
        self, function_name: str, retry_number: int, failed_at_s: float
    ) -> Optional[float]:
        """The backoff before retry ``retry_number`` (1-based), or
        ``None`` when the invocation must be shed instead.

        Granting a retry consumes one unit of the function's budget;
        asking is free, so callers may probe-and-shed without charge.
        The delay is ``base * 2**(n-1)`` stretched by a deterministic
        jitter factor in ``[1 - jitter/2, 1 + jitter/2]`` keyed on the
        retry's identity, then clamped to ``max_delay_s`` — the cap is
        a hard ceiling, so the jitter stretch can never push a delay
        past it.
        """
        if retry_number < 1:
            raise ValueError(f"retry_number is 1-based, got {retry_number}")
        if retry_number > self.max_retries:
            return None
        used = self._budget_used.get(function_name, 0)
        if used >= self.per_function_budget:
            return None
        self._budget_used[function_name] = used + 1
        delay = min(
            self.max_delay_s, self.base_delay_s * (2.0 ** (retry_number - 1))
        )
        if self.jitter > 0.0:
            u = _u01(
                self.seed, "jitter", function_name, retry_number, failed_at_s
            )
            delay *= 1.0 + self.jitter * (u - 0.5)
            # The cap must bound the *final* delay: once the
            # exponential term saturates, upward jitter would otherwise
            # exceed max_delay_s by up to jitter/2.
            if delay > self.max_delay_s:
                delay = self.max_delay_s
        return delay

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"base={self.base_delay_s}s, cap={self.max_delay_s}s, "
            f"jitter={self.jitter})"
        )

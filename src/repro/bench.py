"""Reproducible benchmark harness for the simulator hot paths.

The ROADMAP's north star is month-long, million-invocation replays
"as fast as the hardware allows"; this module is how the repository
*measures* that promise instead of asserting it. It defines a small
suite of pinned-seed scenarios — 100k-invocation TTL, HIST, and GDSF
(GD) replays through the columnar engine, a streamed million-plus
invocation TTL replay, a harvested-capacity GD replay through the
object simulator, and one sweep cell — and a runner that:

* times each scenario (best-of-N wall clocks via
  :func:`repro.core.clock.wall_clock_s`, the sanctioned accessor);
* fingerprints each scenario's :class:`SimulationMetrics` (a SHA-256
  over the canonical JSON of the lifecycle counters and headline
  percentages), so a performance change that silently alters
  *results* is caught as loudly as a slowdown;
* records each scenario's peak traced allocation (one untimed
  ``tracemalloc`` pass), so the streamed scenario can *gate* the
  claim that a full-day trace never materializes in memory;
* compares against a checked-in baseline (``benchmarks/BASELINE.json``)
  with a machine-speed calibration factor and a slowdown tolerance.

Everything is deterministic: traces are built from pinned seeds, the
fingerprints are bit-stable across runs and across
``PYTHONHASHSEED`` values, and only the wall-clock timings vary.

Entry points: ``repro-faascache bench`` (CLI), ``make bench``
(Makefile), and ``benchmarks/run_bench.py`` (script). Methodology and
baseline-update instructions live in ``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import platform
import random
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.checks.sanitize import sanitize_enabled
from repro.core.clock import wall_clock_s
from repro.core.policies import create_policy
from repro.faults import FaultSpec
from repro.sim.columnar import ColumnarReplayEngine
from repro.sim.scheduler import KeepAliveSimulator, SimulationResult
from repro.sim.server import GB_MB
from repro.sim.sweep import point_fingerprint, run_cell
from repro.traces.columnar import ColumnarTrace
from repro.traces.model import Invocation, Trace, TraceFunction
from repro.traces.streaming import StreamingChurnTrace

__all__ = [
    "SCENARIOS",
    "BenchScenario",
    "churn_trace",
    "eviction_trace",
    "run_suite",
    "compare_reports",
    "main",
]

#: Default slowdown tolerance for baseline comparison (the CI gate
#: fails on anything slower than baseline * (1 + tolerance) after
#: machine-speed normalization).
DEFAULT_TOLERANCE = 0.10

#: Seeds are pinned per scenario so every run replays byte-identical
#: workloads; see docs/performance.md before changing any of them.
_CHURN_SEED_TTL = 1001
_CHURN_SEED_HIST = 1002
_EVICTION_SEED = 1003
_SWEEP_SEED = 1004
_STREAM_SEED_1M = 1005
_HARVEST_SEED = 1006
_LIVE_SEED = 1007


# ----------------------------------------------------------------------
# Workload builders (pinned seeds, fully deterministic)
# ----------------------------------------------------------------------


def churn_trace(
    num_functions: int = 1620,
    duration_s: float = 9600.0,
    seed: int = _CHURN_SEED_TTL,
    name: str = "bench-churn",
) -> Trace:
    """A keep-alive churn workload: a large, mostly-idle warm pool.

    Each function arrives roughly periodically with a per-function
    inter-arrival time drawn from {60, 120, 240, 480, 960} seconds
    (seeded), jittered +/-30%. Under a 300 s TTL the short-IAT
    majority stays warm for the whole replay while the long-IAT tail
    expires before every arrival — exactly the regime where a
    per-event full-pool expiry scan is quadratic and the incremental
    expiry index is not.
    """
    rng = random.Random(seed)
    iat_choices = (60.0, 120.0, 240.0, 480.0, 960.0)
    functions: List[TraceFunction] = []
    invocations: List[Invocation] = []
    for i in range(num_functions):
        iat = iat_choices[rng.randrange(len(iat_choices))]
        function = TraceFunction(
            name=f"bench-{i:04d}",
            memory_mb=128.0,
            warm_time_s=0.2,
            cold_time_s=1.2,
        )
        functions.append(function)
        t = rng.uniform(0.0, iat)
        while t < duration_s:
            invocations.append(Invocation(round(t, 6), function.name))
            t += iat * rng.uniform(0.7, 1.3)
    invocations.sort(key=lambda inv: (inv.time_s, inv.function_name))
    return Trace(functions, invocations, name=name)


def eviction_trace(
    num_functions: int = 800,
    rounds: int = 125,
    seed: int = _EVICTION_SEED,
    name: str = "bench-eviction",
) -> Trace:
    """Shuffled round-robin arrivals over a working set far above
    capacity: nearly every arrival is a cold start that must select a
    victim, stressing the lazy victim index rather than expiry."""
    functions = [
        TraceFunction(f"evict-{i:03d}", 128.0, 0.2, 1.0)
        for i in range(num_functions)
    ]
    rng = random.Random(seed)
    invocations: List[Invocation] = []
    t = 0.0
    for __ in range(rounds):
        order = list(range(num_functions))
        rng.shuffle(order)
        for i in order:
            invocations.append(Invocation(round(t, 6), f"evict-{i:03d}"))
            t += 0.05
    return Trace(functions, invocations, name=name)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def _metrics_payload(result: SimulationResult) -> Dict[str, object]:
    """The deterministic slice of a simulation outcome.

    Integer lifecycle counters plus the headline percentages, with
    floats carried at full ``repr`` precision — any change here is a
    *results* change, not a performance change. Harvest/spot counters
    are dropped while zero (mirroring
    :func:`repro.sim.sweep.point_fingerprint`), so scenarios that
    predate the harvest subsystem keep their pinned fingerprints.
    """
    metrics = result.metrics
    counters = dict(sorted(metrics.counters().items()))
    for key in (
        "capacity_shrinks", "capacity_grows", "eviction_notices",
        "deflations",
    ):
        if not counters.get(key, 0):
            counters.pop(key, None)
    return {
        "counters": counters,
        "cold_start_pct": repr(metrics.cold_start_pct),
        "exec_time_increase_pct": repr(metrics.exec_time_increase_pct),
        "hit_ratio": repr(metrics.hit_ratio),
        "drop_ratio": repr(metrics.drop_ratio),
    }


def fingerprint(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON of a deterministic payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class BenchScenario:
    """One pinned-seed benchmark case.

    ``build(scale)`` constructs the (trace, runner) pair; the runner
    executes one full replay and returns ``(invocations, payload)``
    where ``payload`` is the deterministic fingerprint input. Trace
    construction happens outside the timed region — except for
    streamed scenarios, where chunk generation interleaves with
    replay *by design* and is therefore timed.

    ``memory_budget_mb``, when set, is a hard ceiling on the
    scenario's peak traced allocation during one replay (measured by
    an untimed ``tracemalloc`` pass). It is the enforcement of the
    streaming claim: a full-day trace must never materialize.
    """

    name: str
    description: str
    build: Callable[[float], Tuple[int, Callable[[], Dict[str, object]]]]
    memory_budget_mb: Optional[float] = None


def _scaled(count: int, scale: float, floor: int = 8) -> int:
    return max(floor, int(round(count * scale)))


def _ttl_scenario(scale: float):
    trace = ColumnarTrace.from_trace(
        churn_trace(num_functions=_scaled(1620, scale), seed=_CHURN_SEED_TTL)
    )
    capacity_mb = 2048.0 * 128.0

    def run() -> Dict[str, object]:
        engine = ColumnarReplayEngine("TTL", capacity_mb, ttl_s=300.0)
        payload = _metrics_payload(engine.run(trace))
        if engine.last_path != "vectorized-ttl" and not sanitize_enabled():
            # The slowdown gate would eventually notice, but a silent
            # fallback means a kernel precondition regressed — fail
            # loudly, right here. (Sanitized runs take the sequential
            # path by design, for maximal invariant coverage.)
            raise RuntimeError(
                "ttl_replay_100k fell back to the sequential path"
            )
        return payload

    return len(trace), run


def _hist_scenario(scale: float):
    trace = ColumnarTrace.from_trace(
        churn_trace(
            num_functions=_scaled(1620, scale),
            seed=_CHURN_SEED_HIST,
            name="bench-churn-hist",
        )
    )
    capacity_mb = 2048.0 * 128.0

    def run() -> Dict[str, object]:
        engine = ColumnarReplayEngine("HIST", capacity_mb)
        return _metrics_payload(engine.run(trace))

    return len(trace), run


def _gdsf_scenario(scale: float):
    trace = ColumnarTrace.from_trace(
        eviction_trace(rounds=_scaled(125, scale, floor=2))
    )

    def run() -> Dict[str, object]:
        engine = ColumnarReplayEngine("GD", 24.0 * 1024.0)
        return _metrics_payload(engine.run(trace))

    return len(trace), run


def _ttl_stream_1m_scenario(scale: float):
    # Chunk generation interleaves with replay: the trace is never
    # materialized, which the scenario's memory budget enforces.
    trace = StreamingChurnTrace(
        num_functions=_scaled(2000, scale),
        duration_s=86_400.0,
        seed=_STREAM_SEED_1M,
        name="stream-churn-1m",
    )
    capacity_mb = 4096.0 * 128.0
    invocations = sum(len(times) for times, __ in trace.chunks())

    def run() -> Dict[str, object]:
        engine = ColumnarReplayEngine("TTL", capacity_mb, ttl_s=300.0)
        payload = _metrics_payload(engine.run(trace))
        if engine.last_path != "vectorized-ttl" and not sanitize_enabled():
            raise RuntimeError(
                "ttl_stream_1m fell back to the sequential path"
            )
        return payload

    return invocations, run


def _harvest_scenario(scale: float):
    # Harvested/spot capacity exercises the object simulator (any
    # fault spec routes the columnar engine to its sequential oracle,
    # so the object path is what production harvest runs pay for): a
    # near-full churn pool under periodic harvest shrink/grow steps
    # plus spot evict/restore cycles, stressing graceful deflation's
    # lazy victim-index walks and the deferred-resume path.
    trace = churn_trace(
        num_functions=_scaled(1620, scale),
        seed=_HARVEST_SEED,
        name="bench-harvest",
    )
    capacity_mb = 1800.0 * 128.0
    spec = FaultSpec(
        seed=_HARVEST_SEED,
        harvest_interval_s=600.0,
        harvest_min_frac=0.55,
        harvest_max_frac=0.95,
        spot_mtbf_s=4000.0,
        spot_notice_s=30.0,
    )

    def run() -> Dict[str, object]:
        simulator = KeepAliveSimulator(
            trace, create_policy("GD"), capacity_mb, fault_spec=spec
        )
        return _metrics_payload(simulator.run())

    return len(trace), run


def _live_smoke_scenario(scale: float):
    # The live serving stack end to end (docs/live-serving.md): a
    # sim-clock LivePoolService behind the asyncio HTTP frontend on an
    # ephemeral loopback port, replayed by the pipelined deterministic
    # load generator. The timed figure is whole-stack decisions/s over
    # HTTP; the payload is the engine's counters plus the client's
    # observed outcomes, so the run_suite determinism check holds live
    # mode to the simulator's byte-exact results. Deliberately absent
    # from BASELINE.json's wall-clock gate: loopback scheduling jitter
    # is not a simulation regression.
    trace = churn_trace(
        num_functions=_scaled(160, scale),
        seed=_LIVE_SEED,
        name="bench-live-smoke",
    )
    capacity_mb = 200.0 * 128.0

    def run() -> Dict[str, object]:
        # Imported lazily: the live stack (threading + asyncio) is only
        # touched when this scenario actually runs.
        from repro.core.clock import SimClock
        from repro.live.loadgen import run_loadgen
        from repro.live.server import ServerThread
        from repro.live.service import LivePoolService

        service = LivePoolService(trace, "GD", capacity_mb, clock=SimClock())
        thread = ServerThread(service).start()
        try:
            report = run_loadgen(trace, thread.host, thread.port)
        finally:
            thread.stop()
        if report.errors_5xx or report.completed != len(trace):
            raise RuntimeError(
                f"live_smoke: {report.completed}/{len(trace)} responses, "
                f"statuses {report.statuses}"
            )
        return {
            "counters": {
                k: v for k, v in service.counters().items() if v
            },
            "outcomes": dict(sorted(report.outcomes.items())),
        }

    return len(trace), run


def _sweep_cell_scenario(scale: float):
    trace = churn_trace(
        num_functions=_scaled(160, scale),
        seed=_SWEEP_SEED,
        name="bench-sweep-cell",
    )

    def run() -> Dict[str, object]:
        point = run_cell(trace, "TTL", 8.0 * 1024.0 / GB_MB)
        return {"point": point_fingerprint(point)}

    return len(trace), run


#: The pinned-seed suite, in execution order. TTL exercises the
#: vectorized columnar kernel, HIST and GDSF the batched sequential
#: path (histogram/expiry hot paths and the victim index), the
#: streamed scenario the million-invocation bound-memory claim, the
#: harvest scenario the graceful-deflation path of the object
#: simulator, and the sweep cell covers the run_cell plumbing both
#: sweep engines share.
SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario(
        "ttl_replay_100k",
        "100k-invocation TTL replay, columnar vectorized kernel",
        _ttl_scenario,
    ),
    BenchScenario(
        "hist_replay_100k",
        "100k-invocation HIST replay, histogram plans + prewarms",
        _hist_scenario,
    ),
    BenchScenario(
        "gdsf_replay_100k",
        "100k-invocation GD (GDSF) replay, eviction-heavy (victim index)",
        _gdsf_scenario,
    ),
    BenchScenario(
        "ttl_stream_1m",
        "1.1M-invocation full-day streamed TTL replay, bounded memory",
        _ttl_stream_1m_scenario,
        memory_budget_mb=64.0,
    ),
    BenchScenario(
        "harvest_100k",
        "100k-invocation GD replay under harvest shrink/grow + spot "
        "evictions (graceful deflation hot path)",
        _harvest_scenario,
    ),
    BenchScenario(
        "sweep_cell",
        "one TTL sweep cell through run_cell (engine plumbing)",
        _sweep_cell_scenario,
    ),
    BenchScenario(
        "live_smoke",
        "10k-decision live replay over the asyncio HTTP frontend "
        "(sim-clock determinism, whole-stack decisions/s)",
        _live_smoke_scenario,
    ),
)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


def calibration_s(repeats: int = 3) -> float:
    """Best-of-N timing of a fixed pure-Python workload.

    Baseline comparisons normalize wall clocks by the ratio of the
    current machine's calibration to the baseline machine's, so a
    slower CI runner does not read as a regression.
    """
    best = float("inf")
    for __ in range(repeats):
        started = wall_clock_s()
        acc = 0
        for i in range(2_000_000):
            acc = (acc + i * i) % 1000003
        best = min(best, wall_clock_s() - started)
    return best


def run_suite(
    repeats: int = 3,
    scale: float = 1.0,
    scenarios: Optional[Dict[str, BenchScenario]] = None,
) -> Dict[str, object]:
    """Run every scenario and return the machine-readable report."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    selected = (
        list(SCENARIOS)
        if scenarios is None
        else [s for s in SCENARIOS if s.name in scenarios]
    )
    report: Dict[str, object] = {
        "schema": 1,
        "scale": scale,
        "repeats": repeats,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_s": round(calibration_s(), 6),
        "scenarios": {},
    }
    for scenario in selected:
        invocations, run = scenario.build(scale)
        best_s = float("inf")
        payload: Dict[str, object] = {}
        for __ in range(repeats):
            started = wall_clock_s()
            payload = run()
            best_s = min(best_s, wall_clock_s() - started)
        # One untimed instrumented replay for the peak-allocation
        # figure (tracemalloc roughly doubles runtime, so it never
        # shares a pass with the timings). Doubling as a free
        # determinism check: the instrumented replay must reproduce
        # the timed payload bit for bit.
        tracemalloc.start()
        traced_payload = run()
        __, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        if traced_payload != payload:
            raise RuntimeError(
                f"{scenario.name}: nondeterministic payload across "
                "replays (timed vs instrumented runs disagree)"
            )
        entry: Dict[str, object] = {
            "description": scenario.description,
            "invocations": invocations,
            "best_s": round(best_s, 6),
            "invocations_per_s": round(invocations / best_s, 1),
            "peak_mb": round(peak_bytes / (1024.0 * 1024.0), 3),
            "fingerprint": fingerprint(payload),
            "payload": payload,
        }
        if scenario.memory_budget_mb is not None:
            entry["memory_budget_mb"] = scenario.memory_budget_mb
        report["scenarios"][scenario.name] = entry
    return report


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Failures of ``current`` against ``baseline``; empty means pass.

    Three gates per scenario:

    * **metrics drift** — the deterministic fingerprint must match the
      baseline exactly (compared only at equal ``scale``, since scale
      changes the workload);
    * **slowdown** — ``best_s`` must stay within ``1 + tolerance`` of
      the baseline after normalizing by the calibration ratio;
    * **peak memory** — scenarios that declare ``memory_budget_mb``
      must keep their peak traced allocation under it (absolute, at
      any scale: the streaming bound is the point being gated).
    """
    failures: List[str] = []
    base_cal = float(baseline.get("calibration_s", 0.0))
    cur_cal = float(current.get("calibration_s", 0.0))
    speed_ratio = (cur_cal / base_cal) if base_cal > 0 and cur_cal > 0 else 1.0
    same_scale = current.get("scale") == baseline.get("scale")
    for name, base in baseline.get("scenarios", {}).items():
        cur = current.get("scenarios", {}).get(name)
        if cur is None:
            failures.append(f"{name}: missing from the current run")
            continue
        if same_scale and cur["fingerprint"] != base["fingerprint"]:
            failures.append(
                f"{name}: metrics drift — fingerprint "
                f"{cur['fingerprint'][:12]} != baseline "
                f"{base['fingerprint'][:12]} (simulation results changed)"
            )
        budget_s = float(base["best_s"]) * speed_ratio * (1.0 + tolerance)
        if float(cur["best_s"]) > budget_s:
            failures.append(
                f"{name}: slowdown — {cur['best_s']:.3f}s exceeds "
                f"{budget_s:.3f}s (baseline {base['best_s']:.3f}s x "
                f"speed ratio {speed_ratio:.2f} + {tolerance:.0%} tolerance)"
            )
        memory_budget = cur.get("memory_budget_mb")
        if memory_budget is not None and "peak_mb" in cur:
            if float(cur["peak_mb"]) > float(memory_budget):
                failures.append(
                    f"{name}: peak memory — {cur['peak_mb']:.1f} MB "
                    f"exceeds the {float(memory_budget):.0f} MB budget "
                    f"(the streamed replay materialized its trace?)"
                )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point shared by the CLI subcommand and the script."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-faascache bench",
        description="pinned-seed benchmark suite (docs/performance.md)",
    )
    parser.add_argument(
        "--out", default="BENCH_local.json", help="report output path"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON to compare against (e.g. benchmarks/BASELINE.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown vs the baseline (default 0.10)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed runs per scenario"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier (use < 1 for smoke runs)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="run only this scenario (repeatable)",
    )
    args = parser.parse_args(argv)

    known = {s.name for s in SCENARIOS}
    unknown = [n for n in (args.scenarios or []) if n not in known]
    if unknown:
        parser.error(
            f"unknown scenario(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(known))}"
        )
    selected = (
        None
        if not args.scenarios
        else {name: True for name in args.scenarios}
    )
    report = run_suite(
        repeats=args.repeats, scale=args.scale, scenarios=selected
    )
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    for name, entry in report["scenarios"].items():
        print(
            f"  {name}: {entry['best_s']:.3f}s best "
            f"({entry['invocations_per_s']:,.0f} inv/s, "
            f"peak {entry['peak_mb']:.1f} MB, "
            f"fingerprint {entry['fingerprint'][:12]})"
        )

    if args.baseline is None:
        return 0
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    failures = compare_reports(report, baseline, tolerance=args.tolerance)
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(f"baseline check passed ({args.baseline})")
    return 1 if failures else 0

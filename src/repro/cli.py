"""Command-line interface to the FaasCache reproduction.

Gives downstream users the common workflows without writing Python::

    repro-faascache generate --functions 1000 --out day.json
    repro-faascache simulate --trace day.json --policy GD --memory-gb 16
    repro-faascache sweep --trace day.json --memory-gb 8 16 32
    repro-faascache provision --trace day.json --target-hit-ratio 0.9
    repro-faascache autoscale --trace day.json --miss-ratio 0.05
    repro-faascache loadtest --workload cyclic
    repro-faascache trace --trace day.json --out events.jsonl
    repro-faascache trace-report events.jsonl
    repro-faascache serve --trace day.json --policy GD --port 8077
    repro-faascache loadgen --trace day.json --port 8077 --check-consistency
    repro-faascache check src tests
    repro-faascache bench --baseline benchmarks/BASELINE.json

``--trace`` accepts a JSON trace file (see :mod:`repro.traces.io`) or
one of the built-in workload names (``cyclic``, ``skewed-size``,
``skewed-frequency``, ``multitenant``, ``noisy-neighbor``,
``harvest-day``).

``simulate``, ``sweep``, and ``trace`` take the multi-tenancy flags
(``--tenant-mode``, ``--tenant-quota TENANT=MB``,
``--tenant-weights TENANT=WEIGHT`` — see ``docs/multi-tenancy.md``).

``simulate``, ``sweep``, and ``trace`` additionally accept
``--fault-spec SPEC.json`` for seeded, deterministic fault injection —
see ``docs/robustness.md`` for the spec format and the determinism
guarantees — and ``--sanitize`` to turn on the runtime invariant
sanitizer (equivalent to ``REPRO_SANITIZE=1``; see
``docs/static-analysis.md``). ``check`` runs the determinism &
invariant linter (rules FC001–FC008) over the given paths. ``bench``
runs the pinned-seed benchmark suite and gates timing plus metrics
fingerprints against a baseline report (``docs/performance.md``).
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import List, Optional

from repro.analysis.reporting import format_series_table, format_table
from repro.core.policies import PAPER_POLICIES
from repro.traces.model import Trace

__all__ = ["main", "build_parser"]

_BUILTIN_WORKLOADS = (
    "cyclic",
    "skewed-size",
    "skewed-frequency",
    "multitenant",
    "noisy-neighbor",
    "harvest-day",
)


def _load_trace(spec: str) -> Trace:
    if spec in _BUILTIN_WORKLOADS:
        from repro.traces import synth

        builders = {
            "cyclic": synth.cyclic_trace,
            "skewed-size": synth.skewed_size_trace,
            "skewed-frequency": synth.skewed_frequency_trace,
            "multitenant": synth.multitenant_trace,
            "noisy-neighbor": synth.noisy_neighbor_trace,
            "harvest-day": synth.harvest_day_trace,
        }
        return builders[spec]()
    from repro.traces.io import load_trace_json

    return load_trace_json(spec)


def _load_fault_spec(path: Optional[str]):
    """Load a ``--fault-spec`` JSON file, or ``None`` when not given."""
    if not path:
        return None
    from repro.faults import load_fault_spec

    try:
        return load_fault_spec(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"--fault-spec {path}: {exc}")


def _apply_sanitize(args: argparse.Namespace) -> None:
    """Honour a ``--sanitize`` flag by exporting ``REPRO_SANITIZE=1``.

    Exported (rather than toggled in-process) so parallel sweep worker
    processes inherit the setting.
    """
    if getattr(args, "sanitize", False):
        os.environ["REPRO_SANITIZE"] = "1"


def _add_sanitize_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "enable the runtime invariant sanitizer (same as "
            "REPRO_SANITIZE=1; see docs/static-analysis.md)"
        ),
    )


def _add_tenant_flags(parser: argparse.ArgumentParser) -> None:
    """Multi-tenancy flags shared by simulate/sweep/trace
    (docs/multi-tenancy.md)."""
    parser.add_argument(
        "--tenant-mode",
        choices=("shared", "partitioned", "quota"),
        default="shared",
        help=(
            "pool tenancy mode: shared (legacy, default), partitioned "
            "(hard per-tenant slices), or quota (soft limits with "
            "preferential eviction)"
        ),
    )
    parser.add_argument(
        "--tenant-quota",
        nargs="*",
        metavar="TENANT=MB",
        help=(
            "per-tenant memory limit (slice in partitioned mode, soft "
            "quota in quota mode); omit to split capacity equally over "
            "the trace's tenants"
        ),
    )
    parser.add_argument(
        "--tenant-weights",
        nargs="*",
        metavar="TENANT=WEIGHT",
        help=(
            "per-tenant multiplicative weight on the GD value term "
            "(only meaningful with GD-family policies)"
        ),
    )


def _parse_tenant_map(
    specs: Optional[List[str]], flag: str
) -> Optional[dict]:
    """Parse repeated ``TENANT=NUMBER`` arguments into an int->float
    map (``None`` when the flag was not given)."""
    if not specs:
        return None
    parsed = {}
    for spec in specs:
        tenant, sep, value = spec.partition("=")
        if not sep or not tenant:
            raise SystemExit(f"{flag} expects TENANT=NUMBER, got {spec!r}")
        try:
            number = float(value)
            key = int(tenant)
        except ValueError:
            raise SystemExit(
                f"{flag}: tenant must be an integer and the value a "
                f"number, got {spec!r}"
            )
        # A NaN weight silently corrupts the GDSF monotone-priority
        # index (NaN compares false against everything) and a negative
        # quota/weight inverts eviction order, so both die here rather
        # than deep in a replay.
        if not math.isfinite(number) or number < 0.0:
            raise SystemExit(
                f"{flag}: value must be finite and >= 0, got {spec!r}"
            )
        parsed[key] = number
    return parsed


def _tenant_policy_kwargs(args: argparse.Namespace) -> dict:
    """Policy kwargs implied by ``--tenant-weights`` (empty when the
    flag is absent, so tenant-less invocations stay untouched)."""
    weights = _parse_tenant_map(args.tenant_weights, "--tenant-weights")
    return {"tenant_weights": weights} if weights else {}


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the pinned-seed benchmark suite (repro.bench)."""
    from repro.bench import main as bench_main

    forwarded: List[str] = ["--out", args.out]
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    forwarded += ["--tolerance", str(args.tolerance)]
    forwarded += ["--repeats", str(args.repeats)]
    forwarded += ["--scale", str(args.scale)]
    for name in args.scenarios or []:
        forwarded += ["--scenario", name]
    return bench_main(forwarded)


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the determinism & invariant linter (repro.checks)."""
    from repro.checks.linter import main as check_main

    forwarded: List[str] = list(args.paths)
    if args.select:
        forwarded += ["--select", args.select]
    if args.include_fixtures:
        forwarded.append("--include-fixtures")
    if args.stats:
        forwarded.append("--stats")
    if args.stats_json:
        forwarded += ["--stats-json", args.stats_json]
    if args.format != "text":
        forwarded += ["--format", args.format]
    if args.output:
        forwarded += ["--output", args.output]
    if args.fix:
        forwarded.append("--fix")
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.cache_path:
        forwarded += ["--cache-path", args.cache_path]
    return check_main(forwarded)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
    from repro.traces.io import save_trace_json
    from repro.traces.preprocess import dataset_to_trace
    from repro.traces.sampling import (
        random_sample,
        rare_sample,
        representative_sample,
    )

    config = AzureGeneratorConfig(
        num_functions=args.functions,
        max_daily_invocations=args.max_daily_invocations,
    )
    dataset = generate_azure_dataset(config, seed=args.seed)
    samplers = {
        "full": None,
        "rare": rare_sample,
        "representative": representative_sample,
        "random": random_sample,
    }
    sampler = samplers[args.sample]
    if sampler is None:
        trace = dataset_to_trace(dataset, name="full-day")
    else:
        ids = sampler(dataset, n=args.sample_size, seed=args.seed)
        trace = dataset_to_trace(dataset, ids, name=args.sample)
    save_trace_json(trace, args.out)
    print(
        f"wrote {args.out}: {trace.num_functions} functions, "
        f"{len(trace)} invocations, {trace.duration_s / 3600:.1f} h"
    )
    return 0


def _make_tracer(
    trace_out: Optional[str],
    metrics_out: Optional[str],
    strict: bool = False,
):
    """Build a tracer over the sinks the CLI flags ask for.

    Returns ``(tracer, close)``; both are no-ops (``None`` and a
    do-nothing callable) when no output was requested, so callers can
    thread the result through unconditionally.
    """
    from repro.obs.sinks import JsonlSink, MultiSink, PrometheusTextfileSink
    from repro.obs.tracer import Tracer

    sinks = []
    if trace_out:
        sinks.append(JsonlSink(trace_out, eager=True))
    if metrics_out:
        sinks.append(PrometheusTextfileSink(metrics_out))
    if not sinks:
        return None, lambda: None
    sink = sinks[0] if len(sinks) == 1 else MultiSink(*sinks)
    return Tracer(sink, strict=strict), sink.close


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.scheduler import simulate

    _apply_sanitize(args)
    trace = _load_trace(args.trace)
    fault_spec = _load_fault_spec(args.fault_spec)
    tracer, close_tracer = _make_tracer(args.trace_out, args.metrics_out)
    try:
        result = simulate(
            trace,
            args.policy,
            args.memory_gb * 1024.0,
            warmup_s=args.warmup_s,
            reserved_concurrency=_parse_reserved(args.reserve),
            tracer=tracer,
            fault_spec=fault_spec,
            engine=args.engine,
            tenant_mode=args.tenant_mode,
            tenant_quotas=_parse_tenant_map(
                args.tenant_quota, "--tenant-quota"
            ),
            **_tenant_policy_kwargs(args),
        )
    finally:
        close_tracer()
    if args.trace_out:
        print(f"wrote event trace {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        print(f"wrote metrics textfile {args.metrics_out}", file=sys.stderr)
    rows = [[key, value] for key, value in result.metrics.summary().items()]
    for key, value in result.metrics.throughput_summary().items():
        rows.append([key, round(value, 3)])
    print(
        format_table(
            ["Metric", "Value"],
            rows,
            title=(
                f"{args.policy.upper()} on {trace.name!r} "
                f"at {args.memory_gb:g} GB"
            ),
        )
    )
    return 0


def _parse_reserved(specs: Optional[List[str]]) -> Optional[dict]:
    """Parse ``NAME=COUNT`` reserved-concurrency arguments."""
    if not specs:
        return None
    reserved = {}
    for spec in specs:
        name, sep, count = spec.partition("=")
        if not sep or not name:
            raise SystemExit(f"--reserve expects NAME=COUNT, got {spec!r}")
        try:
            reserved[name] = int(count)
        except ValueError:
            raise SystemExit(f"--reserve count must be an integer: {spec!r}")
    return reserved


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sim.parallel import run_sweep_parallel
    from repro.sim.sweep import run_sweep

    _apply_sanitize(args)
    trace = _load_trace(args.trace)
    fault_spec = _load_fault_spec(args.fault_spec)
    policies = args.policies or list(PAPER_POLICIES)
    tenant_quotas = _parse_tenant_map(args.tenant_quota, "--tenant-quota")
    policy_kwargs = _tenant_policy_kwargs(args) or None
    if args.workers is not None and args.workers != 1:
        def report(done: int, total: int, policy: str, memory_gb: float) -> None:
            print(
                f"[{done}/{total}] {policy} @ {memory_gb:g} GB",
                file=sys.stderr,
            )

        sweep = run_sweep_parallel(
            trace,
            args.memory_gb,
            policies=policies,
            max_workers=args.workers or None,
            progress=report if not args.quiet else None,
            trace_dir=args.trace_dir,
            fault_spec=fault_spec,
            tenant_mode=args.tenant_mode,
            tenant_quotas=tenant_quotas,
            policy_kwargs=policy_kwargs,
        )
        for cell in sweep.failed_cells:
            print(
                f"warning: cell {cell.policy} @ {cell.memory_gb:g} GB "
                f"failed: {cell.error}",
                file=sys.stderr,
            )
    else:
        sweep = run_sweep(
            trace, args.memory_gb, policies=policies,
            trace_dir=args.trace_dir, fault_spec=fault_spec,
            tenant_mode=args.tenant_mode, tenant_quotas=tenant_quotas,
            policy_kwargs=policy_kwargs,
        )
    if args.trace_dir:
        print(
            f"wrote per-cell event traces under {args.trace_dir}",
            file=sys.stderr,
        )
    if args.metrics_out:
        from repro.obs.sinks import write_counters_textfile

        write_counters_textfile(
            args.metrics_out,
            [
                (
                    {"policy": p.policy, "memory_gb": f"{p.memory_gb:g}"},
                    p.counters,
                )
                for p in sweep.points
            ],
        )
        print(f"wrote metrics textfile {args.metrics_out}", file=sys.stderr)
    metric = args.metric
    sizes = sweep.memory_sizes()
    # Align each policy's column to the full memory grid: failed cells
    # leave holes (rendered as nan) and a fully-failed policy drops
    # out of the table instead of crashing the formatter.
    series = {}
    for policy in policies:
        values = dict(sweep.series(policy, metric))
        if values:
            series[policy] = [values.get(gb, float("nan")) for gb in sizes]
    print(
        format_series_table(
            "Mem (GB)",
            sizes,
            series,
            title=f"{metric} on {trace.name!r}",
        )
    )
    if sweep.points:
        total_wall = sum(p.wall_time_s for p in sweep.points)
        total_inv = sum(
            p.wall_time_s * p.invocations_per_s for p in sweep.points
        )
        rate = total_inv / total_wall if total_wall > 0 else 0.0
        print(
            f"{len(sweep.points)} cells in {total_wall:.2f} s simulator "
            f"time ({rate:,.0f} invocations/s)"
        )
    if sweep.failed_cells:
        print(f"{len(sweep.failed_cells)} cells FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_provision(args: argparse.Namespace) -> int:
    from repro.provisioning.static_provisioning import (
        StaticProvisioner,
        curve_from_trace,
    )

    trace = _load_trace(args.trace)
    curve = curve_from_trace(trace)
    print(
        f"working set {curve.working_set_mb / 1024:.2f} GB, "
        f"max hit ratio {curve.max_hit_ratio:.1%}"
    )
    rows = []
    for strategy in ("target-hit-ratio", "inflection"):
        provisioner = StaticProvisioner(
            curve,
            strategy=strategy,
            target_hit_ratio=args.target_hit_ratio,
        )
        decision = provisioner.decide()
        rows.append(
            [strategy, decision.memory_gb, decision.predicted_hit_ratio]
        )
    print(
        format_table(
            ["Strategy", "Size (GB)", "Predicted hit ratio"],
            rows,
            title="Static provisioning decisions",
        )
    )
    return 0


def _cmd_autoscale(args: argparse.Namespace) -> int:
    from repro.provisioning.autoscale import AutoscaledSimulation
    from repro.provisioning.controller import ProportionalController
    from repro.provisioning.static_provisioning import curve_from_trace

    trace = _load_trace(args.trace)
    curve = curve_from_trace(trace)
    static_mb = curve.required_size(min(0.95, curve.max_hit_ratio))
    controller = ProportionalController.from_miss_ratio_target(
        curve,
        desired_miss_ratio=args.miss_ratio,
        mean_arrival_rate=trace.arrival_rate(),
        initial_size_mb=static_mb,
        max_size_mb=static_mb,
        control_period_s=args.period_s,
    )
    result = AutoscaledSimulation(trace, controller, policy=args.policy).run()
    print(
        format_table(
            ["Static (GB)", "Mean dynamic (GB)", "Saving", "Resizes"],
            [[
                static_mb / 1024.0,
                result.mean_cache_size_mb / 1024.0,
                f"{result.savings_vs_static(static_mb):.1%}",
                sum(1 for d in result.decisions if d.resized),
            ]],
            title=f"Autoscaling {trace.name!r}",
        )
    )
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.openwhisk.invoker import InvokerConfig
    from repro.openwhisk.loadgen import compare_keepalive_systems

    trace = _load_trace(args.workload)
    config = InvokerConfig(
        memory_mb=args.memory_gb * 1024.0,
        cpu_cores=args.cores,
    )
    cmp = compare_keepalive_systems(trace, config)
    rows = []
    for label, result in (
        ("OpenWhisk", cmp.openwhisk),
        ("FaasCache", cmp.faascache),
    ):
        rows.append(
            [
                label,
                result.warm_starts,
                result.cold_starts,
                result.dropped,
                result.mean_latency_s(),
            ]
        )
    print(
        format_table(
            ["System", "Warm", "Cold", "Dropped", "Mean latency (s)"],
            rows,
            title=f"Load test on {trace.name!r}",
        )
    )
    print(
        f"warm-start gain x{cmp.warm_start_gain:.2f}, "
        f"latency improvement x{cmp.latency_improvement:.2f}"
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.provisioning.report import (
        build_capacity_plan,
        render_capacity_plan,
    )

    trace = _load_trace(args.trace)
    plan = build_capacity_plan(trace)
    text = render_capacity_plan(plan)
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.analysis.workload import profile_trace

    trace = _load_trace(args.trace)
    profile = profile_trace(trace)
    print(
        format_table(
            ["Statistic", "Value"],
            profile.rows(),
            title=f"Workload characterization: {trace.name!r}",
        )
    )
    return 0


def _cmd_balancers(args: argparse.Namespace) -> int:
    from repro.cluster.simulation import ClusterSimulator

    trace = _load_trace(args.trace)
    rows = []
    for balancer in (
        "random",
        "round-robin",
        "least-loaded",
        "hash-affinity",
        "affinity-spillover",
        "min-worker-set",
        "join-shortest-queue",
    ):
        result = ClusterSimulator(
            trace,
            balancer,
            num_servers=args.servers,
            server_memory_mb=args.server_memory_gb * 1024.0,
            policy=args.policy,
        ).run()
        rows.append(
            [
                balancer,
                result.cold_start_pct,
                result.exec_time_increase_pct,
                result.dropped,
                result.load_imbalance(),
            ]
        )
    print(
        format_table(
            ["Balancer", "Cold %", "Exec incr. %", "Dropped", "Imbalance"],
            rows,
            title=(
                f"{args.servers} x {args.server_memory_gb:g} GB servers, "
                f"{args.policy.upper()} keep-alive"
            ),
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Replay one simulation with event tracing on, writing JSONL."""
    import json

    from repro.sim.scheduler import simulate

    _apply_sanitize(args)
    trace = _load_trace(args.trace)
    fault_spec = _load_fault_spec(args.fault_spec)
    tracer, close_tracer = _make_tracer(
        args.out, args.metrics_out, strict=args.strict
    )
    try:
        result = simulate(
            trace, args.policy, args.memory_gb * 1024.0, tracer=tracer,
            fault_spec=fault_spec,
            tenant_mode=args.tenant_mode,
            tenant_quotas=_parse_tenant_map(
                args.tenant_quota, "--tenant-quota"
            ),
            **_tenant_policy_kwargs(args),
        )
    finally:
        close_tracer()
    metrics = result.metrics
    print(
        f"wrote {args.out}: {metrics.total_requests} invocations traced "
        f"({args.policy.upper()} @ {args.memory_gb:g} GB on {trace.name!r})"
    )
    if args.metrics_out:
        print(f"wrote metrics textfile {args.metrics_out}", file=sys.stderr)
    if args.summary_json:
        summary = {
            "trace": args.trace,
            "policy": args.policy.upper(),
            "memory_gb": args.memory_gb,
            "counters": metrics.counters(),
            "summary": metrics.summary(),
        }
        tenant_counters = metrics.tenant_counters()
        if tenant_counters:
            # String keys so the snapshot JSON-round-trips unchanged;
            # omitted entirely on tenant-less runs so their summaries
            # stay byte-identical to pre-tenancy output.
            summary["tenant_counters"] = {
                str(tenant_id): counts
                for tenant_id, counts in tenant_counters.items()
            }
        import pathlib

        pathlib.Path(args.summary_json).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote summary {args.summary_json}", file=sys.stderr)
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    """Summarize (and optionally cross-check) a JSONL event trace."""
    import json

    from repro.obs.report import load_report

    report = load_report(args.trace_file)
    if args.function:
        try:
            timeline = report.timeline(args.function)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        print(f"timeline for {args.function!r} ({len(timeline)} events):")
        for time_s, event_type in timeline.events:
            print(f"  {time_s:>12.3f}  {event_type}")
        counts = ", ".join(
            f"{k}={v}" for k, v in sorted(timeline.counts().items())
        )
        print(f"  totals: {counts}")
    else:
        print(report.render(top_n=args.top))
    if args.check:
        with open(args.check) as handle:
            expected = json.load(handle)
        # Accept both a bare counter dict and the `trace` subcommand's
        # summary JSON (counters nested under "counters").
        counters = expected.get("counters", expected)
        mismatches = report.check_counters(counters)
        # Summaries from tenant-aware runs also pin the per-tenant
        # counters (JSON string keys -> int tenant ids).
        expected_tenants = (
            expected.get("tenant_counters")
            if isinstance(expected.get("tenant_counters"), dict)
            else None
        )
        if expected_tenants is not None:
            mismatches += report.check_tenant_counters(
                {
                    int(tenant_id): counts
                    for tenant_id, counts in expected_tenants.items()
                }
            )
        if mismatches:
            print(
                f"TRACE/METRICS MISMATCH ({len(mismatches)}):",
                file=sys.stderr,
            )
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
            return 1
        checked = len(counters) + (
            len(expected_tenants) if expected_tenants is not None else 0
        )
        print(
            f"trace agrees with {args.check} on all "
            f"{checked} counters"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the live HTTP serving mode (docs/live-serving.md)."""
    import asyncio

    from repro.core.clock import SimClock
    from repro.live.server import LiveHTTPServer
    from repro.live.service import LivePoolService

    trace = _load_trace(args.trace)
    tracer, close_tracer = _make_tracer(args.trace_out, args.metrics_out)
    service = LivePoolService(
        trace,
        args.policy,
        args.memory_gb * 1024.0,
        clock=SimClock() if args.clock == "sim" else None,
        tracer=tracer,
        tenant_mode=args.tenant_mode,
        tenant_quotas=_parse_tenant_map(args.tenant_quota, "--tenant-quota"),
        **_tenant_policy_kwargs(args),
    )
    server = LiveHTTPServer(
        service,
        host=args.host,
        port=args.port,
        tick_interval_s=args.tick_interval_s,
    )

    def announce(started: LiveHTTPServer) -> None:
        print(
            f"serving {args.policy.upper()} on {trace.name!r} "
            f"({len(service.function_names())} functions, "
            f"{args.memory_gb:g} GB, clock={args.clock}) at "
            f"http://{started.host}:{started.port}",
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(server.serve_forever(on_ready=announce))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        close_tracer()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Replay a trace against a live server and gate the results."""
    from repro.live.loadgen import fetch_stats, run_loadgen

    trace = _load_trace(args.trace)
    report = run_loadgen(
        trace,
        args.host,
        args.port,
        mode=args.mode,
        connections=args.connections,
        window=args.window,
        speed=args.speed,
        duration_s=args.duration_s,
        limit=args.limit,
        send_now=(args.mode == "pipeline" and not args.real_clock),
    )
    summary = report.summary()
    rows = [
        ["sent", report.sent],
        ["completed", report.completed],
        ["achieved qps", round(report.achieved_qps, 1)],
        ["wall s", round(report.wall_s, 3)],
    ]
    for outcome, count in sorted(report.outcomes.items()):
        rows.append([f"outcome {outcome}", count])
    for code, count in sorted(report.statuses.items()):
        rows.append([f"http {code}", count])
    for side in ("client_latency", "decision_latency"):
        for pct in ("p50_us", "p99_us", "p999_us"):
            rows.append(
                [f"{side} {pct}", round(summary[side][pct], 1)]
            )
    print(
        format_table(
            ["Metric", "Value"],
            rows,
            title=f"loadgen {args.mode} vs {args.host}:{args.port}",
        )
    )
    if args.json_out:
        import json

        with open(args.json_out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}", file=sys.stderr)

    failures = []
    if report.errors_5xx:
        failures.append(f"{report.errors_5xx} responses were 5xx")
        for line in report.errors[:5]:
            failures.append(f"  {line}")
    if args.check_consistency:
        stats = fetch_stats(args.host, args.port)
        server_decisions = stats.get("decisions", {})
        if server_decisions != report.outcomes:
            failures.append(
                "counter mismatch: server /stats decisions "
                f"{server_decisions} != client outcomes {report.outcomes} "
                "(is another client hitting this server?)"
            )
        else:
            print(
                f"server /stats agrees with the client on all "
                f"{sum(report.outcomes.values())} decisions"
            )
    if args.max_p99_ms is not None:
        ceiling_ms = args.max_p99_ms
        if args.calibration_baseline:
            import json

            from repro.bench import calibration_s

            with open(args.calibration_baseline) as handle:
                base_cal = float(json.load(handle).get("calibration_s", 0.0))
            cur_cal = calibration_s()
            if base_cal > 0.0 and cur_cal > 0.0:
                # Slower machine -> proportionally higher ceiling
                # (never a lower one), mirroring bench-regression.
                ceiling_ms *= max(1.0, cur_cal / base_cal)
        p99_ms = report.decision_latency.percentile(0.99) * 1e3
        if p99_ms > ceiling_ms:
            failures.append(
                f"decision p99 {p99_ms:.2f} ms exceeds the "
                f"{ceiling_ms:.2f} ms ceiling"
            )
        else:
            print(
                f"decision p99 {p99_ms:.3f} ms within the "
                f"{ceiling_ms:.2f} ms ceiling"
            )
    if failures:
        print("LOADGEN GATE FAILURES:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-faascache",
        description="FaasCache reproduction: keep-alive simulation tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic trace")
    generate.add_argument("--functions", type=int, default=1000)
    generate.add_argument("--max-daily-invocations", type=int, default=20_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--sample",
        choices=("full", "rare", "representative", "random"),
        default="representative",
    )
    generate.add_argument("--sample-size", type=int, default=400)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_generate)

    simulate = sub.add_parser("simulate", help="run one keep-alive simulation")
    simulate.add_argument("--trace", required=True)
    simulate.add_argument("--policy", default="GD")
    simulate.add_argument("--memory-gb", type=float, default=16.0)
    simulate.add_argument(
        "--warmup-s",
        type=float,
        default=0.0,
        help="exclude invocations before this time from the metrics",
    )
    simulate.add_argument(
        "--reserve",
        nargs="*",
        metavar="NAME=COUNT",
        help="pin NAME=COUNT provisioned-concurrency containers",
    )
    simulate.add_argument(
        "--trace-out",
        metavar="EVENTS.jsonl",
        help="also record lifecycle events to this JSONL file",
    )
    simulate.add_argument(
        "--metrics-out",
        metavar="METRICS.prom",
        help="also write Prometheus-textfile counters to this path",
    )
    simulate.add_argument(
        "--fault-spec",
        metavar="SPEC.json",
        help=(
            "inject deterministic faults per this JSON spec "
            "(see docs/robustness.md)"
        ),
    )
    simulate.add_argument(
        "--engine",
        choices=("object", "columnar"),
        default="object",
        help=(
            "replay engine: per-invocation object simulator (default) "
            "or the batched columnar engine (identical metrics; see "
            "docs/performance.md)"
        ),
    )
    _add_tenant_flags(simulate)
    _add_sanitize_flag(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    sweep = sub.add_parser("sweep", help="sweep policies across memory sizes")
    sweep.add_argument("--trace", required=True)
    sweep.add_argument("--memory-gb", type=float, nargs="+", required=True)
    sweep.add_argument("--policies", nargs="*")
    sweep.add_argument(
        "--metric",
        default="exec_time_increase_pct",
        choices=("exec_time_increase_pct", "cold_start_pct", "drop_ratio"),
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "fan the grid out over worker processes (0 = one per CPU); "
            "omit or pass 1 for the sequential engine"
        ),
    )
    sweep.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-cell progress lines on stderr",
    )
    sweep.add_argument(
        "--trace-dir",
        metavar="DIR",
        help=(
            "record lifecycle events to one JSONL file per (policy, "
            "memory) cell under DIR; works with any --workers setting"
        ),
    )
    sweep.add_argument(
        "--metrics-out",
        metavar="METRICS.prom",
        help=(
            "write per-cell lifecycle counters (labelled by policy and "
            "memory size) as a Prometheus textfile"
        ),
    )
    sweep.add_argument(
        "--fault-spec",
        metavar="SPEC.json",
        help=(
            "inject deterministic faults into every cell, each under "
            "its own coordinate-derived seed (see docs/robustness.md)"
        ),
    )
    _add_tenant_flags(sweep)
    _add_sanitize_flag(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    provision = sub.add_parser("provision", help="static server sizing")
    provision.add_argument("--trace", required=True)
    provision.add_argument("--target-hit-ratio", type=float, default=0.9)
    provision.set_defaults(func=_cmd_provision)

    autoscale = sub.add_parser("autoscale", help="dynamic vertical scaling")
    autoscale.add_argument("--trace", required=True)
    autoscale.add_argument("--miss-ratio", type=float, default=0.05)
    autoscale.add_argument("--period-s", type=float, default=600.0)
    autoscale.add_argument("--policy", default="GD")
    autoscale.set_defaults(func=_cmd_autoscale)

    plan = sub.add_parser(
        "plan", help="full capacity-planning report (Markdown)"
    )
    plan.add_argument("--trace", required=True)
    plan.add_argument("--out")
    plan.set_defaults(func=_cmd_plan)

    characterize = sub.add_parser(
        "characterize", help="Section 3 workload statistics"
    )
    characterize.add_argument("--trace", required=True)
    characterize.set_defaults(func=_cmd_characterize)

    balancers = sub.add_parser(
        "balancers", help="compare cluster load-balancing policies"
    )
    balancers.add_argument("--trace", required=True)
    balancers.add_argument("--servers", type=int, default=4)
    balancers.add_argument("--server-memory-gb", type=float, default=4.0)
    balancers.add_argument("--policy", default="GD")
    balancers.set_defaults(func=_cmd_balancers)

    loadtest = sub.add_parser(
        "loadtest", help="OpenWhisk vs FaasCache on the simulated invoker"
    )
    loadtest.add_argument(
        "--workload", default="cyclic",
    )
    loadtest.add_argument("--memory-gb", type=float, default=1.625)
    loadtest.add_argument("--cores", type=int, default=8)
    loadtest.set_defaults(func=_cmd_loadtest)

    trace_cmd = sub.add_parser(
        "trace", help="run one simulation with event tracing enabled"
    )
    trace_cmd.add_argument("--trace", required=True)
    trace_cmd.add_argument("--policy", default="GD")
    trace_cmd.add_argument("--memory-gb", type=float, default=16.0)
    trace_cmd.add_argument(
        "--out",
        required=True,
        metavar="EVENTS.jsonl",
        help="JSONL file the lifecycle events are written to",
    )
    trace_cmd.add_argument(
        "--summary-json",
        metavar="SUMMARY.json",
        help=(
            "also write the run's aggregate counters/metrics as JSON "
            "(the file trace-report --check verifies against)"
        ),
    )
    trace_cmd.add_argument(
        "--metrics-out",
        metavar="METRICS.prom",
        help="also write Prometheus-textfile counters to this path",
    )
    trace_cmd.add_argument(
        "--strict",
        action="store_true",
        help="validate every event against the schema while emitting",
    )
    trace_cmd.add_argument(
        "--fault-spec",
        metavar="SPEC.json",
        help=(
            "inject deterministic faults per this JSON spec "
            "(see docs/robustness.md)"
        ),
    )
    _add_tenant_flags(trace_cmd)
    _add_sanitize_flag(trace_cmd)
    trace_cmd.set_defaults(func=_cmd_trace)

    trace_report = sub.add_parser(
        "trace-report", help="summarize a recorded JSONL event trace"
    )
    trace_report.add_argument(
        "trace_file", metavar="EVENTS.jsonl", help="trace to analyze"
    )
    trace_report.add_argument(
        "--check",
        metavar="SUMMARY.json",
        help=(
            "verify the trace's rebuilt counters against a summary "
            "JSON (from `trace --summary-json`); exit 1 on mismatch"
        ),
    )
    trace_report.add_argument(
        "--function",
        metavar="NAME",
        help="print one function's event timeline instead of the report",
    )
    trace_report.add_argument(
        "--top",
        type=int,
        default=10,
        help="functions to list in the eviction-churn table",
    )
    trace_report.set_defaults(func=_cmd_trace_report)

    serve = sub.add_parser(
        "serve",
        help=(
            "serve live warm/cold admission decisions over HTTP with "
            "the same policy engine the simulator uses "
            "(docs/live-serving.md)"
        ),
    )
    serve.add_argument("--trace", required=True, help="function registry")
    serve.add_argument("--policy", default="GD")
    serve.add_argument("--memory-gb", type=float, default=16.0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8077, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--clock",
        choices=("real", "sim"),
        default="real",
        help=(
            "real: the server stamps arrivals from the wall clock "
            "(production mode); sim: clients drive time via each "
            "request's now_s (deterministic replay target)"
        ),
    )
    serve.add_argument(
        "--tick-interval-s",
        type=float,
        default=0.25,
        help="expiry-timer period; 0 disables the background tick",
    )
    serve.add_argument(
        "--trace-out",
        metavar="EVENTS.jsonl",
        help="record lifecycle events (JSONL, repro.obs schema)",
    )
    serve.add_argument(
        "--metrics-out",
        metavar="PROM.txt",
        help="write a Prometheus textfile on shutdown",
    )
    _add_tenant_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help=(
            "replay a trace against a live server and report "
            "p50/p99/p999 decision latency plus achieved QPS"
        ),
    )
    loadgen.add_argument("--trace", required=True)
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8077)
    loadgen.add_argument(
        "--mode",
        choices=("pipeline", "openloop"),
        default="pipeline",
        help=(
            "pipeline: ordered deterministic replay over one "
            "connection; openloop: arrivals scheduled on the wall "
            "clock across --connections sockets"
        ),
    )
    loadgen.add_argument(
        "--connections", type=int, default=4, help="open-loop sockets"
    )
    loadgen.add_argument(
        "--window", type=int, default=256, help="pipeline in-flight depth"
    )
    loadgen.add_argument(
        "--speed",
        type=float,
        default=3600.0,
        help=(
            "open-loop time compression: trace seconds replayed per "
            "wall second (3600 = one trace-hour per second)"
        ),
    )
    loadgen.add_argument(
        "--duration-s",
        type=float,
        help="open-loop wall-clock budget; truncates the replay",
    )
    loadgen.add_argument(
        "--limit", type=int, help="replay only the first N invocations"
    )
    loadgen.add_argument(
        "--real-clock",
        action="store_true",
        help=(
            "do not send per-request now_s in pipeline mode (use "
            "against a --clock real server)"
        ),
    )
    loadgen.add_argument(
        "--check-consistency",
        action="store_true",
        help=(
            "fetch /stats afterwards and fail unless the server's "
            "decision counters equal the client's observed outcomes"
        ),
    )
    loadgen.add_argument(
        "--max-p99-ms",
        type=float,
        help="fail if the p99 in-engine decision latency exceeds this",
    )
    loadgen.add_argument(
        "--calibration-baseline",
        metavar="BASELINE.json",
        help=(
            "scale --max-p99-ms by this bench report's machine "
            "calibration (like the bench-regression gate)"
        ),
    )
    loadgen.add_argument(
        "--json-out", metavar="REPORT.json", help="write the summary JSON"
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    bench = sub.add_parser(
        "bench",
        help=(
            "run the pinned-seed benchmark suite and optionally gate "
            "against a baseline (docs/performance.md)"
        ),
    )
    bench.add_argument(
        "--out", default="BENCH_local.json", help="report output path"
    )
    bench.add_argument(
        "--baseline",
        metavar="BASELINE.json",
        help=(
            "compare against this report (e.g. benchmarks/BASELINE.json); "
            "exit 1 on slowdown beyond tolerance or metrics drift"
        ),
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown vs the baseline (default 0.10)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3, help="timed runs per scenario"
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier (use < 1 for smoke runs)",
    )
    bench.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="run only this scenario (repeatable)",
    )
    bench.set_defaults(func=_cmd_bench)

    check = sub.add_parser(
        "check",
        help=(
            "run the determinism & invariant linter "
            "(rules FC001-FC011, docs/static-analysis.md)"
        ),
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    check.add_argument(
        "--select",
        metavar="FC001,FC002,...",
        help="only run these rule codes",
    )
    check.add_argument(
        "--include-fixtures",
        action="store_true",
        help=(
            "also lint the deliberately-broken fixtures under "
            "tests/fixtures/checks/"
        ),
    )
    check.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule counts, including suppressed (noqa) findings",
    )
    check.add_argument(
        "--stats-json",
        metavar="PATH",
        help="write machine-readable run stats to PATH",
    )
    check.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="findings output format (default: text)",
    )
    check.add_argument(
        "--output",
        metavar="PATH",
        help="write findings to PATH instead of stdout",
    )
    check.add_argument(
        "--fix",
        action="store_true",
        help="apply the mechanical autofixes (FC007/FC008) first",
    )
    check.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental result cache",
    )
    check.add_argument(
        "--cache-path",
        metavar="PATH",
        default=None,
        help="incremental cache location "
        "(default: .repro-checks-cache.json)",
    )
    check.set_defaults(func=_cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

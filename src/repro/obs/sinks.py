"""Pluggable trace sinks: where emitted events go.

A sink is anything with ``emit(event)``, ``flush()`` and ``close()``.
Three implementations cover the usual consumers:

* :class:`RingBufferSink` — a bounded in-memory window, for tests and
  for always-on flight recording (keep the last N events, pay nothing
  for the rest).
* :class:`JsonlSink` — one JSON document per line, the interchange
  format of the CLI's ``trace`` / ``trace-report`` subcommands and of
  :mod:`repro.obs.report`.
* :class:`PrometheusTextfileSink` — aggregates events into counters
  and histograms and renders them in the Prometheus text exposition
  format on flush, suitable for the node-exporter textfile collector.

Sinks hold process-local resources (file handles, buffers). They are
deliberately **not** picklable: a sink must never be silently shared
across processes (see ``run_sweep_parallel``'s ``trace_dir``, which
re-opens JSONL sinks by *path* inside each worker instead).
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "Sink",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "PrometheusTextfileSink",
    "MultiSink",
    "read_jsonl_events",
    "write_counters_textfile",
]

PathLike = Union[str, pathlib.Path]
Event = Mapping[str, Any]


class Sink:
    """Base sink: emit events, flush buffered state, release resources."""

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Persist buffered state (no-op by default)."""

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __reduce__(self):
        raise TypeError(
            f"{type(self).__name__} holds process-local state and cannot "
            "be pickled; pass a path (e.g. run_sweep_parallel's "
            "trace_dir) and re-open the sink inside each worker instead"
        )


class NullSink(Sink):
    """Discards everything. Useful for measuring emission overhead."""

    def emit(self, event: Event) -> None:
        pass


class RingBufferSink(Sink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.total_emitted = 0

    def emit(self, event: Event) -> None:
        self._events.append(dict(event))
        self.total_emitted += 1

    @property
    def dropped(self) -> int:
        """Events pushed out of the window since creation."""
        return self.total_emitted - len(self._events)

    def snapshot(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.snapshot())


class JsonlSink(Sink):
    """Appends each event as one JSON line to ``path``.

    The file is opened lazily on the first event, so constructing a
    sink for a run that never emits leaves no empty file behind unless
    ``eager=True`` (the CLI uses eager mode so an empty trace is still
    a valid, empty JSONL file).
    """

    def __init__(self, path: PathLike, eager: bool = False) -> None:
        self.path = pathlib.Path(path)
        self._handle = None
        self.events_written = 0
        if eager:
            self._open()

    def _open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w")
        return self._handle

    def emit(self, event: Event) -> None:
        self._open().write(json.dumps(event, separators=(",", ":")) + "\n")
        self.events_written += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_jsonl_events(path: PathLike) -> Iterator[Dict[str, Any]]:
    """Stream events back from a :class:`JsonlSink` file.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "t.jsonl")
    >>> with JsonlSink(path) as sink:
    ...     sink.emit({"event": "dropped", "time_s": 1.0,
    ...                "function": "f", "needed_mb": 128})
    >>> [e["event"] for e in read_jsonl_events(path)]
    ['dropped']
    """
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not a JSON event: {exc}"
                ) from None


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

#: Bucket upper bounds for the eviction freed-memory histogram (MB).
_FREED_MB_BUCKETS = (64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0)
#: Bucket upper bounds for invocation durations (seconds).
_DURATION_S_BUCKETS = (0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

Labels = Tuple[Tuple[str, str], ...]


def _labels(**kwargs: object) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in kwargs.items()))


def _format_labels(labels: Labels) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


class _Histogram:
    __slots__ = ("buckets", "counts", "count", "total")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    def render(self, name: str, out: List[str]) -> None:
        # ``observe`` increments every bucket whose bound covers the
        # value, so the stored counts are already cumulative.
        out.append(f"# TYPE {name} histogram")
        for bound, bucket in zip(self.buckets, self.counts):
            out.append(f'{name}_bucket{{le="{bound:g}"}} {bucket}')
        out.append(f'{name}_bucket{{le="+Inf"}} {self.count}')
        out.append(f"{name}_sum {self.total:g}")
        out.append(f"{name}_count {self.count}")


class PrometheusTextfileSink(Sink):
    """Aggregates events into Prometheus metrics and writes a textfile.

    Maintained metrics (all prefixed with ``namespace``, default
    ``faascache``):

    * ``invocations_total{outcome=...}`` — warm / cold / dropped.
    * ``containers_spawned_total{kind=...}`` — cold / prewarmed / pinned.
    * ``evictions_total{policy=...,reason=...}``.
    * ``eviction_freed_mb`` histogram.
    * ``invocation_duration_s{outcome=...}`` histograms.
    * ``pool_pressure_total`` and ``autoscale_decisions_total``.
    * ``faults_injected_total{kind=...}``, ``invocation_retries_total``,
      ``invocations_shed_total{reason=...}``, ``server_downs_total`` and
      ``server_downtime_seconds_total`` (fault injection / recovery).

    The textfile is written atomically (tmp file + rename) on
    :meth:`flush` / :meth:`close`, the contract the node-exporter
    textfile collector expects.
    """

    def __init__(self, path: PathLike, namespace: str = "faascache") -> None:
        self.path = pathlib.Path(path)
        self.namespace = namespace
        self._counters: Dict[Tuple[str, Labels], float] = {}
        self._freed_mb = _Histogram(_FREED_MB_BUCKETS)
        self._durations: Dict[str, _Histogram] = {}

    # -- aggregation ----------------------------------------------------

    def _inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        key = (name, _labels(**labels))
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def _observe_duration(self, outcome: str, value: float) -> None:
        histogram = self._durations.get(outcome)
        if histogram is None:
            histogram = self._durations[outcome] = _Histogram(
                _DURATION_S_BUCKETS
            )
        histogram.observe(value)

    def emit(self, event: Event) -> None:
        event_type = event.get("event")
        if event_type == "warm_hit":
            self._inc("invocations_total", outcome="warm")
            self._observe_duration("warm", float(event["duration_s"]))
        elif event_type == "cold_start":
            self._inc("invocations_total", outcome="cold")
            self._observe_duration("cold", float(event["duration_s"]))
        elif event_type == "dropped":
            self._inc("invocations_total", outcome="dropped")
        elif event_type == "container_spawned":
            if event.get("pinned"):
                kind = "pinned"
            elif event.get("prewarmed"):
                kind = "prewarmed"
            else:
                kind = "cold"
            self._inc("containers_spawned_total", kind=kind)
        elif event_type == "evicted":
            self._inc(
                "evictions_total",
                policy=event.get("policy", "unknown"),
                reason=event.get("reason", "unknown"),
            )
            self._freed_mb.observe(float(event["freed_mb"]))
        elif event_type == "pool_pressure":
            self._inc("pool_pressure_total")
        elif event_type == "autoscale_decision":
            self._inc("autoscale_decisions_total")
        elif event_type == "invocation_routed":
            self._inc(
                "invocations_routed_total",
                server=event.get("server", -1),
            )
        elif event_type == "fault_injected":
            self._inc(
                "faults_injected_total", kind=event.get("kind", "unknown")
            )
        elif event_type == "invocation_retried":
            self._inc("invocation_retries_total")
        elif event_type == "invocation_shed":
            self._inc(
                "invocations_shed_total", reason=event.get("reason", "unknown")
            )
        elif event_type == "server_down":
            self._inc("server_downs_total", server=event.get("server", -1))
        elif event_type == "server_recovered":
            self._inc(
                "server_downtime_seconds_total",
                float(event.get("downtime_s", 0.0)),
                server=event.get("server", -1),
            )

    # -- rendering ------------------------------------------------------

    def render(self) -> str:
        ns = self.namespace
        lines: List[str] = []
        seen_types = set()
        for (name, labels), value in sorted(self._counters.items()):
            full = f"{ns}_{name}"
            if full not in seen_types:
                lines.append(f"# TYPE {full} counter")
                seen_types.add(full)
            lines.append(f"{full}{_format_labels(labels)} {value:g}")
        if self._freed_mb.count:
            self._freed_mb.render(f"{ns}_eviction_freed_mb", lines)
        for outcome in sorted(self._durations):
            self._durations[outcome].render(
                f"{ns}_invocation_duration_s_{outcome}", lines
            )
        return "\n".join(lines) + "\n"

    def flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(self.render())
        os.replace(tmp, self.path)


class MultiSink(Sink):
    """Fans every event out to several sinks."""

    def __init__(self, *sinks: Sink) -> None:
        if not sinks:
            raise ValueError("MultiSink needs at least one sink")
        self.sinks = sinks

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def write_counters_textfile(
    path: PathLike,
    rows: Iterable[Tuple[Mapping[str, object], Mapping[str, int]]],
    namespace: str = "faascache",
) -> None:
    """Render already-aggregated counters as a Prometheus textfile.

    ``rows`` pairs a label set with a counter dict (e.g. one row per
    sweep cell, labelled by policy and memory size). Used by the CLI's
    ``--metrics-out`` flags, which export end-of-run counters without
    requiring event tracing to have been enabled.
    """
    lines: List[str] = []
    seen_types = set()
    for labels, counters in rows:
        label_str = _format_labels(_labels(**labels))
        for name, value in counters.items():
            full = f"{namespace}_{name}_total"
            if full not in seen_types:
                lines.append(f"# TYPE {full} counter")
                seen_types.add(full)
            lines.append(f"{full}{label_str} {value:g}")
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_suffix(target.suffix + ".tmp")
    tmp.write_text("\n".join(lines) + "\n")
    os.replace(tmp, target)

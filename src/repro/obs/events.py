"""The structured-event vocabulary of the tracing subsystem.

Every event is a flat JSON-serializable dict with two mandatory
fields — ``event`` (the type name) and ``time_s`` (simulation time) —
plus the type-specific payload listed in :data:`EVENT_SCHEMAS`.
Emitters may attach extra context fields (``policy``, ``server``,
``memory_gb`` — anything bound via :meth:`repro.obs.Tracer.bind`);
consumers must therefore tolerate unknown keys, exactly like a
Prometheus label set or an OpenTelemetry attribute bag.

The vocabulary covers the container lifecycle the paper reasons about
(Sections 4-6) end to end:

``invocation_arrived``
    An invocation reached the scheduler, before hit/miss is known.
``warm_hit``
    A warm idle container was reused (cache hit).
``cold_start``
    A new container had to be created (cache miss).
``container_spawned``
    The pool admitted a container — cold start, prewarm, or pinned
    provisioned concurrency (distinguished by the flags).
``evicted``
    A container was terminated, with the policy that chose it, the
    priority it was evicted at, and the memory freed. ``reason`` is
    ``pressure`` (victim selection), ``expiry`` (time-based TTL/HIST
    expiration), or ``admission`` (a doorkeeper refusing to retain).
``dropped``
    An invocation could not obtain memory and was rejected.
``pool_pressure``
    Victim selection was required: the free memory at that instant,
    what was needed, and what was reclaimable.
``autoscale_decision``
    A cluster scaling controller chose a server count.
``invocation_routed``
    A cluster load balancer assigned an invocation to a server.

Five further types cover the fault-injection/recovery layer
(:mod:`repro.faults`):

``fault_injected``
    The fault model fired on one attempt; ``kind`` is one of
    :data:`FAULT_KINDS` (``spawn_failure``, ``crash``, ``timeout``).
``invocation_retried``
    A failed attempt was scheduled to run again after a backoff
    delay (``attempt`` is the 1-based retry number).
``invocation_shed``
    A failed attempt was given up on; ``reason`` is one of
    :data:`SHED_REASONS` — the retry budget ran out, the bounded
    retry queue was full, memory pressure, or no server available.
``server_down`` / ``server_recovered``
    A whole server failed (losing its warm containers) or came back.

Four further types cover harvested/spot capacity
(docs/robustness.md — the cache itself shrinking and growing):

``capacity_shrunk``
    A harvest step reduced a server's usable memory; ``deferred_mb``
    is the part still held by busy containers (freed as they finish).
``capacity_grown``
    Usable memory was given back (or a replacement server came up).
``eviction_notice``
    A spot eviction was announced ``notice_s`` ahead of ``evict_at_s``;
    the control plane stops routing new work to the server.
``container_deflated``
    A warm container was evicted to meet a shrinking capacity target
    (distinct from ``evicted``: pressure came from the platform, not
    from the workload, so it is counted separately).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

__all__ = [
    "EVENT_SCHEMAS",
    "EVENT_TYPES",
    "EVICTION_REASONS",
    "FAULT_KINDS",
    "SHED_REASONS",
    "SchemaError",
    "validate_event",
]

#: Field type specs. ``float`` accepts ints too (JSON round-trips do
#: not preserve the distinction); ``None`` in a tuple marks the field
#: as nullable.
_NUMBER = (int, float)

#: Required payload fields per event type (beyond ``event``/``time_s``).
EVENT_SCHEMAS: Dict[str, Dict[str, tuple]] = {
    "invocation_arrived": {
        "function": (str,),
    },
    "warm_hit": {
        "function": (str,),
        "container_id": (int,),
        "duration_s": _NUMBER,
    },
    "cold_start": {
        "function": (str,),
        "container_id": (int,),
        "duration_s": _NUMBER,
    },
    "container_spawned": {
        "function": (str,),
        "container_id": (int,),
        "memory_mb": _NUMBER,
        "pinned": (bool,),
        "prewarmed": (bool,),
    },
    "evicted": {
        "function": (str,),
        "container_id": (int,),
        "policy": (str,),
        "reason": (str,),
        "freed_mb": _NUMBER,
        "priority": _NUMBER + (type(None),),
        "idle_s": _NUMBER,
        "age_s": _NUMBER,
    },
    "dropped": {
        "function": (str,),
        "needed_mb": _NUMBER,
    },
    "pool_pressure": {
        "needed_mb": _NUMBER,
        "free_mb": _NUMBER,
        "evictable_mb": _NUMBER,
        "used_mb": _NUMBER,
        "capacity_mb": _NUMBER,
    },
    "autoscale_decision": {
        "desired_servers": (int,),
        "active_servers": (int,),
        "arrival_rate": _NUMBER,
    },
    "invocation_routed": {
        "function": (str,),
        "server": (int,),
        "balancer": (str,),
    },
    "fault_injected": {
        "function": (str,),
        "kind": (str,),
    },
    "invocation_retried": {
        "function": (str,),
        "attempt": (int,),
        "delay_s": _NUMBER,
    },
    "invocation_shed": {
        "function": (str,),
        "reason": (str,),
        "attempts": (int,),
    },
    "server_down": {
        "server": (int,),
    },
    "server_recovered": {
        "server": (int,),
        "downtime_s": _NUMBER,
    },
    "capacity_shrunk": {
        "server": (int,),
        "old_mb": _NUMBER,
        "new_mb": _NUMBER,
        "deferred_mb": _NUMBER,
    },
    "capacity_grown": {
        "server": (int,),
        "old_mb": _NUMBER,
        "new_mb": _NUMBER,
    },
    "eviction_notice": {
        "server": (int,),
        "evict_at_s": _NUMBER,
        "notice_s": _NUMBER,
    },
    "container_deflated": {
        "function": (str,),
        "container_id": (int,),
        "memory_mb": _NUMBER,
        "target_mb": _NUMBER,
    },
}

#: Valid eviction reasons for the ``evicted`` event. ``failure``
#: (container lost to a crash or a dead server) is deliberately
#: excluded from both the ``evictions`` and ``expirations`` lifecycle
#: counters — the fault is already counted by ``fault_injected`` /
#: ``server_down``.
EVICTION_REASONS = ("pressure", "expiry", "admission", "failure")

#: Valid ``kind`` values for ``fault_injected``.
FAULT_KINDS = ("spawn_failure", "crash", "timeout")

#: Valid ``reason`` values for ``invocation_shed``.
SHED_REASONS = ("retry_budget", "queue_full", "memory_pressure", "unavailable")

EVENT_TYPES: Tuple[str, ...] = tuple(sorted(EVENT_SCHEMAS))


class SchemaError(ValueError):
    """An event does not conform to its declared schema."""


def validate_event(event: Mapping[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``event`` conforms.

    Checks the mandatory envelope (``event`` name, numeric
    ``time_s``), the per-type required fields and their types, and the
    ``evicted`` reason vocabulary. Extra fields (bound context) are
    allowed by design.

    >>> validate_event({"event": "dropped", "time_s": 1.0,
    ...                 "function": "f", "needed_mb": 128})
    >>> validate_event({"event": "dropped", "time_s": 1.0})
    Traceback (most recent call last):
        ...
    repro.obs.events.SchemaError: dropped event missing field 'function'
    """
    event_type = event.get("event")
    if not isinstance(event_type, str):
        raise SchemaError(f"event has no type name: {dict(event)!r}")
    schema = EVENT_SCHEMAS.get(event_type)
    if schema is None:
        raise SchemaError(
            f"unknown event type {event_type!r}; known: {list(EVENT_TYPES)}"
        )
    time_s = event.get("time_s")
    if not isinstance(time_s, _NUMBER) or isinstance(time_s, bool):
        raise SchemaError(f"{event_type} event needs a numeric time_s")
    for name, types in schema.items():
        if name not in event:
            raise SchemaError(f"{event_type} event missing field {name!r}")
        value = event[name]
        # bool is an int subclass; only accept it where bool is listed.
        if isinstance(value, bool) and bool not in types:
            raise SchemaError(
                f"{event_type}.{name} must be {types}, got bool"
            )
        if not isinstance(value, types):
            raise SchemaError(
                f"{event_type}.{name} must be {types}, "
                f"got {type(value).__name__}"
            )
    if event_type == "evicted" and event["reason"] not in EVICTION_REASONS:
        raise SchemaError(
            f"evicted reason must be one of {EVICTION_REASONS}, "
            f"got {event['reason']!r}"
        )
    if event_type == "fault_injected" and event["kind"] not in FAULT_KINDS:
        raise SchemaError(
            f"fault kind must be one of {FAULT_KINDS}, got {event['kind']!r}"
        )
    if event_type == "invocation_shed" and event["reason"] not in SHED_REASONS:
        raise SchemaError(
            f"shed reason must be one of {SHED_REASONS}, "
            f"got {event['reason']!r}"
        )

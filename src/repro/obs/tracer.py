"""The event emitter threaded through the simulator stack.

Design goal: **near-zero cost when disabled**. Every instrumented
component stores ``None`` instead of a tracer when tracing is off, so
the hot path pays exactly one local-variable ``is None`` test per
emission site (measured <2% on the throughput benchmark by
``benchmarks/bench_simulator_throughput.py``). The helper
:func:`active_tracer` normalizes whatever the caller passed (a tracer,
``None``, or the :data:`NULL_TRACER` singleton) into that convention.

When enabled, a :class:`Tracer` stamps each event with its bound
context — constant fields like ``policy="GD"`` or ``server=3`` set
once via :meth:`Tracer.bind` — and hands the finished dict to its
sink. ``strict=True`` validates every event against
:mod:`repro.obs.events` at emission time (tests and debugging; off in
production paths).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.obs.events import validate_event
from repro.obs.sinks import Sink

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "active_tracer"]


class Tracer:
    """Emits structured lifecycle events to a sink."""

    __slots__ = ("sink", "strict", "_context")

    #: Class-level so the disabled check never touches the instance dict.
    enabled: bool = True

    def __init__(
        self,
        sink: Sink,
        context: Optional[Mapping[str, Any]] = None,
        strict: bool = False,
    ) -> None:
        self.sink = sink
        self.strict = strict
        self._context: Dict[str, Any] = dict(context or {})

    @property
    def context(self) -> Dict[str, Any]:
        return dict(self._context)

    def bind(self, **context: Any) -> "Tracer":
        """A child tracer writing to the same sink with extra constant
        fields (e.g. ``tracer.bind(server=2)`` inside a cluster)."""
        merged = dict(self._context)
        merged.update(context)
        return Tracer(self.sink, merged, self.strict)

    def emit(self, event_type: str, time_s: float, **fields: Any) -> None:
        """Send one event. Payload fields are keyword arguments."""
        event: Dict[str, Any] = {"event": event_type, "time_s": time_s}
        if self._context:
            event.update(self._context)
        event.update(fields)
        if self.strict:
            validate_event(event)
        self.sink.emit(event)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Tracer(sink={type(self.sink).__name__}, "
            f"context={self._context!r})"
        )


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    Exists so call sites may hold a tracer unconditionally;
    performance-critical components instead store ``None`` (see
    :func:`active_tracer`) and skip the call entirely.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=_NULL_SINK)

    def bind(self, **context: Any) -> "NullTracer":
        return self

    def emit(self, event_type: str, time_s: float, **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass


class _NullSinkSingleton(Sink):
    def emit(self, event: Mapping[str, Any]) -> None:  # pragma: no cover
        pass


_NULL_SINK = _NullSinkSingleton()

#: Shared disabled tracer, for APIs that want a tracer-shaped default.
NULL_TRACER = NullTracer()


def active_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Normalize a tracer argument for a hot-path component.

    Returns the tracer itself when it is enabled, else ``None`` — so
    instrumented code can guard every emission with a plain
    ``if tracer is not None`` (the cheapest possible disabled path).
    """
    if tracer is None or not tracer.enabled:
        return None
    return tracer

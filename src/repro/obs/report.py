"""Offline reconstruction of simulator behaviour from an event trace.

Where :class:`~repro.sim.metrics.SimulationMetrics` answers *how much*
(end-of-run aggregates, the paper's Figures 5/6 numbers), this module
answers *why* and *when*: it replays a recorded event stream (any
iterable of event dicts, usually a ``JsonlSink`` file) into

* the same lifecycle counters the simulator keeps — warm / cold /
  dropped / evictions / expirations / prewarms — which lets CI assert
  that the trace stream is complete (rebuilt counters must equal the
  live ``SimulationMetrics`` of the same seeded run);
* **per-function timelines**: every lifecycle event of one function in
  arrival order, for "why was this function cold at t=492?" questions;
* **eviction churn**: which functions were evicted most, how much
  memory each eviction freed, how quickly evicted functions came back
  (an eviction followed by a cold start of the same function is a
  churn round-trip — the cache thrashing signature);
* **memory-pressure summaries**: how often victim selection ran and
  how close to capacity the pool was when it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.sinks import PathLike, read_jsonl_events

__all__ = [
    "FunctionTimeline",
    "ChurnEntry",
    "TraceReport",
    "report_from_events",
    "load_report",
]

#: Event types that appear on a per-function timeline.
_TIMELINE_EVENTS = (
    "invocation_arrived",
    "warm_hit",
    "cold_start",
    "container_spawned",
    "evicted",
    "dropped",
    "fault_injected",
    "invocation_retried",
    "invocation_shed",
    "container_deflated",
)


@dataclass
class FunctionTimeline:
    """All lifecycle events of one function, in stream order."""

    function: str
    #: (time_s, event_type) pairs.
    events: List[Tuple[float, str]] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for __, event_type in self.events:
            out[event_type] = out.get(event_type, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class ChurnEntry:
    """Eviction pressure on one function."""

    function: str
    evictions: int = 0
    freed_mb: float = 0.0
    #: Cold starts that happened while the function had been evicted —
    #: each one is an eviction the cache "took back", i.e. thrash.
    refaults: int = 0
    #: Time between an eviction and the function's next cold start,
    #: summed over refaults (mean = refault_gap_s / refaults).
    refault_gap_s: float = 0.0


class TraceReport:
    """Aggregated view over one event stream."""

    def __init__(self) -> None:
        self.event_counts: Dict[str, int] = {}
        self.first_time_s: Optional[float] = None
        self.last_time_s: Optional[float] = None
        self.per_function: Dict[str, FunctionTimeline] = {}
        self.churn: Dict[str, ChurnEntry] = {}
        # Memory pressure.
        self.pressure_events = 0
        self.peak_used_mb = 0.0
        self.peak_utilization = 0.0
        self.total_deficit_mb = 0.0
        # Eviction breakdown by reason.
        self.evictions_by_reason: Dict[str, int] = {}
        self.evictions_by_policy: Dict[str, int] = {}
        # Spawn breakdown.
        self.prewarmed_spawns = 0
        self.pinned_spawns = 0
        # Fault injection / recovery (docs/robustness.md).
        self.faults_by_kind: Dict[str, int] = {}
        self.sheds_by_reason: Dict[str, int] = {}
        self.server_downtime_s = 0.0
        # Harvested/spot capacity (docs/robustness.md).
        self.deflated_mb = 0.0
        self.capacity_deferred_mb = 0.0
        # Per-tenant outcome counts, rebuilt from the optional
        # ``tenant`` context field on warm_hit/cold_start/dropped
        # events (docs/multi-tenancy.md). Tenant-less traces never
        # carry the field, leaving this empty.
        self._tenant_outcomes: Dict[int, Dict[str, int]] = {}
        # Open eviction -> next cold-start gap tracking.
        self._evicted_at: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def add(self, event: Mapping[str, Any]) -> None:
        event_type = event.get("event")
        if not isinstance(event_type, str):
            raise ValueError(f"not an event: {dict(event)!r}")
        time_s = float(event.get("time_s", 0.0))
        self.event_counts[event_type] = (
            self.event_counts.get(event_type, 0) + 1
        )
        if self.first_time_s is None:
            self.first_time_s = time_s
        self.last_time_s = time_s

        if event_type in ("warm_hit", "cold_start", "dropped"):
            tenant = event.get("tenant")
            if tenant is not None:
                outcome = self._tenant_outcomes.get(tenant)
                if outcome is None:
                    outcome = self._tenant_outcomes[tenant] = {
                        "warm_starts": 0,
                        "cold_starts": 0,
                        "dropped": 0,
                    }
                if event_type == "warm_hit":
                    outcome["warm_starts"] += 1
                elif event_type == "cold_start":
                    outcome["cold_starts"] += 1
                else:
                    outcome["dropped"] += 1

        function = event.get("function")
        if function is not None and event_type in _TIMELINE_EVENTS:
            timeline = self.per_function.get(function)
            if timeline is None:
                timeline = self.per_function[function] = FunctionTimeline(
                    function
                )
            timeline.events.append((time_s, event_type))

        if event_type == "evicted":
            reason = event.get("reason", "unknown")
            policy = event.get("policy", "unknown")
            self.evictions_by_reason[reason] = (
                self.evictions_by_reason.get(reason, 0) + 1
            )
            self.evictions_by_policy[policy] = (
                self.evictions_by_policy.get(policy, 0) + 1
            )
            entry = self.churn.get(function)
            if entry is None:
                entry = self.churn[function] = ChurnEntry(function)
            entry.evictions += 1
            entry.freed_mb += float(event.get("freed_mb", 0.0))
            self._evicted_at[function] = time_s
        elif event_type == "cold_start":
            evicted_at = self._evicted_at.pop(function, None)
            if evicted_at is not None:
                entry = self.churn.get(function)
                if entry is None:
                    entry = self.churn[function] = ChurnEntry(function)
                entry.refaults += 1
                entry.refault_gap_s += time_s - evicted_at
        elif event_type == "container_spawned":
            if event.get("prewarmed"):
                self.prewarmed_spawns += 1
            if event.get("pinned"):
                self.pinned_spawns += 1
        elif event_type == "fault_injected":
            kind = event.get("kind", "unknown")
            self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1
        elif event_type == "invocation_shed":
            reason = event.get("reason", "unknown")
            self.sheds_by_reason[reason] = (
                self.sheds_by_reason.get(reason, 0) + 1
            )
        elif event_type == "server_recovered":
            self.server_downtime_s += float(event.get("downtime_s", 0.0))
        elif event_type == "container_deflated":
            self.deflated_mb += float(event.get("memory_mb", 0.0))
        elif event_type == "capacity_shrunk":
            self.capacity_deferred_mb += float(event.get("deferred_mb", 0.0))
        elif event_type == "pool_pressure":
            self.pressure_events += 1
            used = float(event.get("used_mb", 0.0))
            capacity = float(event.get("capacity_mb", 0.0))
            self.peak_used_mb = max(self.peak_used_mb, used)
            if capacity > 0:
                self.peak_utilization = max(
                    self.peak_utilization, used / capacity
                )
            needed = float(event.get("needed_mb", 0.0))
            free = float(event.get("free_mb", 0.0))
            self.total_deficit_mb += max(0.0, needed - free)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """The simulator's lifecycle counters, rebuilt from the trace.

        Keyed exactly like
        :meth:`repro.sim.metrics.SimulationMetrics.counters`, so the
        two can be compared directly (the trace/aggregate consistency
        gate). Note the simulator's ``expirations`` counter covers both
        time-based expiry and doorkeeper admission refusals — the
        trace keeps them distinguishable via the ``reason`` field.
        ``failure`` evictions (crashed containers, dead servers) are
        excluded from both sides by the same rule: the fault itself is
        counted by ``faults_injected`` / ``server_downs``.
        """
        by_reason = self.evictions_by_reason
        return {
            "warm_starts": self.event_counts.get("warm_hit", 0),
            "cold_starts": self.event_counts.get("cold_start", 0),
            "dropped": self.event_counts.get("dropped", 0),
            "evictions": by_reason.get("pressure", 0),
            "expirations": (
                by_reason.get("expiry", 0) + by_reason.get("admission", 0)
            ),
            "prewarms": self.prewarmed_spawns,
            "faults_injected": self.event_counts.get("fault_injected", 0),
            "retries": self.event_counts.get("invocation_retried", 0),
            "sheds": self.event_counts.get("invocation_shed", 0),
            "server_downs": self.event_counts.get("server_down", 0),
            "capacity_shrinks": self.event_counts.get("capacity_shrunk", 0),
            "capacity_grows": self.event_counts.get("capacity_grown", 0),
            "eviction_notices": self.event_counts.get("eviction_notice", 0),
            "deflations": self.event_counts.get("container_deflated", 0),
        }

    def tenant_counters(self) -> Dict[int, Dict[str, int]]:
        """Per-tenant lifecycle counters rebuilt from the trace.

        Keyed exactly like
        :meth:`repro.sim.metrics.SimulationMetrics.tenant_counters`
        (the per-tenant half of the trace/aggregate contract; FC005
        checks the inner key set for drift). Empty for tenant-less
        traces, whose events never carry a ``tenant`` field.
        """
        return {
            tenant_id: {
                "warm_starts": outcome["warm_starts"],
                "cold_starts": outcome["cold_starts"],
                "dropped": outcome["dropped"],
            }
            for tenant_id, outcome in sorted(self._tenant_outcomes.items())
        }

    @property
    def jain_fairness_index(self) -> float:
        """Jain's fairness index over per-tenant warm-hit ratios,
        rebuilt from the trace (mirrors
        :attr:`SimulationMetrics.jain_fairness_index`)."""
        from repro.sim.metrics import jain_index

        ratios = []
        for __, outcome in sorted(self._tenant_outcomes.items()):
            served = outcome["warm_starts"] + outcome["cold_starts"]
            if served:
                ratios.append(outcome["warm_starts"] / served)
        return jain_index(ratios)

    def check_tenant_counters(
        self, expected: Mapping[int, Mapping[str, int]]
    ) -> List[str]:
        """Compare rebuilt per-tenant counters against an expected
        mapping; returns mismatch descriptions (empty = agreement)."""
        rebuilt = self.tenant_counters()
        mismatches = []
        for tenant_id in sorted(set(rebuilt) | set(expected)):
            got = rebuilt.get(tenant_id)
            want = expected.get(tenant_id)
            if got != want:
                mismatches.append(
                    f"tenant {tenant_id}: trace says {got}, "
                    f"metrics say {want}"
                )
        return mismatches

    def timeline(self, function: str) -> FunctionTimeline:
        try:
            return self.per_function[function]
        except KeyError:
            raise KeyError(
                f"function {function!r} never appears in the trace"
            ) from None

    def most_evicted(self, n: int = 10) -> List[ChurnEntry]:
        """The ``n`` functions under the heaviest eviction churn."""
        return sorted(
            self.churn.values(),
            key=lambda e: (-e.evictions, -e.freed_mb, e.function),
        )[:n]

    @property
    def total_events(self) -> int:
        return sum(self.event_counts.values())

    @property
    def span_s(self) -> float:
        if self.first_time_s is None or self.last_time_s is None:
            return 0.0
        return self.last_time_s - self.first_time_s

    def check_counters(
        self, expected: Mapping[str, int]
    ) -> List[str]:
        """Compare rebuilt counters against an expected dict.

        Returns a list of human-readable mismatch descriptions (empty
        means the trace and the aggregate metrics agree). Keys missing
        from ``expected`` are ignored, so a partial check is possible.
        """
        rebuilt = self.counters()
        mismatches = []
        for key, want in expected.items():
            if key not in rebuilt:
                mismatches.append(f"unknown counter {key!r}")
            elif rebuilt[key] != want:
                mismatches.append(
                    f"{key}: trace says {rebuilt[key]}, metrics say {want}"
                )
        return mismatches

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, top_n: int = 10) -> str:
        """A human-readable multi-section summary for the CLI."""
        lines: List[str] = []
        lines.append(
            f"trace report: {self.total_events} events over "
            f"{self.span_s:.1f} s, {len(self.per_function)} functions"
        )
        lines.append("")
        lines.append("lifecycle counters (rebuilt from the trace):")
        for key, value in self.counters().items():
            lines.append(f"  {key:<14} {value}")
        if self.evictions_by_reason:
            lines.append("")
            lines.append("evictions by reason:")
            for reason, count in sorted(self.evictions_by_reason.items()):
                lines.append(f"  {reason:<14} {count}")
        if self.faults_by_kind or self.sheds_by_reason:
            lines.append("")
            lines.append("fault injection:")
            for kind, count in sorted(self.faults_by_kind.items()):
                lines.append(f"  {kind:<14} {count}")
            for reason, count in sorted(self.sheds_by_reason.items()):
                lines.append(f"  shed/{reason:<9} {count}")
        downs = self.event_counts.get("server_down", 0)
        if downs:
            lines.append(
                f"server outages: {downs} "
                f"({self.server_downtime_s:.0f} s observed downtime)"
            )
        shrinks = self.event_counts.get("capacity_shrunk", 0)
        notices = self.event_counts.get("eviction_notice", 0)
        if shrinks or notices:
            lines.append(
                f"harvested capacity: {shrinks} shrinks "
                f"({self.capacity_deferred_mb:.0f} MB deferred), "
                f"{self.event_counts.get('capacity_grown', 0)} grows, "
                f"{notices} eviction notices, "
                f"{self.event_counts.get('container_deflated', 0)} "
                f"containers deflated "
                f"({self.deflated_mb:.0f} MB)"
            )
        if self.churn:
            lines.append("")
            lines.append(f"top {top_n} functions by eviction churn:")
            lines.append(
                "  function                evictions  freed MB  refaults  "
                "mean gap s"
            )
            for entry in self.most_evicted(top_n):
                gap = (
                    entry.refault_gap_s / entry.refaults
                    if entry.refaults
                    else 0.0
                )
                lines.append(
                    f"  {entry.function:<22}  {entry.evictions:>9}  "
                    f"{entry.freed_mb:>8.0f}  {entry.refaults:>8}  "
                    f"{gap:>10.1f}"
                )
        lines.append("")
        lines.append(
            f"memory pressure: {self.pressure_events} victim-selection "
            f"rounds, peak used {self.peak_used_mb:.0f} MB "
            f"({self.peak_utilization:.0%} of capacity), cumulative "
            f"deficit {self.total_deficit_mb:.0f} MB"
        )
        return "\n".join(lines)


def report_from_events(events: Iterable[Mapping[str, Any]]) -> TraceReport:
    """Build a :class:`TraceReport` from any event iterable."""
    report = TraceReport()
    for event in events:
        report.add(event)
    return report


def load_report(path: PathLike) -> TraceReport:
    """Build a report from a JSONL trace file."""
    return report_from_events(read_jsonl_events(path))

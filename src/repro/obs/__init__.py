"""``repro.obs`` — structured event tracing and metrics export.

The observability layer of the reproduction: a lightweight
:class:`Tracer` that components thread through the stack, pluggable
sinks (in-memory ring buffer, JSONL files, Prometheus textfiles), and
an offline :mod:`report <repro.obs.report>` module that reconstructs
per-function timelines and eviction-churn summaries from a recorded
trace.

Quick tour::

    from repro.obs import JsonlSink, Tracer
    from repro.sim.scheduler import simulate

    with Tracer(JsonlSink("run.jsonl")) as tracer:
        result = simulate(trace, "GD", 4096, tracer=tracer)

    from repro.obs.report import load_report
    print(load_report("run.jsonl").render())

Tracing is opt-in: with no tracer attached, the simulator's hot path
pays only a ``None`` check per emission site (guarded to <2% overhead
by the throughput benchmark).
"""

from repro.obs.events import (
    EVENT_SCHEMAS,
    EVENT_TYPES,
    EVICTION_REASONS,
    FAULT_KINDS,
    SHED_REASONS,
    SchemaError,
    validate_event,
)
from repro.obs.report import TraceReport, load_report, report_from_events
from repro.obs.sinks import (
    JsonlSink,
    MultiSink,
    NullSink,
    PrometheusTextfileSink,
    RingBufferSink,
    Sink,
    read_jsonl_events,
    write_counters_textfile,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, active_tracer

__all__ = [
    "EVENT_SCHEMAS",
    "EVENT_TYPES",
    "EVICTION_REASONS",
    "FAULT_KINDS",
    "SHED_REASONS",
    "SchemaError",
    "validate_event",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "active_tracer",
    "Sink",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "PrometheusTextfileSink",
    "MultiSink",
    "read_jsonl_events",
    "write_counters_textfile",
    "TraceReport",
    "report_from_events",
    "load_report",
]

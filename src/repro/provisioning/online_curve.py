"""Online hit-ratio curve construction (Section 5.2, "Online adjustments").

The paper's provisioning policies have an offline preparation phase:
the hit-ratio curve is computed from a full trace scan and refreshed
periodically ("currently once per week") to absorb drift in function
characteristics; constructing the curve *online* is listed as future
work. This module implements that extension:

* :class:`OnlineReuseTracker` — a streaming size-weighted
  reuse-distance tracker. It maintains the Mattson stack over a
  sliding window of the last ``window`` accesses with a Fenwick tree,
  compacting in amortized O(log window) per access, and keeps the most
  recent ``max_samples`` distances.
* :class:`PeriodicCurveProvider` — feeds a tracker and re-derives the
  :class:`~repro.provisioning.hit_ratio.HitRatioCurve` at a fixed
  refresh interval, serving the last built curve in between — exactly
  the periodic-refresh discipline the paper describes, with the
  interval turned into a parameter instead of "one week".
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import FenwickTree

__all__ = ["OnlineReuseTracker", "PeriodicCurveProvider"]


class OnlineReuseTracker:
    """Streaming size-weighted reuse distances over a sliding window.

    Accesses older than ``window`` positions are forgotten: a function
    whose previous use slid out of the window is treated as a first
    access (infinite distance), which is what bounds both memory and
    staleness.
    """

    def __init__(self, window: int = 100_000, max_samples: int = 100_000) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.window = window
        # The tree spans up to 2*window absolute positions; when the
        # write head reaches the end we compact to the last `window`.
        self._tree = FenwickTree(2 * window)
        self._base = 0  # absolute position of tree index 0
        self._next = 0  # next absolute position
        # Per function: (absolute position of most recent use, size).
        self._last: Dict[str, Tuple[int, float]] = {}
        # Access log inside the tree span, for compaction.
        self._log: Deque[Tuple[int, str, float]] = deque()
        self.distances: Deque[float] = deque(maxlen=max_samples)
        self.total_accesses = 0
        self.compulsory = 0

    # ------------------------------------------------------------------

    def _compact(self) -> None:
        """Drop everything but the last ``window`` accesses, re-basing."""
        new_base = self._next - self.window
        tree = FenwickTree(2 * self.window)
        survivors: Deque[Tuple[int, str, float]] = deque()
        last: Dict[str, Tuple[int, float]] = {}
        for pos, name, size in self._log:
            if pos < new_base:
                continue
            survivors.append((pos, name, size))
            previous = last.get(name)
            if previous is not None:
                tree.add(previous[0] - new_base, -previous[1])
            tree.add(pos - new_base, size)
            last[name] = (pos, size)
        self._tree = tree
        self._base = new_base
        self._log = survivors
        self._last = last

    def observe(self, function_name: str, size_mb: float) -> float:
        """Record one access; returns its reuse distance (inf if first
        in-window access of the function)."""
        if size_mb <= 0:
            raise ValueError(f"size must be positive, got {size_mb}")
        if self._next - self._base >= 2 * self.window:
            self._compact()
        pos = self._next
        self._next += 1
        self.total_accesses += 1

        previous = self._last.get(function_name)
        if previous is not None and previous[0] < pos - self.window:
            # Slid out of the window: forget it.
            self._tree.add(previous[0] - self._base, -previous[1])
            previous = None
            del self._last[function_name]

        if previous is None:
            distance = math.inf
            self.compulsory += 1
        else:
            prev_pos, prev_size = previous
            distance = self._tree.range_sum(
                prev_pos - self._base + 1, pos - self._base - 1
            )
            self._tree.add(prev_pos - self._base, -prev_size)
        self._tree.add(pos - self._base, size_mb)
        self._last[function_name] = (pos, size_mb)
        self._log.append((pos, function_name, size_mb))
        self.distances.append(distance)
        return distance

    def curve(self) -> HitRatioCurve:
        """The hit-ratio curve of the retained distance samples."""
        if not self.distances:
            raise ValueError("no accesses observed yet")
        return HitRatioCurve.from_distances(self.distances)

    def __len__(self) -> int:
        return len(self.distances)


class PeriodicCurveProvider:
    """Serves a hit-ratio curve, rebuilt at a fixed time interval.

    Feed accesses with :meth:`observe`; read the current curve with
    :meth:`current_curve`. The curve is rebuilt lazily once
    ``refresh_interval_s`` has elapsed since the last build, so the
    cost stays off the per-invocation fast path.
    """

    def __init__(
        self,
        refresh_interval_s: float = 7 * 24 * 3600.0,
        tracker: Optional[OnlineReuseTracker] = None,
        min_samples: int = 100,
    ) -> None:
        if refresh_interval_s <= 0:
            raise ValueError("refresh interval must be positive")
        self.refresh_interval_s = refresh_interval_s
        self.tracker = tracker if tracker is not None else OnlineReuseTracker()
        self.min_samples = min_samples
        self._curve: Optional[HitRatioCurve] = None
        self._last_build_s: Optional[float] = None
        self.rebuilds = 0

    def observe(self, function_name: str, size_mb: float, now_s: float) -> None:
        self.tracker.observe(function_name, size_mb)
        if self._curve is None:
            # Build eagerly once enough samples exist.
            if len(self.tracker) >= self.min_samples:
                self._rebuild(now_s)
        elif now_s - self._last_build_s >= self.refresh_interval_s:
            self._rebuild(now_s)

    def _rebuild(self, now_s: float) -> None:
        self._curve = self.tracker.curve()
        self._last_build_s = now_s
        self.rebuilds += 1

    @property
    def ready(self) -> bool:
        return self._curve is not None

    def current_curve(self) -> HitRatioCurve:
        if self._curve is None:
            raise ValueError(
                f"curve not built yet: have {len(self.tracker)} samples, "
                f"need {self.min_samples}"
            )
        return self._curve

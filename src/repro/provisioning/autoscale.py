"""End-to-end dynamic vertical scaling (the Figure 9 experiment).

Couples the trace-driven keep-alive simulator with the proportional
controller and the cascade-deflation engine: the trace is replayed,
and every control period (10 minutes in the paper) the controller
observes the arrival and cold-start counts, decides a new cache size
through the hit-ratio curve, and the deflation engine actuates it on
the live container pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.policies.base import KeepAlivePolicy, create_policy
from repro.provisioning.controller import ControllerDecision, ProportionalController
from repro.provisioning.deflation import DeflationEngine, DeflationReport
from repro.sim.metrics import SimulationMetrics
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Trace

__all__ = ["AutoscaleResult", "AutoscaledSimulation"]


@dataclass
class AutoscaleResult:
    """Everything Figure 9 plots, plus the underlying metrics."""

    trace_name: str
    policy_name: str
    target_miss_speed: float
    decisions: List[ControllerDecision] = field(default_factory=list)
    deflations: List[DeflationReport] = field(default_factory=list)
    metrics: SimulationMetrics = field(default_factory=SimulationMetrics)

    @property
    def mean_cache_size_mb(self) -> float:
        if not self.decisions:
            return 0.0
        return sum(d.cache_size_mb for d in self.decisions) / len(self.decisions)

    @property
    def max_cache_size_mb(self) -> float:
        if not self.decisions:
            return 0.0
        return max(d.cache_size_mb for d in self.decisions)

    def size_timeline(self) -> List[Tuple[float, float]]:
        return [(d.time_s, d.cache_size_mb) for d in self.decisions]

    def miss_speed_timeline(self) -> List[Tuple[float, float]]:
        return [(d.time_s, d.miss_speed) for d in self.decisions]

    def savings_vs_static(self, static_size_mb: float) -> float:
        """Fractional average-size reduction vs a static provision."""
        if static_size_mb <= 0:
            raise ValueError("static size must be positive")
        return 1.0 - self.mean_cache_size_mb / static_size_mb


class AutoscaledSimulation:
    """Replay a trace with periodic controller-driven resizing."""

    def __init__(
        self,
        trace: Trace,
        controller: ProportionalController,
        policy: str | KeepAlivePolicy = "GD",
        deflation_engine: DeflationEngine | None = None,
    ) -> None:
        if isinstance(policy, str):
            policy = create_policy(policy)
        self.trace = trace
        self.controller = controller
        self.policy = policy
        self.engine = deflation_engine or DeflationEngine()
        self.simulator = KeepAliveSimulator(
            trace, policy, controller.cache_size_mb
        )

    def run(self) -> AutoscaleResult:
        result = AutoscaleResult(
            trace_name=self.trace.name,
            policy_name=self.policy.name,
            target_miss_speed=self.controller.target_miss_speed,
        )
        period = self.controller.control_period_s
        next_control_s = period
        arrivals = 0
        colds = 0
        functions = self.trace.functions
        for invocation in self.trace:
            while invocation.time_s >= next_control_s:
                self._control_tick(next_control_s, arrivals, colds, result)
                arrivals = 0
                colds = 0
                next_control_s += period
            outcome = self.simulator.process_invocation(
                functions[invocation.function_name], invocation.time_s
            )
            arrivals += 1
            if outcome == "cold":
                colds += 1
        # Final partial period, so short traces still record a decision.
        if arrivals:
            self._control_tick(next_control_s, arrivals, colds, result)
        result.metrics = self.simulator.metrics
        result.decisions = self.controller.history
        return result

    def _control_tick(
        self,
        now_s: float,
        arrivals: int,
        colds: int,
        result: AutoscaleResult,
    ) -> None:
        decision = self.controller.step(now_s, arrivals, colds)
        if decision.resized:
            report = self.engine.resize(
                self.simulator.pool,
                self.policy,
                self.controller.cache_size_mb,
                now_s,
            )
            # Eviction under deflation may leave the pool above the
            # requested size (running containers); keep the controller
            # consistent with what was actually achieved.
            self.controller.cache_size_mb = report.achieved_mb
            result.deflations.append(report)

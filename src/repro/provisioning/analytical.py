"""Analytical cache models: Che's approximation and TTL caches.

Section 2.2 lists the analytical toolbox caching brings to FaaS —
"Che's approximation [24]", eviction times, and TTL equivalence
results [18, 36] — and Section 7.1 leans on one of them: "The
equivalence of LRU and TTL-based caching for rare objects has been
noted, which explains their similar behavior" (Figure 5c).

This module implements those models for function keep-alive, with
containers of different sizes and (approximately Poisson) arrivals:

* **Che's approximation** for an LRU keep-alive cache of size ``C``:
  there is a *characteristic time* ``T_C`` — the solution of
  ``sum_i s_i (1 - exp(-lambda_i T)) = C`` — such that each function
  behaves as if it were cached with a TTL of ``T_C``; its hit ratio is
  ``1 - exp(-lambda_i T_C)``.
* **TTL cache**: a keep-alive TTL of ``T`` gives function ``i`` a hit
  ratio of ``1 - exp(-lambda_i T)`` and an expected memory footprint
  of ``sum_i s_i (1 - exp(-lambda_i T))`` (the container is resident
  exactly when an arrival occurred within the last ``T``).
* **Equivalence**: an LRU cache of size ``C`` is approximately a TTL
  cache with ``T = T_C``; :func:`equivalent_ttl` exposes the mapping
  in both directions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.traces.model import Trace

__all__ = [
    "FunctionArrivalModel",
    "models_from_trace",
    "characteristic_time",
    "lru_hit_ratio",
    "ttl_hit_ratio",
    "ttl_expected_memory_mb",
    "equivalent_ttl",
    "equivalent_cache_size_mb",
]


@dataclass(frozen=True)
class FunctionArrivalModel:
    """A function as the analytical models see it: a Poisson arrival
    rate and a container size."""

    name: str
    rate_per_s: float
    size_mb: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError(
                f"{self.name}: arrival rate must be positive, got {self.rate_per_s}"
            )
        if self.size_mb <= 0:
            raise ValueError(
                f"{self.name}: size must be positive, got {self.size_mb}"
            )


def models_from_trace(trace: Trace) -> List[FunctionArrivalModel]:
    """Empirical arrival models from a trace (mean rate per function).

    Functions with fewer than two invocations carry no rate
    information and are skipped.
    """
    duration = trace.duration_s
    if duration <= 0:
        raise ValueError("trace must span positive time")
    counts = trace.per_function_counts()
    models = []
    for name, count in counts.items():
        if count < 2:
            continue
        models.append(
            FunctionArrivalModel(
                name=name,
                rate_per_s=count / duration,
                size_mb=trace.functions[name].memory_mb,
            )
        )
    if not models:
        raise ValueError("no function with >= 2 invocations in the trace")
    return models


def ttl_expected_memory_mb(
    models: Sequence[FunctionArrivalModel], ttl_s: float
) -> float:
    """Expected resident memory of a TTL-``ttl_s`` keep-alive cache."""
    if ttl_s < 0:
        raise ValueError(f"ttl must be >= 0, got {ttl_s}")
    return sum(
        m.size_mb * (1.0 - math.exp(-m.rate_per_s * ttl_s)) for m in models
    )


def characteristic_time(
    models: Sequence[FunctionArrivalModel],
    cache_mb: float,
    tolerance: float = 1e-9,
) -> float:
    """Che's characteristic time ``T_C`` for an LRU cache of ``cache_mb``.

    The expected TTL-occupancy is strictly increasing in ``T`` and
    saturates at the total working-set size, so the fixed point is
    found by bisection. A cache at least as large as the working set
    returns ``inf`` (nothing is ever evicted).

    >>> m = [FunctionArrivalModel("f", rate_per_s=1.0, size_mb=100.0)]
    >>> round(characteristic_time(m, 50.0), 4)  # 100(1-e^-T) = 50
    0.6931
    """
    if cache_mb <= 0:
        raise ValueError(f"cache size must be positive, got {cache_mb}")
    working_set = sum(m.size_mb for m in models)
    if cache_mb >= working_set:
        return math.inf
    lo, hi = 0.0, 1.0
    while ttl_expected_memory_mb(models, hi) < cache_mb:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - numerically unreachable
            return math.inf
    while hi - lo > tolerance * max(hi, 1.0):
        mid = 0.5 * (lo + hi)
        if ttl_expected_memory_mb(models, mid) < cache_mb:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def ttl_hit_ratio(
    models: Sequence[FunctionArrivalModel], ttl_s: float
) -> float:
    """Request-weighted hit ratio of a TTL keep-alive cache."""
    total_rate = sum(m.rate_per_s for m in models)
    hits = sum(
        m.rate_per_s * (1.0 - math.exp(-m.rate_per_s * ttl_s))
        for m in models
    )
    return hits / total_rate


def lru_hit_ratio(
    models: Sequence[FunctionArrivalModel], cache_mb: float
) -> float:
    """Che-approximate hit ratio of an LRU cache of ``cache_mb``.

    Each function sees an effective TTL equal to the characteristic
    time, so this is :func:`ttl_hit_ratio` at ``T_C``.
    """
    t_c = characteristic_time(models, cache_mb)
    if math.isinf(t_c):
        return 1.0
    return ttl_hit_ratio(models, t_c)


def per_function_hit_ratios(
    models: Sequence[FunctionArrivalModel], cache_mb: float
) -> Dict[str, float]:
    """Per-function Che-approximate hit ratios at one cache size."""
    t_c = characteristic_time(models, cache_mb)
    if math.isinf(t_c):
        return {m.name: 1.0 for m in models}
    return {
        m.name: 1.0 - math.exp(-m.rate_per_s * t_c) for m in models
    }


def equivalent_ttl(
    models: Sequence[FunctionArrivalModel], cache_mb: float
) -> float:
    """The TTL that makes a TTL cache behave like LRU at ``cache_mb``.

    This *is* the characteristic time — the formal content of the
    rare-object TTL/LRU equivalence the paper invokes for Figure 5c.
    """
    return characteristic_time(models, cache_mb)


def equivalent_cache_size_mb(
    models: Sequence[FunctionArrivalModel], ttl_s: float
) -> float:
    """The LRU size matching a TTL cache: its expected occupancy."""
    return ttl_expected_memory_mb(models, ttl_s)

"""Proportional vertical-scaling controller (Section 5.2).

The controller keeps the **miss speed** — cold starts per second, the
product of the miss ratio and the arrival rate — near a pre-specified
target, resizing the keep-alive cache through the hit-ratio curve:

    HR(c') = 1 - m = 1 - target_miss_speed / λ̂        (Equation 3)

where λ̂ is the exponentially smoothed observed arrival rate. The
target miss speed is typically derived from a desired miss ratio and
the workload's long-run average arrival rate.

Design choices straight from the paper:

* runs periodically at a coarse granularity (10 minutes by default),
* a large **30% error deadband**: the size only changes when the
  observed miss speed deviates from the target by more than 30%, to
  avoid memory-size churn and fragmentation,
* inversion of the hit-ratio curve picks the new size; bounds clamp it
  to the feasible range.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.stats import EWMA
from repro.provisioning.hit_ratio import HitRatioCurve

__all__ = ["ControllerDecision", "ProportionalController"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ControllerDecision:
    """One control-period outcome, for audit trails and Figure 9."""

    time_s: float
    arrival_rate: float
    smoothed_arrival_rate: float
    miss_speed: float
    target_miss_speed: float
    error_fraction: float
    resized: bool
    cache_size_mb: float


class ProportionalController:
    """Hit-ratio-curve-driven proportional cache-size controller."""

    def __init__(
        self,
        curve: HitRatioCurve,
        target_miss_speed: float,
        initial_size_mb: float,
        min_size_mb: float = 128.0,
        max_size_mb: Optional[float] = None,
        deadband: float = 0.3,
        ewma_alpha: float = 0.3,
        control_period_s: float = 600.0,
    ) -> None:
        if target_miss_speed <= 0:
            raise ValueError(
                f"target miss speed must be positive, got {target_miss_speed}"
            )
        if min_size_mb <= 0:
            raise ValueError(f"min size must be positive, got {min_size_mb}")
        if max_size_mb is not None and max_size_mb < min_size_mb:
            raise ValueError("max size must be >= min size")
        if not 0.0 <= deadband:
            raise ValueError(f"deadband must be non-negative, got {deadband}")
        self.curve = curve
        self.target_miss_speed = target_miss_speed
        self.cache_size_mb = float(initial_size_mb)
        self.min_size_mb = min_size_mb
        self.max_size_mb = max_size_mb
        self.deadband = deadband
        self.control_period_s = control_period_s
        self._arrival_ewma = EWMA(alpha=ewma_alpha)
        self.history: List[ControllerDecision] = []

    @classmethod
    def from_miss_ratio_target(
        cls,
        curve: HitRatioCurve,
        desired_miss_ratio: float,
        mean_arrival_rate: float,
        initial_size_mb: float,
        **kwargs,
    ) -> "ProportionalController":
        """Derive the miss-speed target as ``desired_miss_ratio * λ̄``."""
        if not 0.0 < desired_miss_ratio < 1.0:
            raise ValueError(
                f"desired miss ratio must be in (0, 1), got {desired_miss_ratio}"
            )
        if mean_arrival_rate <= 0:
            raise ValueError("mean arrival rate must be positive")
        return cls(
            curve,
            target_miss_speed=desired_miss_ratio * mean_arrival_rate,
            initial_size_mb=initial_size_mb,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # The control law
    # ------------------------------------------------------------------

    def _clamp(self, size_mb: float) -> float:
        size_mb = max(size_mb, self.min_size_mb)
        if self.max_size_mb is not None:
            size_mb = min(size_mb, self.max_size_mb)
        return size_mb

    def step(
        self,
        now_s: float,
        arrivals_in_period: int,
        cold_starts_in_period: int,
    ) -> ControllerDecision:
        """Run one control period; returns the (possibly no-op) decision.

        ``arrivals_in_period`` and ``cold_starts_in_period`` are the
        raw counts observed since the previous step.
        """
        period = self.control_period_s
        arrival_rate = arrivals_in_period / period
        miss_speed = cold_starts_in_period / period
        smoothed = self._arrival_ewma.update(arrival_rate)

        error = miss_speed - self.target_miss_speed
        error_fraction = abs(error) / self.target_miss_speed

        resized = False
        if error_fraction > self.deadband and smoothed > 0:
            # Equation 3: the miss ratio that would hit the target at
            # the current (smoothed) arrival intensity.
            desired_miss_ratio = self.target_miss_speed / smoothed
            if desired_miss_ratio >= 1.0:
                # Even a cache of size zero misses slowly enough.
                new_size = self.min_size_mb
            else:
                desired_hit_ratio = 1.0 - desired_miss_ratio
                try:
                    new_size = self.curve.required_size(desired_hit_ratio)
                except ValueError:
                    # Target above the compulsory-miss ceiling: give the
                    # workload its full working set.
                    new_size = self.curve.working_set_mb
            new_size = self._clamp(new_size)
            if abs(new_size - self.cache_size_mb) > 1e-9:
                logger.debug(
                    "controller resize at t=%.0fs: %.0f -> %.0f MB "
                    "(miss speed %.4f/s vs target %.4f/s)",
                    now_s,
                    self.cache_size_mb,
                    new_size,
                    miss_speed,
                    self.target_miss_speed,
                )
                self.cache_size_mb = new_size
                resized = True

        decision = ControllerDecision(
            time_s=now_s,
            arrival_rate=arrival_rate,
            smoothed_arrival_rate=smoothed,
            miss_speed=miss_speed,
            target_miss_speed=self.target_miss_speed,
            error_fraction=error_fraction,
            resized=resized,
            cache_size_mb=self.cache_size_mb,
        )
        self.history.append(decision)
        return decision

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def mean_cache_size_mb(self) -> float:
        """Average size over the control history (the Figure 9 claim:
        ~30% below a conservative static provision)."""
        if not self.history:
            return self.cache_size_mb
        return sum(d.cache_size_mb for d in self.history) / len(self.history)

    def resize_count(self) -> int:
        return sum(1 for d in self.history if d.resized)

"""SLA-driven server sizing.

The paper's provisioning targets a hit ratio or a miss speed; an
operator's contract is usually phrased one level up — "the p99
response time of function X stays under 2 seconds". This module
closes that gap:

* :func:`response_time_percentiles` — per-function response-time
  percentiles from a keep-alive simulation (a warm start costs the
  warm time; a cold start costs the cold time; drops count as SLA
  violations outright).
* :func:`minimum_memory_for_sla` — the smallest server memory meeting
  an :class:`SLATarget`, by bisection over simulated sizes. Cold-start
  ratios fall monotonically with memory for the resource-conserving
  policies, so percentile response times do too (up to concurrency
  noise), which is what makes bisection sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import percentile
from repro.core.policies.base import create_policy
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Trace

__all__ = [
    "SLATarget",
    "response_time_percentiles",
    "sla_violations",
    "minimum_memory_for_sla",
]


@dataclass(frozen=True)
class SLATarget:
    """A response-time objective.

    ``function_name=None`` applies the target to every function.
    ``max_drop_ratio`` bounds outright drops (which no latency
    percentile can express).
    """

    percentile: float = 99.0
    max_response_time_s: float = 2.0
    function_name: Optional[str] = None
    max_drop_ratio: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {self.percentile}"
            )
        if self.max_response_time_s <= 0:
            raise ValueError("response-time bound must be positive")
        if not 0.0 <= self.max_drop_ratio <= 1.0:
            raise ValueError("drop-ratio bound must be in [0, 1]")


def _replay(trace: Trace, policy_name: str, memory_mb: float):
    """Run one simulation collecting per-invocation response times."""
    policy = create_policy(policy_name)
    sim = KeepAliveSimulator(trace, policy, memory_mb)
    functions = trace.functions
    responses: Dict[str, List[float]] = {}
    drops: Dict[str, int] = {}
    for invocation in trace:
        function = functions[invocation.function_name]
        outcome = sim.process_invocation(function, invocation.time_s)
        if outcome == "dropped":
            drops[function.name] = drops.get(function.name, 0) + 1
        else:
            elapsed = (
                function.warm_time_s
                if outcome == "warm"
                else function.cold_time_s
            )
            responses.setdefault(function.name, []).append(elapsed)
    return responses, drops


def response_time_percentiles(
    trace: Trace,
    policy: str,
    memory_mb: float,
    q: float = 99.0,
) -> Dict[str, float]:
    """Per-function q-th percentile response time at one server size."""
    responses, __ = _replay(trace, policy, memory_mb)
    return {
        name: percentile(times, q) for name, times in responses.items()
    }


def sla_violations(
    trace: Trace,
    policy: str,
    memory_mb: float,
    target: SLATarget,
) -> List[str]:
    """Functions violating the target at this size (empty = SLA met)."""
    responses, drops = _replay(trace, policy, memory_mb)
    names = (
        [target.function_name]
        if target.function_name is not None
        else sorted(set(responses) | set(drops))
    )
    violators: List[str] = []
    for name in names:
        served = responses.get(name, [])
        dropped = drops.get(name, 0)
        total = len(served) + dropped
        if total == 0:
            continue
        if dropped / total > target.max_drop_ratio:
            violators.append(name)
            continue
        if served and percentile(served, target.percentile) > (
            target.max_response_time_s
        ):
            violators.append(name)
    return violators


def minimum_memory_for_sla(
    trace: Trace,
    target: SLATarget,
    policy: str = "GD",
    low_mb: Optional[float] = None,
    high_mb: Optional[float] = None,
    tolerance_mb: float = 128.0,
) -> Optional[float]:
    """Smallest memory (within tolerance) meeting the SLA, or None.

    ``high_mb`` defaults to the trace's one-container-per-function
    working set times two (covering concurrency); if even that size
    violates the target — e.g. the bound is below a function's warm
    time — the SLA is unmeetable by memory alone and None is returned.
    """
    if tolerance_mb <= 0:
        raise ValueError("tolerance must be positive")
    functions = trace.functions.values()
    if low_mb is None:
        low_mb = max(f.memory_mb for f in functions)
    if high_mb is None:
        high_mb = 2.0 * sum(f.memory_mb for f in functions)
    high_mb = max(high_mb, low_mb)
    if sla_violations(trace, policy, high_mb, target):
        return None
    if not sla_violations(trace, policy, low_mb, target):
        return low_mb
    lo, hi = low_mb, high_mb  # lo violates, hi meets
    while hi - lo > tolerance_mb:
        mid = 0.5 * (lo + hi)
        if sla_violations(trace, policy, mid, target):
            lo = mid
        else:
            hi = mid
    return hi

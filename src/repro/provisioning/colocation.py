"""Colocated-application memory pressure (Section 9's discussion).

FaaS servers often share memory with long-running containers and VMs;
the keep-alive cache is whatever the colocated tenants leave. Section
9 argues the provisioning machinery gives a principled way to examine
that tradeoff: the hit-ratio curve *is* the function-performance vs
memory-consumption frontier.

This module makes the tradeoff executable:

* :class:`ColocatedDemand` — a piecewise-constant timeline of memory
  a colocated application holds;
* :class:`ColocationSimulation` — replays a function workload while
  the keep-alive cache tracks the complement of the colocated demand,
  actuated by cascade deflation;
* :func:`tradeoff_curve` — the static frontier: function cold-start
  rate as a function of the memory ceded to colocated tenants, next to
  the hit-ratio-curve prediction.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.policies.base import KeepAlivePolicy, create_policy
from repro.provisioning.deflation import DeflationEngine, DeflationReport
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.sim.metrics import SimulationMetrics
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.model import Trace

__all__ = ["ColocatedDemand", "ColocationSimulation", "tradeoff_curve"]


class ColocatedDemand:
    """Piecewise-constant memory demand of colocated applications."""

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        """``steps`` are (start_time_s, demand_mb) pairs; the demand
        holds from each start time until the next. Must begin at or
        before time zero."""
        if not steps:
            raise ValueError("need at least one demand step")
        ordered = sorted(steps)
        if ordered[0][0] > 0:
            raise ValueError("demand must be defined from time zero")
        times = [t for t, __ in ordered]
        if len(set(times)) != len(times):
            raise ValueError("duplicate step times")
        if any(mb < 0 for __, mb in ordered):
            raise ValueError("demand must be non-negative")
        self._times = times
        self._demands = [mb for __, mb in ordered]

    def at(self, time_s: float) -> float:
        """The colocated demand at ``time_s``."""
        index = bisect.bisect_right(self._times, time_s) - 1
        if index < 0:
            return self._demands[0]
        return self._demands[index]

    @property
    def change_times(self) -> List[float]:
        return list(self._times)

    @property
    def peak_mb(self) -> float:
        return max(self._demands)


@dataclass
class ColocationResult:
    """Outcome of a colocation-aware replay."""

    metrics: SimulationMetrics
    deflations: List[DeflationReport] = field(default_factory=list)
    #: (time, cache capacity) at every demand change.
    capacity_timeline: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def total_deflation_latency_s(self) -> float:
        return sum(r.latency_s for r in self.deflations)


class ColocationSimulation:
    """Replay a trace while colocated demand squeezes the cache."""

    def __init__(
        self,
        trace: Trace,
        demand: ColocatedDemand,
        server_memory_mb: float,
        policy: str | KeepAlivePolicy = "GD",
        min_cache_mb: float = 128.0,
        deflation_engine: DeflationEngine | None = None,
    ) -> None:
        if server_memory_mb <= demand.peak_mb + min_cache_mb:
            raise ValueError(
                "server memory must exceed peak colocated demand plus "
                "the minimum cache size"
            )
        if isinstance(policy, str):
            policy = create_policy(policy)
        self.trace = trace
        self.demand = demand
        self.server_memory_mb = server_memory_mb
        self.policy = policy
        self.min_cache_mb = min_cache_mb
        self.engine = deflation_engine or DeflationEngine()
        initial_cache = max(
            server_memory_mb - demand.at(0.0), min_cache_mb
        )
        self.simulator = KeepAliveSimulator(trace, policy, initial_cache)

    def _cache_target_mb(self, now_s: float) -> float:
        return max(
            self.server_memory_mb - self.demand.at(now_s), self.min_cache_mb
        )

    def run(self) -> ColocationResult:
        result = ColocationResult(metrics=self.simulator.metrics)
        result.capacity_timeline.append(
            (0.0, self.simulator.pool.capacity_mb)
        )
        pending_changes = [
            t for t in self.demand.change_times if t > 0
        ]
        functions = self.trace.functions
        for invocation in self.trace:
            while pending_changes and invocation.time_s >= pending_changes[0]:
                change_time = pending_changes.pop(0)
                target = self._cache_target_mb(change_time)
                if abs(target - self.simulator.pool.capacity_mb) > 1e-9:
                    report = self.engine.resize(
                        self.simulator.pool, self.policy, target, change_time
                    )
                    result.deflations.append(report)
                    result.capacity_timeline.append(
                        (change_time, self.simulator.pool.capacity_mb)
                    )
            self.simulator.process_invocation(
                functions[invocation.function_name], invocation.time_s
            )
        return result


def tradeoff_curve(
    trace: Trace,
    server_memory_mb: float,
    colocated_levels_mb: Sequence[float],
    policy: str = "GD",
) -> List[Tuple[float, float, float]]:
    """The §9 frontier: colocated demand vs function performance.

    Returns (colocated_mb, simulated cold-start ratio, hit-ratio-curve
    predicted miss ratio) triples — the second and third columns are
    the measured and modelled sides of the same tradeoff.
    """
    curve = HitRatioCurve.from_distances(reuse_distances(trace))
    rows: List[Tuple[float, float, float]] = []
    for colocated_mb in colocated_levels_mb:
        cache_mb = server_memory_mb - colocated_mb
        if cache_mb <= 0:
            raise ValueError(
                f"colocated demand {colocated_mb} exceeds the server"
            )
        sim = KeepAliveSimulator(trace, create_policy(policy), cache_mb)
        metrics = sim.run().metrics
        rows.append(
            (colocated_mb, metrics.cold_start_ratio, curve.miss_ratio(cache_mb))
        )
    return rows

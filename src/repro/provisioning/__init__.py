"""Caching-based server provisioning (paper Section 5)."""

from repro.provisioning.analytical import (
    FunctionArrivalModel,
    characteristic_time,
    equivalent_cache_size_mb,
    equivalent_ttl,
    lru_hit_ratio,
    models_from_trace,
    ttl_expected_memory_mb,
    ttl_hit_ratio,
)
from repro.provisioning.autoscale import AutoscaledSimulation, AutoscaleResult
from repro.provisioning.cpu_autoscale import (
    CpuScalingDecision,
    PredictiveCpuScaler,
    ReactiveCpuScaler,
)
from repro.provisioning.controller import (
    ControllerDecision,
    ProportionalController,
)
from repro.provisioning.deflation import DeflationEngine, DeflationReport
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.report import (
    CapacityPlan,
    build_capacity_plan,
    render_capacity_plan,
)
from repro.provisioning.online_curve import (
    OnlineReuseTracker,
    PeriodicCurveProvider,
)
from repro.provisioning.reuse_distance import (
    FenwickTree,
    reuse_distances,
    reuse_distances_naive,
)
from repro.provisioning.sla import (
    SLATarget,
    minimum_memory_for_sla,
    response_time_percentiles,
    sla_violations,
)
from repro.provisioning.shards import (
    shards_curve,
    shards_reuse_distances,
    shards_sample_functions,
)
from repro.provisioning.static_provisioning import (
    ProvisioningDecision,
    StaticProvisioner,
    curve_from_trace,
)

__all__ = [
    "FunctionArrivalModel",
    "characteristic_time",
    "equivalent_cache_size_mb",
    "equivalent_ttl",
    "lru_hit_ratio",
    "models_from_trace",
    "ttl_expected_memory_mb",
    "ttl_hit_ratio",
    "CpuScalingDecision",
    "PredictiveCpuScaler",
    "ReactiveCpuScaler",
    "AutoscaledSimulation",
    "AutoscaleResult",
    "ControllerDecision",
    "ProportionalController",
    "DeflationEngine",
    "DeflationReport",
    "HitRatioCurve",
    "OnlineReuseTracker",
    "CapacityPlan",
    "build_capacity_plan",
    "render_capacity_plan",
    "PeriodicCurveProvider",
    "FenwickTree",
    "reuse_distances",
    "reuse_distances_naive",
    "SLATarget",
    "minimum_memory_for_sla",
    "response_time_percentiles",
    "sla_violations",
    "shards_curve",
    "shards_reuse_distances",
    "shards_sample_functions",
    "ProvisioningDecision",
    "StaticProvisioner",
    "curve_from_trace",
]

"""CPU auto-scaling companion to the memory controller (Section 5.2).

The paper's vertical memory scaling "can also be combined with cpu
auto-scaling based on the function arrival rate, using classical
predictive and reactive auto-scaling techniques found in web-clusters"
[Gandhi et al., AutoScale]. This module supplies that companion:

* **Reactive** scaling sizes the core count from the smoothed offered
  load (arrival rate x mean service time) and a target utilization,
  scaling *up* immediately but delaying scale-*down* by a hold time —
  AutoScale's key insight for avoiding oscillation under bursty load.
* **Predictive** scaling adds a seasonal (previous-cycle) forecast:
  the core count is provisioned for the maximum of the current
  estimate and the rate observed one period (e.g. one day) earlier,
  absorbing recurring diurnal ramps before they arrive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import EWMA

__all__ = ["CpuScalingDecision", "ReactiveCpuScaler", "PredictiveCpuScaler"]


@dataclass(frozen=True)
class CpuScalingDecision:
    """One control-period outcome."""

    time_s: float
    arrival_rate: float
    offered_load_cores: float
    cores: int
    resized: bool


class ReactiveCpuScaler:
    """Utilization-targeting reactive core scaler with scale-down hold."""

    def __init__(
        self,
        target_utilization: float = 0.7,
        min_cores: int = 1,
        max_cores: int = 256,
        scale_down_hold_s: float = 1200.0,
        ewma_alpha: float = 0.3,
        initial_cores: int = 1,
    ) -> None:
        if not 0.0 < target_utilization < 1.0:
            raise ValueError(
                f"target utilization must be in (0, 1), got {target_utilization}"
            )
        if min_cores < 1 or max_cores < min_cores:
            raise ValueError("need 1 <= min_cores <= max_cores")
        self.target_utilization = target_utilization
        self.min_cores = min_cores
        self.max_cores = max_cores
        self.scale_down_hold_s = scale_down_hold_s
        self.cores = max(min(initial_cores, max_cores), min_cores)
        self._rate_ewma = EWMA(alpha=ewma_alpha)
        self._below_since: Optional[float] = None
        self.history: List[CpuScalingDecision] = []

    def _desired_cores(self, offered_load: float) -> int:
        raw = math.ceil(offered_load / self.target_utilization)
        return max(self.min_cores, min(self.max_cores, raw))

    def _offered_load(self, now_s: float, rate: float, service_s: float) -> float:
        smoothed = self._rate_ewma.update(rate)
        return smoothed * service_s

    def step(
        self,
        now_s: float,
        arrival_rate: float,
        mean_service_time_s: float,
    ) -> CpuScalingDecision:
        """One control period: observe the rate, maybe resize."""
        if mean_service_time_s <= 0:
            raise ValueError("mean service time must be positive")
        offered = self._offered_load(now_s, arrival_rate, mean_service_time_s)
        desired = self._desired_cores(offered)
        resized = False
        if desired > self.cores:
            # Scale up immediately: queues build fast.
            self.cores = desired
            self._below_since = None
            resized = True
        elif desired < self.cores:
            # Scale down only after the demand has stayed low for the
            # hold time (AutoScale's conservative release).
            if self._below_since is None:
                self._below_since = now_s
            elif now_s - self._below_since >= self.scale_down_hold_s:
                self.cores = desired
                self._below_since = None
                resized = True
        else:
            self._below_since = None
        decision = CpuScalingDecision(
            time_s=now_s,
            arrival_rate=arrival_rate,
            offered_load_cores=offered,
            cores=self.cores,
            resized=resized,
        )
        self.history.append(decision)
        return decision

    def mean_cores(self) -> float:
        if not self.history:
            return float(self.cores)
        return sum(d.cores for d in self.history) / len(self.history)


class PredictiveCpuScaler(ReactiveCpuScaler):
    """Reactive scaling plus a seasonal (previous-cycle) forecast.

    The provisioned cores cover ``max(current estimate, rate at the
    same phase one season ago)``, so recurring ramps (the paper's
    diurnal pattern) are absorbed proactively.
    """

    def __init__(
        self,
        season_s: float = 24 * 3600.0,
        bucket_s: float = 600.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if season_s <= 0 or bucket_s <= 0 or bucket_s > season_s:
            raise ValueError("need 0 < bucket_s <= season_s")
        self.season_s = season_s
        self.bucket_s = bucket_s
        self._seasonal: Dict[int, float] = {}

    def _bucket(self, now_s: float) -> int:
        return int((now_s % self.season_s) / self.bucket_s)

    def _offered_load(self, now_s: float, rate: float, service_s: float) -> float:
        smoothed = self._rate_ewma.update(rate)
        bucket = self._bucket(now_s)
        forecast = self._seasonal.get(bucket, 0.0)
        self._seasonal[bucket] = rate
        return max(smoothed, forecast) * service_s

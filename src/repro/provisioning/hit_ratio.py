"""Hit-ratio curves (Section 5.1, Equation 2).

The hit ratio at cache size ``c`` is the probability that a reuse
distance is at most ``c`` — the CDF of the reuse-distance
distribution. The curve supports the two provisioning idioms the paper
uses:

* **target hit ratio** — pick the smallest size achieving, say, 90%
  (:meth:`HitRatioCurve.required_size`), and
* **inflection point** — pick the size where marginal utility drops
  off, i.e. the knee of the curve
  (:meth:`HitRatioCurve.inflection_point_mb`, a Kneedle-style
  max-distance-from-chord detector).

The curve can be built from exact reuse distances or from weighted
SHARDS samples; compulsory misses (infinite distances) stay in the
denominator, so the curve saturates slightly below 1 for finite
traces, exactly as an optimal cache would behave.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["HitRatioCurve"]


class HitRatioCurve:
    """The empirical CDF of (possibly weighted) reuse distances."""

    def __init__(
        self,
        finite_distances: Sequence[float],
        weights: Optional[Sequence[float]] = None,
        infinite_weight: float = 0.0,
    ) -> None:
        if weights is None:
            weights = [1.0] * len(finite_distances)
        if len(weights) != len(finite_distances):
            raise ValueError("weights must match distances in length")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        if infinite_weight < 0:
            raise ValueError("infinite weight must be non-negative")
        pairs = sorted(zip(finite_distances, weights))
        self._distances: List[float] = []
        self._cumulative: List[float] = []
        running = 0.0
        for distance, weight in pairs:
            if distance < 0 or math.isinf(distance):
                raise ValueError(
                    "finite_distances must be finite and non-negative; "
                    "pass compulsory misses via infinite_weight"
                )
            running += weight
            if self._distances and self._distances[-1] == distance:
                self._cumulative[-1] = running
            else:
                self._distances.append(distance)
                self._cumulative.append(running)
        self._finite_weight = running
        self._total_weight = running + infinite_weight
        if self._total_weight <= 0:
            raise ValueError("curve needs positive total weight")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_distances(cls, distances: Iterable[float]) -> "HitRatioCurve":
        """Build from raw reuse distances; ``inf`` marks compulsory misses.

        >>> curve = HitRatioCurve.from_distances([0.0, 100.0, float("inf")])
        >>> curve.hit_ratio(50.0)  # only the 0-distance reuse hits
        0.3333333333333333
        """
        finite: List[float] = []
        infinite = 0.0
        for d in distances:
            if math.isinf(d):
                infinite += 1.0
            else:
                finite.append(d)
        return cls(finite, infinite_weight=infinite)

    @classmethod
    def from_weighted_distances(
        cls,
        distances: Iterable[float],
        weights: Iterable[float],
    ) -> "HitRatioCurve":
        """Build from weighted samples (the SHARDS estimator's output)."""
        finite: List[float] = []
        finite_weights: List[float] = []
        infinite = 0.0
        for d, w in zip(distances, weights):
            if math.isinf(d):
                infinite += w
            else:
                finite.append(d)
                finite_weights.append(w)
        return cls(finite, finite_weights, infinite_weight=infinite)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def hit_ratio(self, cache_size_mb: float) -> float:
        """HR(c): fraction of accesses with reuse distance <= c."""
        if cache_size_mb < 0:
            return 0.0
        idx = bisect.bisect_right(self._distances, cache_size_mb)
        if idx == 0:
            return 0.0
        return self._cumulative[idx - 1] / self._total_weight

    def miss_ratio(self, cache_size_mb: float) -> float:
        return 1.0 - self.hit_ratio(cache_size_mb)

    @property
    def max_hit_ratio(self) -> float:
        """The asymptote: 1 minus the compulsory-miss fraction."""
        return self._finite_weight / self._total_weight

    @property
    def working_set_mb(self) -> float:
        """Smallest size achieving the maximum hit ratio."""
        return self._distances[-1] if self._distances else 0.0

    def required_size(self, target_hit_ratio: float) -> float:
        """HR⁻¹: the smallest cache size achieving the target hit ratio.

        Raises ``ValueError`` when the target exceeds the achievable
        maximum (compulsory misses cap the curve).
        """
        if not 0.0 <= target_hit_ratio <= 1.0:
            raise ValueError(
                f"target hit ratio must be in [0, 1], got {target_hit_ratio}"
            )
        if target_hit_ratio <= 0.0:
            return 0.0
        if target_hit_ratio > self.max_hit_ratio + 1e-12:
            raise ValueError(
                f"target {target_hit_ratio:.3f} exceeds max achievable "
                f"hit ratio {self.max_hit_ratio:.3f}"
            )
        target_weight = target_hit_ratio * self._total_weight
        idx = bisect.bisect_left(
            self._cumulative, target_weight - 1e-12 * self._total_weight
        )
        idx = min(idx, len(self._distances) - 1)
        return self._distances[idx]

    def as_series(
        self, cache_sizes_mb: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """(size, hit ratio) pairs for plotting."""
        return [(c, self.hit_ratio(c)) for c in cache_sizes_mb]

    def inflection_point_mb(self, num_points: int = 512) -> float:
        """Knee of the curve: the size of maximum marginal-utility drop.

        Kneedle-style: normalize the curve to the unit square over
        [0, working-set size] and return the size maximizing the gap
        between the curve and the straight chord — the point past
        which additional memory yields diminishing returns.
        """
        if not self._distances:
            return 0.0
        max_size = self.working_set_mb
        if max_size <= 0:
            return 0.0
        base = self.hit_ratio(0.0)
        top = self.max_hit_ratio
        if top <= base:
            return 0.0
        best_size = 0.0
        best_key = (-math.inf, -math.inf)
        for i in range(num_points + 1):
            size = max_size * i / num_points
            x = size / max_size
            y = (self.hit_ratio(size) - base) / (top - base)
            # Ties on the gap (e.g. a single sharp step, where the
            # chord touches the curve at both ends) resolve toward the
            # point with the higher hit ratio — a knee of "size zero"
            # is never a useful provisioning answer.
            key = (y - x, y)
            if key > best_key:
                best_key = key
                best_size = size
        return best_size

    def __repr__(self) -> str:
        return (
            f"HitRatioCurve(samples={len(self._distances)}, "
            f"max_hit_ratio={self.max_hit_ratio:.3f}, "
            f"working_set={self.working_set_mb:.0f} MB)"
        )

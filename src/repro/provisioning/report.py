"""One-shot capacity-planning report for a workload.

Ties the whole Section 5 pipeline into a single artifact a FaaS
operator can act on: workload characterization, the hit-ratio curve at
provisioning-relevant sizes, static sizing decisions (target hit ratio
and knee), the concurrency headroom correction, and a simulated
validation of each decision under the Greedy-Dual policy. Rendered as
Markdown so it drops into a runbook or ticket directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.concurrency import (
    concurrency_headroom_mb,
    working_set_mb,
)
from repro.analysis.workload import WorkloadProfile, profile_trace
from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.provisioning.static_provisioning import (
    ProvisioningDecision,
    StaticProvisioner,
)
from repro.sim.scheduler import simulate
from repro.traces.model import Trace

__all__ = ["CapacityPlan", "build_capacity_plan", "render_capacity_plan"]


@dataclass(frozen=True)
class SizingOption:
    """One candidate server size with predicted and simulated outcomes."""

    label: str
    memory_mb: float
    predicted_hit_ratio: float
    simulated_hit_ratio: float
    simulated_exec_increase_pct: float
    simulated_drop_ratio: float


@dataclass(frozen=True)
class CapacityPlan:
    """Everything the report renders, as structured data."""

    trace_name: str
    profile: WorkloadProfile
    working_set_mb: float
    concurrency_headroom_mb: float
    max_achievable_hit_ratio: float
    options: List[SizingOption]

    def recommended(self) -> SizingOption:
        """The smallest option whose simulated drops are negligible
        and whose hit ratio is within 2% of the best option's."""
        viable = [o for o in self.options if o.simulated_drop_ratio < 0.001]
        pool = viable or self.options
        best_hr = max(o.simulated_hit_ratio for o in pool)
        good = [o for o in pool if o.simulated_hit_ratio >= best_hr - 0.02]
        return min(good, key=lambda o: o.memory_mb)


def build_capacity_plan(
    trace: Trace,
    target_hit_ratios: Sequence[float] = (0.8, 0.9, 0.95),
    policy: str = "GD",
    include_headroom_option: bool = True,
) -> CapacityPlan:
    """Run the full Section 5.1 pipeline and validate it in simulation."""
    profile = profile_trace(trace)
    curve = HitRatioCurve.from_distances(reuse_distances(trace))
    headroom = concurrency_headroom_mb(trace)
    working_set = working_set_mb(trace)

    candidates: List[tuple] = []
    for target in target_hit_ratios:
        provisioner = StaticProvisioner(
            curve, strategy="target-hit-ratio", target_hit_ratio=target
        )
        decision = provisioner.decide()
        candidates.append((f"target HR {target:.0%}", decision))
    knee = StaticProvisioner(curve, strategy="inflection").decide()
    candidates.append(("inflection point", knee))
    if include_headroom_option:
        corrected = ProvisioningDecision(
            memory_mb=knee.memory_mb + headroom,
            predicted_hit_ratio=curve.hit_ratio(knee.memory_mb + headroom),
            strategy="inflection + concurrency headroom",
        )
        candidates.append(("knee + headroom", corrected))

    # No candidate below the largest single container — smaller sizes
    # cannot even host one invocation of the biggest function.
    floor_mb = max(f.memory_mb for f in trace.functions.values())

    options: List[SizingOption] = []
    for label, decision in candidates:
        memory_mb = max(decision.memory_mb, floor_mb)
        if memory_mb != decision.memory_mb:
            decision = ProvisioningDecision(
                memory_mb=memory_mb,
                predicted_hit_ratio=curve.hit_ratio(memory_mb),
                strategy=decision.strategy,
            )
        metrics = simulate(trace, policy, decision.memory_mb).metrics
        options.append(
            SizingOption(
                label=label,
                memory_mb=decision.memory_mb,
                predicted_hit_ratio=decision.predicted_hit_ratio,
                simulated_hit_ratio=metrics.hit_ratio,
                simulated_exec_increase_pct=metrics.exec_time_increase_pct,
                simulated_drop_ratio=metrics.drop_ratio,
            )
        )
    options.sort(key=lambda o: o.memory_mb)
    return CapacityPlan(
        trace_name=trace.name,
        profile=profile,
        working_set_mb=working_set,
        concurrency_headroom_mb=headroom,
        max_achievable_hit_ratio=curve.max_hit_ratio,
        options=options,
    )


def render_capacity_plan(plan: CapacityPlan) -> str:
    """Render a plan as a Markdown report."""
    lines: List[str] = []
    lines.append(f"# Capacity plan: {plan.trace_name}")
    lines.append("")
    lines.append("## Workload")
    lines.append("")
    for label, value in plan.profile.rows():
        if isinstance(value, float):
            lines.append(f"- {label}: {value:.4g}")
        else:
            lines.append(f"- {label}: {value}")
    lines.append(
        f"- working set: {plan.working_set_mb / 1024:.2f} GB "
        f"(+ {plan.concurrency_headroom_mb / 1024:.2f} GB concurrency headroom)"
    )
    lines.append(
        f"- max achievable hit ratio: {plan.max_achievable_hit_ratio:.1%}"
    )
    lines.append("")
    lines.append("## Sizing options")
    lines.append("")
    lines.append(
        "| option | size (GB) | predicted HR | simulated HR "
        "| exec incr. % | drop ratio |"
    )
    lines.append("|---|---|---|---|---|---|")
    recommended = plan.recommended()
    for option in plan.options:
        marker = " **(recommended)**" if option is recommended else ""
        lines.append(
            f"| {option.label}{marker} "
            f"| {option.memory_mb / 1024:.2f} "
            f"| {option.predicted_hit_ratio:.1%} "
            f"| {option.simulated_hit_ratio:.1%} "
            f"| {option.simulated_exec_increase_pct:.2f} "
            f"| {option.simulated_drop_ratio:.4f} |"
        )
    lines.append("")
    lines.append(
        "Predicted hit ratios come from the reuse-distance curve "
        "(Equation 2); simulated columns replay the trace under the "
        "Greedy-Dual keep-alive policy at that size."
    )
    return "\n".join(lines)

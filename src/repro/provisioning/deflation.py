"""Cascade VM deflation (Sections 5.2 and 6).

When the controller shrinks the server, FaasCache uses *cascade
deflation* [Sharma et al., EuroSys 19]: reclaim memory from the
cheapest mechanism first —

1. **Container-pool shrink** — evict warm containers (in the
   keep-alive policy's priority order) until the pool fits the new
   size. Nearly free: the cost is future cold starts, which the
   policy already prices.
2. **Guest-OS memory hot-unplug** — return now-free guest memory to
   the hypervisor; modelled with a per-GB latency.
3. **Hypervisor page swapping** — the expensive fallback when memory
   cannot be unplugged (e.g. fragmentation); also a per-GB latency,
   an order of magnitude slower.

The model reports how much each stage reclaimed and the total
actuation latency, so experiments can weigh controller aggressiveness
against deflation cost. Running containers are never touched: the
capacity floor is the memory of in-flight invocations.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass
from typing import List

from repro.core.container import Container
from repro.core.policies.base import KeepAlivePolicy
from repro.core.pool import ContainerPool

__all__ = ["DeflationReport", "DeflationEngine"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class DeflationReport:
    """Outcome of one deflate/inflate actuation."""

    requested_mb: float
    achieved_mb: float
    pool_shrink_mb: float
    hot_unplug_mb: float
    page_swap_mb: float
    evicted_containers: int
    latency_s: float

    @property
    def fully_achieved(self) -> bool:
        return abs(self.achieved_mb - self.requested_mb) < 1e-6


class DeflationEngine:
    """Applies controller size decisions to a live container pool."""

    def __init__(
        self,
        hot_unplug_s_per_gb: float = 0.5,
        page_swap_s_per_gb: float = 5.0,
        unplug_fraction: float = 0.8,
    ) -> None:
        """``unplug_fraction`` is the share of reclaimed memory the
        guest OS can hot-unplug; the rest must be swapped by the
        hypervisor (fragmentation prevents a clean unplug)."""
        if not 0.0 <= unplug_fraction <= 1.0:
            raise ValueError(
                f"unplug fraction must be in [0, 1], got {unplug_fraction}"
            )
        self.hot_unplug_s_per_gb = hot_unplug_s_per_gb
        self.page_swap_s_per_gb = page_swap_s_per_gb
        self.unplug_fraction = unplug_fraction

    def resize(
        self,
        pool: ContainerPool,
        policy: KeepAlivePolicy,
        new_capacity_mb: float,
        now_s: float,
    ) -> DeflationReport:
        """Deflate or inflate ``pool`` toward ``new_capacity_mb``.

        Inflation is instantaneous (memory hot-plug is cheap). For
        deflation, warm containers are evicted in policy-priority
        order first; the capacity never drops below the memory held by
        running containers, so the achieved size may exceed the
        request.
        """
        if new_capacity_mb <= 0:
            raise ValueError(f"capacity must be positive, got {new_capacity_mb}")
        old_capacity = pool.capacity_mb

        if new_capacity_mb >= old_capacity:
            pool.set_capacity(new_capacity_mb)
            return DeflationReport(
                requested_mb=new_capacity_mb,
                achieved_mb=new_capacity_mb,
                pool_shrink_mb=0.0,
                hot_unplug_mb=0.0,
                page_swap_mb=0.0,
                evicted_containers=0,
                latency_s=0.0,
            )

        # Stage 1: shrink the container pool.
        evicted = 0
        pool_shrink_mb = 0.0
        while pool.used_mb > new_capacity_mb + 1e-9:
            idle = pool.idle_containers()
            if not idle:
                break
            idle.sort(
                key=lambda c: (
                    policy.priority(c, now_s),
                    c.last_used_s,
                    c.container_id,
                )
            )
            victim = idle[0]
            pool.evict(victim)
            policy.on_evict(victim, now_s, pool, pressure=True)
            pool_shrink_mb += victim.memory_mb
            evicted += 1

        running_floor = pool.used_mb
        achieved_mb = max(new_capacity_mb, running_floor)
        pool.set_capacity(achieved_mb)

        # Stages 2 and 3: return the freed memory to the host.
        reclaimed_gb = (old_capacity - achieved_mb) / 1024.0
        hot_unplug_gb = reclaimed_gb * self.unplug_fraction
        page_swap_gb = reclaimed_gb - hot_unplug_gb
        latency_s = (
            hot_unplug_gb * self.hot_unplug_s_per_gb
            + page_swap_gb * self.page_swap_s_per_gb
        )
        logger.debug(
            "deflation at t=%.0fs: %.0f -> %.0f MB (%d containers evicted, "
            "%.1f s latency)",
            now_s,
            old_capacity,
            achieved_mb,
            evicted,
            latency_s,
        )
        return DeflationReport(
            requested_mb=new_capacity_mb,
            achieved_mb=achieved_mb,
            pool_shrink_mb=pool_shrink_mb,
            hot_unplug_mb=hot_unplug_gb * 1024.0,
            page_swap_mb=page_swap_gb * 1024.0,
            evicted_containers=evicted,
            latency_s=latency_s,
        )

"""SHARDS: sampled reuse-distance estimation (Section 5.1).

Computing reuse distances for an entire trace is an expensive one-time
operation — O(N·M) conventionally. The paper notes that "sampling
techniques such as SHARDS [Waldspurger et al., FAST 15] can be applied
to drastically reduce the overhead".

SHARDS (Spatially Hashed Approximate Reuse Distance Sampling) filters
the trace by *function identity*: a function is monitored iff
``hash(name) mod P < P * rate``. Reuse distances computed over the
filtered trace are then rescaled by ``1 / rate`` (each monitored
function stands in for ``1/rate`` of the population), and each sample
carries weight ``1 / rate`` when building the hit-ratio curve.

Spatial hashing is essential: sampling *invocations* independently
would break reuse sequences, while sampling *functions* preserves
every monitored function's full inter-arrival structure.
"""

from __future__ import annotations

import hashlib
import math
from typing import List, Tuple

from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.traces.model import Trace

__all__ = ["shards_sample_functions", "shards_reuse_distances", "shards_curve"]

_HASH_SPACE = 2**64


def _spatial_hash(name: str, seed: int) -> float:
    """Deterministic hash of a function name to [0, 1)."""
    digest = hashlib.blake2b(
        name.encode("utf-8"), digest_size=8, salt=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little") / _HASH_SPACE


def shards_sample_functions(
    trace: Trace, rate: float, seed: int = 0
) -> List[str]:
    """Function names selected by the spatial hash filter."""
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sampling rate must be in (0, 1], got {rate}")
    return [
        name
        for name in trace.functions
        if _spatial_hash(name, seed) < rate
    ]


def shards_reuse_distances(
    trace: Trace, rate: float, seed: int = 0
) -> Tuple[List[float], List[float]]:
    """Estimated (distances, weights) from a SHARDS-sampled trace.

    Distances are scaled by ``1/rate``; every sample carries weight
    ``1/rate``. Infinite distances (compulsory misses of monitored
    functions) keep their infinite value and scaled weight.
    """
    selected = shards_sample_functions(trace, rate, seed)
    if not selected:
        # Returning empty lists here used to propagate a degenerate
        # (empty) hit-ratio curve into capacity planning; fail loudly
        # with the knobs the caller can actually turn.
        raise ValueError(
            f"SHARDS rate {rate} selected 0 of {len(trace.functions)} "
            f"functions in trace {trace.name!r} (seed {seed}); raise the "
            "sampling rate or try another seed"
        )
    filtered = trace.restrict(selected, name=f"{trace.name}-shards")
    scale = 1.0 / rate
    distances: List[float] = []
    weights: List[float] = []
    for distance in reuse_distances(filtered):
        if math.isinf(distance):
            distances.append(distance)
        else:
            distances.append(distance * scale)
        weights.append(scale)
    return distances, weights


def shards_curve(trace: Trace, rate: float, seed: int = 0) -> HitRatioCurve:
    """A hit-ratio curve estimated from a SHARDS sample.

    >>> from repro.traces.synth import cyclic_trace
    >>> curve = shards_curve(cyclic_trace(num_functions=32), rate=1.0)
    >>> curve.max_hit_ratio > 0.9
    True
    """
    # A zero-function sample raises inside shards_reuse_distances with
    # the rate and sampled count; anything that survives it has at
    # least one monitored function and therefore a non-empty curve.
    distances, weights = shards_reuse_distances(trace, rate, seed)
    return HitRatioCurve.from_weighted_distances(distances, weights)

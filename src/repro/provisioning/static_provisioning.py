"""Static server-size provisioning (Section 5.1).

Given a workload's hit-ratio curve, the static provisioner selects a
server memory size by one of the paper's two criteria:

* ``target-hit-ratio`` — the smallest size achieving a desired hit
  ratio (e.g. 90%), or
* ``inflection`` — the knee of the curve, where the marginal utility
  of additional memory collapses.

The decision also reports the predicted hit ratio at the chosen size
so operators can see what they are buying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.provisioning.hit_ratio import HitRatioCurve
from repro.provisioning.reuse_distance import reuse_distances
from repro.traces.model import Trace

__all__ = ["ProvisioningDecision", "StaticProvisioner", "curve_from_trace"]


def curve_from_trace(trace: Trace) -> HitRatioCurve:
    """The hit-ratio curve of a trace, from exact reuse distances."""
    return HitRatioCurve.from_distances(reuse_distances(trace))


@dataclass(frozen=True)
class ProvisioningDecision:
    """The provisioner's output: a size and its predicted performance."""

    memory_mb: float
    predicted_hit_ratio: float
    strategy: str

    @property
    def memory_gb(self) -> float:
        return self.memory_mb / 1024.0


class StaticProvisioner:
    """Sizes a server from a hit-ratio curve."""

    STRATEGIES = ("target-hit-ratio", "inflection")

    def __init__(
        self,
        curve: HitRatioCurve,
        strategy: str = "target-hit-ratio",
        target_hit_ratio: float = 0.9,
        headroom_fraction: float = 0.0,
    ) -> None:
        """``headroom_fraction`` adds slack for concurrent executions,
        which the reuse-distance model does not capture (the paper's
        "Limitations of the Caching Analogy")."""
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {self.STRATEGIES}"
            )
        if headroom_fraction < 0:
            raise ValueError("headroom must be non-negative")
        self.curve = curve
        self.strategy = strategy
        self.target_hit_ratio = target_hit_ratio
        self.headroom_fraction = headroom_fraction

    def decide(self) -> ProvisioningDecision:
        """Pick a server memory size.

        With ``target-hit-ratio``, an unreachable target (above the
        compulsory-miss ceiling) falls back to the full working-set
        size — the best any cache can do.
        """
        if self.strategy == "inflection":
            base = self.curve.inflection_point_mb()
        else:
            try:
                base = self.curve.required_size(self.target_hit_ratio)
            except ValueError:
                base = self.curve.working_set_mb
        memory_mb = base * (1.0 + self.headroom_fraction)
        return ProvisioningDecision(
            memory_mb=memory_mb,
            predicted_hit_ratio=self.curve.hit_ratio(memory_mb),
            strategy=self.strategy,
        )

"""Size-weighted reuse distances (Section 5.1).

A function's reuse distance is the total memory size of the *unique*
functions invoked between successive invocations of that same function
— in the request sequence ``A B C B C A``, the reuse distance of the
second ``A`` is ``size(B) + size(C)``. If the keep-alive cache is at
least that large, the second ``A`` is a warm start (under an optimal
resource-conserving policy), so the CDF of reuse distances *is* the
hit-ratio curve (Equation 2).

Two implementations are provided:

* :func:`reuse_distances_naive` — the conventional scan the paper
  describes, O(N·M) time (N invocations, M unique functions). Kept as
  the executable specification and used by the property tests.
* :func:`reuse_distances` — a Fenwick-tree (binary indexed tree)
  formulation of Mattson's stack algorithm, O(N·log N), numerically
  identical. This is the default.

First invocations of a function have no previous use; their distance
is ``math.inf`` (a compulsory miss at every cache size).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.traces.model import Trace

__all__ = ["reuse_distances", "reuse_distances_naive", "FenwickTree"]


class FenwickTree:
    """A binary indexed tree over float weights, 0-indexed externally."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._size = size
        self._tree = [0.0] * (size + 1)

    def add(self, index: int, delta: float) -> None:
        """Add ``delta`` to the weight at ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        i = index + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> float:
        """Sum of weights at positions [0, index]."""
        if index < 0:
            return 0.0
        i = min(index, self._size - 1) + 1
        total = 0.0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> float:
        """Sum of weights at positions [lo, hi]; empty ranges are 0."""
        if hi < lo:
            return 0.0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)

    def __len__(self) -> int:
        return self._size


def reuse_distances_naive(trace: Trace) -> List[float]:
    """Reference O(N·M) reuse-distance scan, one distance per invocation."""
    functions = trace.functions
    invocations = trace.invocations
    last_index: Dict[str, int] = {}
    distances: List[float] = []
    for i, invocation in enumerate(invocations):
        name = invocation.function_name
        previous = last_index.get(name)
        if previous is None:
            distances.append(math.inf)
        else:
            seen: Dict[str, float] = {}
            for j in range(previous + 1, i):
                other = invocations[j].function_name
                if other != name:
                    seen[other] = functions[other].memory_mb
            distances.append(sum(seen.values()))
        last_index[name] = i
    return distances


def reuse_distances(trace: Trace) -> List[float]:
    """Fenwick-tree reuse distances, one per invocation, in trace order.

    The tree holds, at each invocation position, the memory size of
    the invoked function if that position is the function's *most
    recent* occurrence, else zero. The size-weighted count of unique
    functions between two occurrences of ``f`` is then a range sum.

    >>> from repro.traces.model import Trace, TraceFunction, Invocation
    >>> fns = [TraceFunction(n, m, 1.0, 2.0) for n, m in
    ...        [("A", 10), ("B", 20), ("C", 30)]]
    >>> seq = [Invocation(float(i), n) for i, n in enumerate("ABCBCA")]
    >>> reuse_distances(Trace(fns, seq))[-1]  # A after B C B C
    50.0
    """
    functions = trace.functions
    invocations = trace.invocations
    n = len(invocations)
    tree = FenwickTree(n)
    last_index: Dict[str, int] = {}
    distances: List[float] = []
    for i, invocation in enumerate(invocations):
        name = invocation.function_name
        size = functions[name].memory_mb
        previous = last_index.get(name)
        if previous is None:
            distances.append(math.inf)
        else:
            # Positions strictly between the two occurrences hold the
            # most-recent entries of *other* functions only, because
            # f's own most-recent entry sits at `previous`.
            distances.append(tree.range_sum(previous + 1, i - 1))
            tree.add(previous, -size)
        tree.add(i, size)
        last_index[name] = i
    return distances

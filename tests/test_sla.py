"""Tests for SLA-driven sizing."""

import pytest

from repro.provisioning.sla import (
    SLATarget,
    minimum_memory_for_sla,
    response_time_percentiles,
    sla_violations,
)
from repro.traces.model import Invocation, Trace, TraceFunction
from tests.conftest import make_trace


def churn_trace(num_functions=8, rounds=40):
    """Functions cycling with heterogeneous init costs."""
    functions = [
        TraceFunction(f"f{i}", 256.0, warm_time_s=0.5, cold_time_s=3.5)
        for i in range(num_functions)
    ]
    invocations = []
    t = 0.0
    for __ in range(rounds):
        for f in functions:
            invocations.append(Invocation(t, f.name))
            t += 5.0
    return Trace(functions, invocations, name="churn")


class TestSLATarget:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLATarget(percentile=0.0)
        with pytest.raises(ValueError):
            SLATarget(max_response_time_s=0.0)
        with pytest.raises(ValueError):
            SLATarget(max_drop_ratio=1.5)


class TestPercentiles:
    def test_all_warm_gives_warm_time(self):
        trace = make_trace("AAAA", gap_s=30.0)
        p = response_time_percentiles(trace, "GD", 10_000.0, q=50.0)
        assert p["A"] == pytest.approx(1.0)  # conftest warm time

    def test_tight_memory_raises_percentiles(self):
        trace = churn_trace()
        roomy = response_time_percentiles(trace, "GD", 8 * 256.0, q=99.0)
        tight = response_time_percentiles(trace, "GD", 3 * 256.0, q=99.0)
        assert max(tight.values()) >= max(roomy.values())


class TestViolations:
    def test_met_sla_has_no_violators(self):
        trace = churn_trace()
        target = SLATarget(percentile=99.0, max_response_time_s=4.0)
        assert sla_violations(trace, "GD", 8 * 256.0, target) == []

    def test_unmeetable_bound_flags_everything(self):
        trace = churn_trace()
        # Bound below even the warm time.
        target = SLATarget(percentile=50.0, max_response_time_s=0.1)
        violators = sla_violations(trace, "GD", 10_000.0, target)
        assert len(violators) == 8

    def test_single_function_scope(self):
        trace = churn_trace()
        target = SLATarget(
            percentile=99.0, max_response_time_s=0.1, function_name="f0"
        )
        assert sla_violations(trace, "GD", 10_000.0, target) == ["f0"]

    def test_drop_bound(self):
        a = TraceFunction("A", 600.0, warm_time_s=50.0, cold_time_s=60.0)
        b = TraceFunction("B", 600.0, warm_time_s=1.0, cold_time_s=2.0)
        trace = Trace([a, b], [Invocation(0.0, "A"), Invocation(1.0, "B")])
        target = SLATarget(percentile=99.0, max_response_time_s=100.0)
        violators = sla_violations(trace, "GD", 1000.0, target)
        assert violators == ["B"]  # dropped, and drops bound is 0


class TestMinimumMemory:
    def test_finds_working_set_scale_size(self):
        trace = churn_trace(num_functions=8)
        # p99 under 1 s requires essentially all warm: needs all 8
        # containers resident (2048 MB).
        target = SLATarget(percentile=90.0, max_response_time_s=1.0)
        size = minimum_memory_for_sla(
            trace, target, policy="GD", tolerance_mb=64.0
        )
        assert size is not None
        assert 1536.0 <= size <= 2304.0
        assert sla_violations(trace, "GD", size, target) == []

    def test_loose_sla_needs_only_floor(self):
        trace = churn_trace()
        target = SLATarget(percentile=99.0, max_response_time_s=10.0)
        size = minimum_memory_for_sla(trace, target, policy="GD")
        assert size == pytest.approx(256.0)  # one container floor

    def test_impossible_sla_returns_none(self):
        trace = churn_trace()
        target = SLATarget(percentile=50.0, max_response_time_s=0.01)
        assert minimum_memory_for_sla(trace, target) is None

    def test_tolerance_validation(self):
        trace = churn_trace()
        with pytest.raises(ValueError):
            minimum_memory_for_sla(
                trace, SLATarget(), tolerance_mb=0.0
            )

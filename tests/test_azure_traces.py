"""Tests for the synthetic Azure dataset generator, preprocessing, and samplers."""

import math

import pytest

from repro.traces.azure import (
    AzureApplication,
    AzureFunctionRecord,
    AzureGeneratorConfig,
    generate_azure_dataset,
)
from repro.traces.preprocess import (
    dataset_to_trace,
    minute_bucket_times,
    trace_function_from_record,
)
from repro.traces.sampling import (
    TABLE2_TARGET_RATES,
    make_paper_traces,
    random_sample,
    rare_sample,
    representative_sample,
    scale_trace_rate,
)


class TestGenerator:
    def test_deterministic_for_seed(self):
        cfg = AzureGeneratorConfig(num_functions=40)
        a = generate_azure_dataset(cfg, seed=3)
        b = generate_azure_dataset(cfg, seed=3)
        assert a.total_invocations() == b.total_invocations()
        fa = a.functions["fn-00000"]
        fb = b.functions["fn-00000"]
        assert fa.minute_counts == fb.minute_counts
        assert fa.avg_duration_ms == fb.avg_duration_ms

    def test_seed_changes_output(self):
        cfg = AzureGeneratorConfig(num_functions=40)
        a = generate_azure_dataset(cfg, seed=3)
        b = generate_azure_dataset(cfg, seed=4)
        assert a.total_invocations() != b.total_invocations()

    def test_function_count(self, small_dataset):
        assert small_dataset.num_functions == 120

    def test_every_function_belongs_to_an_app(self, small_dataset):
        for record in small_dataset.functions.values():
            app = small_dataset.applications[record.app_id]
            assert record.function_id in app.function_ids

    def test_app_of(self, small_dataset):
        fid = next(iter(small_dataset.functions))
        app = small_dataset.app_of(fid)
        assert fid in app.function_ids

    def test_memory_within_bounds(self, small_dataset):
        cfg = AzureGeneratorConfig()
        for app in small_dataset.applications.values():
            assert cfg.memory_min_mb <= app.memory_mb <= cfg.memory_max_mb

    def test_max_duration_at_least_avg(self, small_dataset):
        for record in small_dataset.functions.values():
            assert record.max_duration_ms >= record.avg_duration_ms

    def test_popularity_is_heavy_tailed(self):
        dataset = generate_azure_dataset(
            AzureGeneratorConfig(num_functions=800), seed=5
        )
        counts = sorted(
            f.total_invocations for f in dataset.functions.values()
        )
        nonzero = [c for c in counts if c > 0]
        # Spread of at least two orders of magnitude.
        assert max(nonzero) / max(min(nonzero), 1) >= 100

    def test_diurnal_aggregate_shape(self):
        dataset = generate_azure_dataset(
            AzureGeneratorConfig(num_functions=300), seed=9
        )
        minutes = len(next(iter(dataset.functions.values())).minute_counts)
        totals = [0] * minutes
        for record in dataset.functions.values():
            for i, c in enumerate(record.minute_counts):
                totals[i] += c
        # Peak rate should be roughly 2x the mean (diurnal amplitude 1).
        mean_rate = sum(totals) / minutes
        window = 60
        smoothed = [
            sum(totals[i : i + window]) / window
            for i in range(0, minutes - window)
        ]
        assert max(smoothed) > 1.5 * mean_rate
        assert min(smoothed) < 0.5 * mean_rate

    def test_functions_by_popularity_sorted(self, small_dataset):
        ordered = small_dataset.functions_by_popularity()
        counts = [f.total_invocations for f in ordered]
        assert counts == sorted(counts)

    def test_record_validation(self):
        with pytest.raises(ValueError):
            AzureFunctionRecord(
                function_id="f",
                app_id="a",
                minute_counts=(1,),
                avg_duration_ms=100.0,
                max_duration_ms=50.0,
            )

    def test_dataset_rejects_dangling_function_reference(self):
        record = AzureFunctionRecord("f1", "a1", (1,), 10.0, 20.0)
        app = AzureApplication("a1", 128.0, ("f1", "ghost"))
        from repro.traces.azure import AzureDataset

        with pytest.raises(ValueError):
            AzureDataset([record], [app])


class TestPreprocess:
    def test_single_invocation_at_minute_start(self):
        assert minute_bucket_times(3, 1) == [180.0]

    def test_multiple_spaced_equally(self):
        times = minute_bucket_times(0, 4)
        assert times == [0.0, 15.0, 30.0, 45.0]

    def test_zero_count(self):
        assert minute_bucket_times(5, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            minute_bucket_times(0, -1)

    def test_memory_split_across_app(self):
        record = AzureFunctionRecord("f", "a", (2,), 1000.0, 1500.0)
        tf = trace_function_from_record(record, functions_in_app=4, app_memory_mb=800.0)
        assert tf.memory_mb == pytest.approx(200.0)

    def test_cold_overhead_is_max_minus_avg(self):
        record = AzureFunctionRecord("f", "a", (2,), 1000.0, 1500.0)
        tf = trace_function_from_record(record, 1, 256.0)
        assert tf.warm_time_s == pytest.approx(1.0)
        assert tf.cold_time_s == pytest.approx(1.5)
        assert tf.init_time_s == pytest.approx(0.5)

    def test_functions_with_single_invocation_dropped(self, small_dataset):
        trace = dataset_to_trace(small_dataset)
        counts = trace.per_function_counts()
        assert all(c >= 2 for c in counts.values())

    def test_restricted_trace(self, small_dataset):
        popular = small_dataset.functions_by_popularity()[-1]
        trace = dataset_to_trace(small_dataset, [popular.function_id])
        assert trace.num_functions == 1
        assert len(trace) == popular.total_invocations

    def test_unknown_id_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            dataset_to_trace(small_dataset, ["ghost"])

    def test_invocation_count_preserved(self, small_dataset):
        trace = dataset_to_trace(small_dataset)
        expected = sum(
            f.total_invocations
            for f in small_dataset.functions.values()
            if f.total_invocations >= 2
        )
        assert len(trace) == expected


class TestSamplers:
    def test_rare_sample_comes_from_rarest_quartile(self, small_dataset):
        sample = rare_sample(small_dataset, n=10, seed=1)
        ordered = [
            f.function_id
            for f in small_dataset.functions_by_popularity()
            if f.total_invocations >= 2
        ]
        quartile = set(ordered[: max(len(ordered) // 4, 1)])
        assert set(sample) <= quartile

    def test_rare_sample_bounded_by_pool(self, small_dataset):
        sample = rare_sample(small_dataset, n=10_000, seed=1)
        assert len(sample) <= small_dataset.num_functions

    def test_representative_covers_quartiles(self, small_dataset):
        sample = representative_sample(small_dataset, n=40, seed=1)
        assert len(sample) == 40
        ordered = [
            f.function_id
            for f in small_dataset.functions_by_popularity()
            if f.total_invocations >= 2
        ]
        rank = {fid: i for i, fid in enumerate(ordered)}
        quartile = max(len(ordered) // 4, 1)
        hit_quartiles = {min(rank[fid] // quartile, 3) for fid in sample}
        assert hit_quartiles == {0, 1, 2, 3}

    def test_random_sample_size_and_determinism(self, small_dataset):
        a = random_sample(small_dataset, n=20, seed=2)
        b = random_sample(small_dataset, n=20, seed=2)
        assert a == b
        assert len(a) == 20

    def test_samples_exclude_single_invocation_functions(self, small_dataset):
        for sampler in (rare_sample, representative_sample, random_sample):
            for fid in sampler(small_dataset, n=30, seed=0):
                assert small_dataset.functions[fid].total_invocations >= 2


class TestRateScaling:
    def test_scale_sets_target_rate(self, small_dataset):
        trace = dataset_to_trace(small_dataset)
        scaled = scale_trace_rate(trace, 50.0)
        assert scaled.arrival_rate() == pytest.approx(50.0, rel=1e-6)

    def test_scale_preserves_order_and_count(self, small_dataset):
        trace = dataset_to_trace(small_dataset)
        scaled = scale_trace_rate(trace, 50.0)
        assert len(scaled) == len(trace)
        names = [i.function_name for i in trace]
        scaled_names = [i.function_name for i in scaled]
        assert names == scaled_names

    def test_scale_rejects_bad_rate(self, small_dataset):
        trace = dataset_to_trace(small_dataset)
        with pytest.raises(ValueError):
            scale_trace_rate(trace, 0.0)

    def test_make_paper_traces_natural_time_by_default(self, small_dataset):
        traces = make_paper_traces(
            small_dataset, sizes={"rare": 10, "representative": 12, "random": 8}
        )
        assert set(traces) == {"rare", "representative", "random"}
        # Natural replay: a day-long dataset spans hours, not seconds.
        assert traces["representative"].duration_s > 3600.0

    def test_make_paper_traces_with_table2_rates(self, small_dataset):
        traces = make_paper_traces(
            small_dataset,
            sizes={"rare": 10, "representative": 12, "random": 8},
            target_rates=TABLE2_TARGET_RATES,
        )
        assert traces["random"].arrival_rate() == pytest.approx(600.0, rel=1e-6)


class TestMultiDayGeneration:
    def test_two_day_dataset(self):
        from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset

        config = AzureGeneratorConfig(
            num_functions=60, minutes=2880, max_daily_invocations=500
        )
        dataset = generate_azure_dataset(config, seed=5)
        record = next(iter(dataset.functions.values()))
        assert len(record.minute_counts) == 2880

    def test_two_day_trace_spans_two_days(self):
        from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
        from repro.traces.preprocess import dataset_to_trace

        config = AzureGeneratorConfig(
            num_functions=120, minutes=2880, max_daily_invocations=500
        )
        dataset = generate_azure_dataset(config, seed=5)
        trace = dataset_to_trace(dataset)
        assert trace.duration_s > 1.5 * 86_400.0

    def test_diurnal_pattern_repeats_across_days(self):
        from repro.analysis.workload import diurnal_peak_to_mean
        from repro.traces.azure import AzureGeneratorConfig, generate_azure_dataset
        from repro.traces.preprocess import dataset_to_trace

        config = AzureGeneratorConfig(
            num_functions=200, minutes=2880, max_daily_invocations=2000
        )
        dataset = generate_azure_dataset(config, seed=6)
        trace = dataset_to_trace(dataset)
        # The sinusoid continues across the day boundary: both days
        # show the ~2x peak/mean swing.
        day1 = trace.truncated(86_400.0)
        ratio1 = diurnal_peak_to_mean(day1)
        ratio_full = diurnal_peak_to_mean(trace)
        assert 1.5 <= ratio1 <= 3.0
        assert 1.5 <= ratio_full <= 3.0

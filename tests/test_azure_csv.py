"""Tests for the real-Azure-dataset CSV loader (synthetic fixtures in
the documented schema)."""

import csv

import pytest

from repro.traces.azure_csv import (
    DEFAULT_APP_MEMORY_MB,
    load_azure_dataset_csv,
)
from repro.traces.preprocess import dataset_to_trace


def write_csv(path, header, rows):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


@pytest.fixture
def azure_files(tmp_path):
    """Three tiny files in the real dataset's schema (2 minute cols)."""
    minutes = ["1", "2"]
    inv_header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + minutes
    write_csv(
        tmp_path / "inv.csv",
        inv_header,
        [
            ["o1", "a1", "f1", "http", "3", "1"],
            ["o1", "a1", "f2", "timer", "0", "2"],
            ["o2", "a2", "f3", "queue", "1", "0"],
            ["o2", "a2", "f4", "http", "5", "5"],  # no duration row
        ],
    )
    dur_header = [
        "HashOwner", "HashApp", "HashFunction",
        "Average", "Count", "Minimum", "Maximum",
    ]
    write_csv(
        tmp_path / "dur.csv",
        dur_header,
        [
            ["o1", "a1", "f1", "500", "4", "100", "2000"],
            ["o1", "a1", "f2", "1000", "2", "900", "1500"],
            ["o2", "a2", "f3", "250", "1", "250", "250"],
        ],
    )
    mem_header = ["HashOwner", "HashApp", "SampleCount", "AverageAllocatedMb"]
    write_csv(
        tmp_path / "mem.csv",
        mem_header,
        [["o1", "a1", "10", "400"]],  # a2 has no memory row
    )
    return tmp_path / "inv.csv", tmp_path / "dur.csv", tmp_path / "mem.csv"


class TestLoader:
    def test_join(self, azure_files):
        dataset, report = load_azure_dataset_csv(*azure_files, minutes=2)
        assert report.functions_loaded == 3
        assert report.functions_without_durations == 1  # f4
        assert report.apps_without_memory == 1  # a2
        assert dataset.num_functions == 3

    def test_minute_counts(self, azure_files):
        dataset, __ = load_azure_dataset_csv(*azure_files, minutes=2)
        f1 = dataset.functions["o1-a1-f1"]
        assert f1.minute_counts == (3, 1)
        assert f1.total_invocations == 4

    def test_durations_joined(self, azure_files):
        dataset, __ = load_azure_dataset_csv(*azure_files, minutes=2)
        f1 = dataset.functions["o1-a1-f1"]
        assert f1.avg_duration_ms == 500.0
        assert f1.max_duration_ms == 2000.0

    def test_app_memory_and_default(self, azure_files):
        dataset, __ = load_azure_dataset_csv(*azure_files, minutes=2)
        assert dataset.applications["o1-a1"].memory_mb == 400.0
        assert dataset.applications["o2-a2"].memory_mb == DEFAULT_APP_MEMORY_MB

    def test_app_grouping(self, azure_files):
        dataset, __ = load_azure_dataset_csv(*azure_files, minutes=2)
        a1 = dataset.applications["o1-a1"]
        assert set(a1.function_ids) == {"o1-a1-f1", "o1-a1-f2"}

    def test_flows_into_paper_pipeline(self, azure_files):
        """The loaded dataset runs through preprocessing + simulation."""
        from repro.sim.scheduler import simulate

        dataset, __ = load_azure_dataset_csv(*azure_files, minutes=2)
        trace = dataset_to_trace(dataset, name="real-azure")
        # f3 has one invocation and is dropped; f1 (4) and f2 (2) stay.
        assert trace.num_functions == 2
        # Memory split: app a1 has two functions sharing 400 MB.
        assert trace.function("o1-a1-f1").memory_mb == pytest.approx(200.0)
        result = simulate(trace, "GD", 1024.0)
        assert result.metrics.served == len(trace)

    def test_schema_errors(self, tmp_path, azure_files):
        inv, dur, mem = azure_files
        bad = tmp_path / "bad.csv"
        write_csv(bad, ["Wrong", "Columns"], [["x", "y"]])
        with pytest.raises((ValueError, KeyError)):
            load_azure_dataset_csv(bad, dur, mem, minutes=2)
        empty = tmp_path / "empty.csv"
        write_csv(empty, ["HashOwner", "HashApp", "HashFunction"], [])
        with pytest.raises(ValueError, match="no invocation rows"):
            load_azure_dataset_csv(empty, dur, mem, minutes=2)

    def test_bad_duration_value(self, tmp_path, azure_files):
        inv, __, mem = azure_files
        bad_dur = tmp_path / "bad_dur.csv"
        write_csv(
            bad_dur,
            ["HashOwner", "HashApp", "HashFunction", "Average", "Maximum"],
            [["o1", "a1", "f1", "not-a-number", "10"]],
        )
        with pytest.raises(ValueError, match="bad duration row"):
            load_azure_dataset_csv(inv, bad_dur, mem, minutes=2)

    def test_max_clamped_to_average(self, tmp_path, azure_files):
        """Some dataset rows have Maximum < Average (sampling noise);
        the loader clamps so cold >= warm holds downstream."""
        inv, __, mem = azure_files
        dur = tmp_path / "clamp.csv"
        write_csv(
            dur,
            ["HashOwner", "HashApp", "HashFunction", "Average", "Maximum"],
            [["o1", "a1", "f1", "500", "100"]],
        )
        dataset, __ = load_azure_dataset_csv(inv, dur, mem, minutes=2)
        f1 = dataset.functions["o1-a1-f1"]
        assert f1.max_duration_ms >= f1.avg_duration_ms

"""The pool's lazy victim index and its policy-facing contract.

Two layers: unit tests of :meth:`ContainerPool.iter_victims` (lazy
revalidation, busy deferral, pinned exclusion, tolerance of evictions
mid-scan), and end-to-end equivalence — every ``monotone_priority``
policy must produce *identical* simulation results whether victims
come from the index or from the exact sort-every-miss path.
"""

import pytest

from repro.core.container import Container
from repro.core.policies import available_policies, create_policy
from repro.core.pool import ContainerPool
from repro.sim.scheduler import KeepAliveSimulator
from repro.traces.synth import multitenant_trace, skewed_frequency_trace
from tests.conftest import make_function, make_trace

#: Every registered policy that opts into the index. RAND is excluded
#: from the *equivalence* runs below (its priorities hash globally
#: unique container ids, so no two runs are comparable — the same
#: reason test_policy_conformance skips it in reset tests), but its
#: flag is still exercised by the pinned/conformance batteries.
def _has_flag(name):
    if name.startswith("ORACLE"):
        return False  # needs a trace to construct; overrides selection
    return create_policy(name).monotone_priority


MONOTONE = sorted(n for n in available_policies() if _has_flag(n))
EQUIVALENCE = [n for n in MONOTONE if n != "RAND"]


def _key_of(container):
    return (container.priority, container.last_used_s, container.container_id)


class TestIterVictims:
    def _pool_with(self, *specs):
        """specs: (name, memory_mb, priority) triples."""
        pool = ContainerPool(100_000.0)
        containers = []
        for i, (name, mem, prio) in enumerate(specs):
            c = Container(make_function(name, memory_mb=mem), float(i))
            c.priority = prio
            pool.add(c)
            containers.append(c)
        return pool, containers

    def test_ascending_key_order(self):
        pool, (a, b, c) = self._pool_with(
            ("A", 100.0, 3.0), ("B", 100.0, 1.0), ("C", 100.0, 2.0)
        )
        assert list(pool.iter_victims(_key_of)) == [b, c, a]

    def test_stale_entry_repushed_under_new_key(self):
        pool, (a, b) = self._pool_with(("A", 100.0, 1.0), ("B", 100.0, 2.0))
        list(pool.iter_victims(_key_of))  # settle real keys
        a.priority = 5.0  # grew past b (monotone: only increases)
        assert list(pool.iter_victims(_key_of)) == [b, a]

    def test_busy_containers_deferred_and_restored(self):
        pool, (a, b) = self._pool_with(("A", 100.0, 1.0), ("B", 100.0, 2.0))
        a.start_invocation(10.0, 100.0)
        assert list(pool.iter_victims(_key_of)) == [b]
        a.finish_invocation(110.0)
        a.priority = 1.0
        # A's entry survived the scan it sat out.
        assert a in list(pool.iter_victims(_key_of))

    def test_pinned_never_yielded(self):
        pool, (a, b) = self._pool_with(("A", 100.0, 1.0), ("B", 100.0, 2.0))
        a.pinned = True  # pinned after add: entry must be discarded
        assert list(pool.iter_victims(_key_of)) == [b]

    def test_evicted_entries_dropped_lazily(self):
        pool, (a, b, c) = self._pool_with(
            ("A", 100.0, 1.0), ("B", 100.0, 2.0), ("C", 100.0, 3.0)
        )
        pool.evict(a)
        assert list(pool.iter_victims(_key_of)) == [b, c]

    def test_partial_consumption_keeps_remainder(self):
        pool, (a, b, c) = self._pool_with(
            ("A", 100.0, 1.0), ("B", 100.0, 2.0), ("C", 100.0, 3.0)
        )
        it = pool.iter_victims(_key_of)
        assert next(it) == a
        it.close()  # caller stopped early: nothing lost
        assert list(pool.iter_victims(_key_of)) == [a, b, c]

    def test_eviction_of_yielded_victim_during_scan(self):
        """The simulator's actual pattern: evict what was yielded."""
        pool, (a, b, c) = self._pool_with(
            ("A", 100.0, 1.0), ("B", 100.0, 2.0), ("C", 100.0, 3.0)
        )
        victims = []
        for container in pool.iter_victims(_key_of):
            victims.append(container)
            if len(victims) == 2:
                break
        for v in victims:
            pool.evict(v)
        assert list(pool.iter_victims(_key_of)) == [c]


class TestEvictableAccounting:
    def test_busy_idle_transitions(self):
        pool = ContainerPool(1000.0)
        c = Container(make_function("A", memory_mb=300.0), 0.0)
        pool.add(c)
        assert pool.evictable_mb() == 300.0
        c.start_invocation(0.0, 10.0)
        assert pool.evictable_mb() == 0.0
        c.finish_invocation(10.0)
        assert pool.evictable_mb() == 300.0
        pool.evict(c)
        assert pool.evictable_mb() == 0.0

    def test_matches_idle_scan_during_replay(self):
        trace = make_trace("ABCDBCADACBD" * 10, gap_s=2.0)
        policy = create_policy("GD")
        sim = KeepAliveSimulator(trace, policy, 700.0)
        functions = trace.functions
        for invocation in trace:
            sim.process_invocation(
                functions[invocation.function_name], invocation.time_s
            )
            expected = sum(c.memory_mb for c in sim.pool.idle_containers())
            assert sim.pool.evictable_mb() == pytest.approx(expected)

    def test_add_rejects_double_enrollment(self):
        pool_a, pool_b = ContainerPool(1000.0), ContainerPool(1000.0)
        c = Container(make_function("A"), 0.0)
        pool_a.add(c)
        with pytest.raises(ValueError, match="already belongs"):
            pool_b.add(c)


@pytest.mark.parametrize("name", EQUIVALENCE)
class TestIndexedMatchesSort:
    """Forcing the exact sort path must change nothing observable."""

    def _run(self, trace, name, memory_mb, use_index):
        policy = create_policy(name)
        assert policy.monotone_priority
        if not use_index:
            policy.monotone_priority = False  # instance-level override
        sim = KeepAliveSimulator(trace, policy, memory_mb)
        return sim.run().metrics.summary()

    @pytest.mark.parametrize("memory_gb", [0.5, 1.0, 2.0])
    def test_multitenant(self, name, memory_gb):
        trace = multitenant_trace(duration_s=600.0, num_tenants=30, seed=7)
        indexed = self._run(trace, name, memory_gb * 1024.0, True)
        sorted_ = self._run(trace, name, memory_gb * 1024.0, False)
        assert indexed == sorted_

    def test_skewed(self, name):
        trace = skewed_frequency_trace(seed=3)
        indexed = self._run(trace, name, 1024.0, True)
        sorted_ = self._run(trace, name, 1024.0, False)
        assert indexed == sorted_

    def test_sequence_trace_victim_counts(self, name):
        trace = make_trace("ABCDBCADACBDDBCA" * 8, gap_s=3.0)
        indexed = self._run(trace, name, 700.0, True)
        sorted_ = self._run(trace, name, 700.0, False)
        assert indexed == sorted_


class TestParkedBusyEntries:
    """Busy containers leave the heap entirely while running: parked
    on first encounter, re-enrolled only on the idle transition. A
    long-running container must not be re-popped and re-pushed by
    every scan in between (the churn that dominated eviction-heavy
    replays)."""

    def _pool_with(self, *specs):
        pool = ContainerPool(100_000.0)
        containers = []
        for i, (name, mem, prio) in enumerate(specs):
            c = Container(make_function(name, memory_mb=mem), float(i))
            c.priority = prio
            pool.add(c)
            containers.append(c)
        return pool, containers

    def test_busy_entry_skipped_across_repeated_scans(self):
        pool, (a, b) = self._pool_with(("A", 100.0, 1.0), ("B", 100.0, 2.0))
        a.start_invocation(10.0, 100.0)
        for __ in range(5):
            assert list(pool.iter_victims(_key_of)) == [b]
        a.finish_invocation(110.0)
        a.priority = 1.0
        # Exactly one entry re-enrolled on the idle transition.
        assert list(pool.iter_victims(_key_of)) == [a, b]

    def test_take_victims_parks_busy_and_restores_on_idle(self):
        pool, (a, b, c) = self._pool_with(
            ("A", 100.0, 1.0), ("B", 100.0, 2.0), ("C", 100.0, 3.0)
        )
        a.start_invocation(10.0, 100.0)
        victims = pool.take_victims(_key_of, 200.0)
        assert victims == [b, c]
        for victim in victims:
            pool.evict(victim)
        a.finish_invocation(110.0)
        a.priority = 1.0
        assert pool.take_victims(_key_of, 100.0) == [a]

    def test_parked_entry_discarded_when_evicted_after_idle(self):
        pool, (a, b) = self._pool_with(("A", 100.0, 1.0), ("B", 100.0, 2.0))
        a.start_invocation(10.0, 100.0)
        assert list(pool.iter_victims(_key_of)) == [b]  # parks a
        a.finish_invocation(110.0)  # re-enrolls a
        a.priority = 1.0
        pool.evict(a)
        assert list(pool.iter_victims(_key_of)) == [b]

# repro-checks-module: repro.live.fixture_fc009_ok
"""FC009 fixed: shared-state writes go under the lock, through a
``@synchronized`` decorator, or through the pool's own API (which
owns its invariants); single-entry-point helpers stay unflagged."""

import threading

from repro.core.pool import ContainerPool

_lock = threading.Lock()


def handle_invocation(pool: ContainerPool, name):
    _reap(pool, name)


def reclaim_idle(pool: ContainerPool):
    _reap(pool, None)


def _reap(pool: ContainerPool, name):
    with _lock:
        pool.in_use = name
    pool.evict(name)  # the pool API maintains its own invariants


def adjust_quota(pool: ContainerPool):
    _rebalance(pool)


def rebalance_now(pool: ContainerPool):
    _rebalance(pool)


@synchronized  # noqa: F821 - fixture is parsed, never imported
def _rebalance(pool: ContainerPool):
    pool.quota = 1.0


def warmup(pool: ContainerPool):
    _prime(pool)


def _prime(pool: ContainerPool):
    # Only one public entry point reaches this helper: no race.
    pool.prewarmed = True

# repro-checks-module: repro.live.fixture_fc010_ok
"""FC010 fixed: coroutines await ``asyncio.sleep``; blocking calls
are fine on sync-only paths the call graph never ties to async code."""

import asyncio
import time


async def poll_loop():
    await asyncio.sleep(0.5)
    _compute()


def _compute():
    return 41 + 1


def cli_entry():
    # Never called from async code: blocking here is fine.
    time.sleep(1.0)

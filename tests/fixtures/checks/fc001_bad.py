# repro-checks-module: repro.sim.fixture_fc001
"""FC001: a deterministic module reading the wall clock."""

import time


def arrival_stamp() -> float:
    return time.time()

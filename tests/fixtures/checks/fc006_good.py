"""FC006 fixed: module-level factories and callbacks only; the
parent-side progress= keyword is exempt by design."""

from dataclasses import dataclass, field


def run_sweep_parallel(trace, sizes, **kwargs):
    return None


def _cell_key(cell):
    return cell


@dataclass
class CellConfig:
    overrides: dict = field(default_factory=dict)


def launch(trace, sizes):
    run_sweep_parallel(
        trace, sizes, key=_cell_key, progress=lambda *a: None
    )

# repro-checks-module: repro.sim.fixture_fc003
"""FC003: iterating an unordered set in a deterministic path —
directly, through a variable, and (since the two-phase engine)
through a set-typed ``self`` attribute, a set-returning function, and
a module-level set constant."""

from typing import Dict, Set

ALLOWED_STATES = {"warm", "cold", "draining"}


def first_victims(names):
    order = []
    for name in set(names):
        order.append(name)
    return order


def containers_of(index: Dict[str, Set[int]], function_name):
    # The ContainerPool.containers_of pattern before PR 5: the raw
    # set-typed index reaches the loop through a variable.
    ids = index.get(function_name, set())
    return [i for i in ids]


def annotated_reach(index: Dict[str, Set[int]]):
    known: Set[str] = set(index)
    out = []
    for name in known:
        out.append(name)
    return out


class DrainTracker:
    """The attribute-load gap: ``self._down`` is inferred set-typed
    from ``__init__`` and iterated two methods away."""

    def __init__(self):
        self._down = set()

    def mark(self, name):
        self._down.add(name)

    def drain_order(self):
        return [name for name in self._down]


def _warm_names():
    return {"alpha", "beta"}


def walk_returned():
    # The function-return gap: the loop source resolves to a
    # set-returning function via its return summary.
    out = []
    for name in _warm_names():
        out.append(name)
    return out


def walk_constant():
    # The module-constant gap: ALLOWED_STATES is a set defined at
    # module scope.
    return [state for state in ALLOWED_STATES]

# repro-checks-module: repro.sim.fixture_fc003
"""FC003: iterating an unordered set in a deterministic path."""


def first_victims(names):
    order = []
    for name in set(names):
        order.append(name)
    return order

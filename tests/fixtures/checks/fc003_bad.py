# repro-checks-module: repro.sim.fixture_fc003
"""FC003: iterating an unordered set in a deterministic path —
directly, and through a variable known to hold one."""

from typing import Dict, Set


def first_victims(names):
    order = []
    for name in set(names):
        order.append(name)
    return order


def containers_of(index: Dict[str, Set[int]], function_name):
    # The ContainerPool.containers_of pattern before PR 5: the raw
    # set-typed index reaches the loop through a variable.
    ids = index.get(function_name, set())
    return [i for i in ids]


def annotated_reach(index: Dict[str, Set[int]]):
    known: Set[str] = set(index)
    out = []
    for name in known:
        out.append(name)
    return out

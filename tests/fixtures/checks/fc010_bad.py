# repro-checks-module: repro.live.fixture_fc010
"""FC010: blocking calls on async-reachable paths — lexically inside
an ``async def``, and inside a sync helper the call graph proves is
called from one."""

import time


async def poll_loop():
    time.sleep(0.5)
    _backoff()


def _backoff():
    time.sleep(1.0)

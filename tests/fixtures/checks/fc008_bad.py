"""FC008: a mutable default argument shared across calls."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket

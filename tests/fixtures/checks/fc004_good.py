"""FC004 fixed: only registered event names are emitted."""


def announce(tracer, now_s: float) -> None:
    tracer.emit("warm_hit", now_s, function="f", container_id=1)

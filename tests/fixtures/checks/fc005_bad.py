"""FC005: a counter added to SimulationMetrics but not mirrored in
TraceReport (redefines both classes so the linter diffs this file's
contract instead of the real one)."""


class SimulationMetrics:
    warm_starts: int = 0
    cold_starts: int = 0
    teleports: int = 0

    def counters(self):
        return {
            "warm_starts": self.warm_starts,
            "cold_starts": self.cold_starts,
            "teleports": self.teleports,
        }


class TraceReport:
    warm_hits: int = 0
    cold_hits: int = 0

    def counters(self):
        return {
            "warm_starts": self.warm_hits,
            "cold_starts": self.cold_hits,
        }

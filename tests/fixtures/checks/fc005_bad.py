"""FC005: a counter added to SimulationMetrics but not mirrored in
TraceReport, and a per-tenant counter whose inner key drifted between
the two tenant_counters() implementations (redefines both classes so
the linter diffs this file's contract instead of the real one)."""


class SimulationMetrics:
    warm_starts: int = 0
    cold_starts: int = 0
    teleports: int = 0

    def counters(self):
        return {
            "warm_starts": self.warm_starts,
            "cold_starts": self.cold_starts,
            "teleports": self.teleports,
        }

    def tenant_counters(self):
        return {
            tenant_id: {
                "warm_starts": outcome.warm,
                "cold_starts": outcome.cold,
            }
            for tenant_id, outcome in sorted(self.per_tenant.items())
        }


class TraceReport:
    warm_hits: int = 0
    cold_hits: int = 0

    def counters(self):
        return {
            "warm_starts": self.warm_hits,
            "cold_starts": self.cold_hits,
        }

    def tenant_counters(self):
        return {
            tenant_id: {
                "warm_starts": outcome["warm_starts"],
                "chilly_starts": outcome["cold_starts"],
            }
            for tenant_id, outcome in sorted(self._tenant_outcomes.items())
        }

# repro-checks-module: repro.sim.fixture_fc011
"""FC011: swallowed exceptions — a pass-only handler, and a broad
handler that neither re-raises, emits a traced event, increments a
counter, nor even reads the exception it caught."""


def tick(pool):
    try:
        pool.advance()
    except Exception:
        pass


def lookup(table, key):
    try:
        return table[key]
    except KeyError:
        pass
    return None


def run_step(sim):
    try:
        sim.step()
    except Exception:
        sim.last_error = "step failed"
    return sim

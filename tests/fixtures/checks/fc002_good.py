# repro-checks-module: repro.sim.fixture_fc002_ok
"""FC002 fixed: randomness flows through a seeded instance."""

import random


def jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.uniform(0.0, 1.0)

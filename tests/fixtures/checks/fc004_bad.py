"""FC004: a typo'd event name no schema registers."""


def announce(tracer, now_s: float) -> None:
    tracer.emit("warm_hitt", now_s, function="f")

# repro-checks-module: repro.sim.fixture_fc002
"""FC002: simulation path drawing from the process-global RNG."""

import random


def jitter() -> float:
    return random.uniform(0.0, 1.0)

# repro-checks-module: repro.sim.fixture_fc003_ok
"""FC003 fixed: sets are sorted before iteration (including ones
reached through a variable, a set-typed attribute, a set-returning
function, or a module constant), the membership set is hoisted out of
the loop, and membership tests against a set stay allowed — only
*iteration* order is hash-seed dependent."""

from typing import Dict, Set

ALLOWED_STATES = {"warm", "cold", "draining"}


def first_victims(names, skip):
    skipped = set(skip)
    order = []
    for name in sorted(set(names)):
        if name not in skipped:
            order.append(name)
    return order


def containers_of(index: Dict[str, Set[int]], function_name):
    ids = index.get(function_name, set())
    return [i for i in sorted(ids)]


def rebound_is_forgotten(index):
    ids = set(index)
    ids = sorted(ids)  # now a list: iterating it is deterministic
    return [i for i in ids]


class DrainTracker:
    def __init__(self):
        self._down = set()

    def mark(self, name):
        self._down.add(name)

    def drain_order(self):
        return [name for name in sorted(self._down)]

    def is_down(self, name):
        return name in self._down  # membership, not iteration


def _warm_names():
    return {"alpha", "beta"}


def _maybe_names(flag):
    # Mixed return paths degrade to unknown — never flagged wrong.
    if flag:
        return {"alpha"}
    return ["alpha"]


def walk_returned(flag):
    out = []
    for name in sorted(_warm_names()):
        out.append(name)
    for name in _maybe_names(flag):
        out.append(name)
    return out


def walk_constant(items):
    ordered = [state for state in sorted(ALLOWED_STATES)]
    # A local rebind shadows the module set constant: iterating the
    # local (a list here) is fine.
    ALLOWED_STATES_LOCAL = ALLOWED_STATES
    ALLOWED_STATES_LOCAL = sorted(items)
    ordered.extend(name for name in ALLOWED_STATES_LOCAL)
    return ordered

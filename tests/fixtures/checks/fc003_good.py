# repro-checks-module: repro.sim.fixture_fc003_ok
"""FC003 fixed: sets are sorted before iteration (including ones
reached through a variable), the membership set is hoisted out of the
loop, and membership tests against a set variable stay allowed — only
*iteration* order is hash-seed dependent."""

from typing import Dict, Set


def first_victims(names, skip):
    skipped = set(skip)
    order = []
    for name in sorted(set(names)):
        if name not in skipped:
            order.append(name)
    return order


def containers_of(index: Dict[str, Set[int]], function_name):
    ids = index.get(function_name, set())
    return [i for i in sorted(ids)]


def rebound_is_forgotten(index):
    ids = set(index)
    ids = sorted(ids)  # now a list: iterating it is deterministic
    return [i for i in ids]

# repro-checks-module: repro.sim.fixture_fc003_ok
"""FC003 fixed: the set is sorted before iteration, and the
membership set is hoisted out of the loop."""


def first_victims(names, skip):
    skipped = set(skip)
    order = []
    for name in sorted(set(names)):
        if name not in skipped:
            order.append(name)
    return order

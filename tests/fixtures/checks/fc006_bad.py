"""FC006: unpicklable callables in a dataclass default and in
arguments shipped to run_sweep_parallel."""

from dataclasses import dataclass, field


def run_sweep_parallel(trace, sizes, **kwargs):
    return None


@dataclass
class CellConfig:
    overrides: dict = field(default_factory=lambda: {})


def launch(trace, sizes):
    def local_progress(done, total, policy, memory_gb):
        return None

    run_sweep_parallel(trace, sizes, key=lambda cell: cell)
    run_sweep_parallel(trace, sizes, local_progress)

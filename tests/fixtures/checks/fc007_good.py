# repro-checks-module: repro.core.fixture_fc007_ok
"""FC007 fixed: float comparison under an explicit tolerance."""


def same_priority(a: float, eps: float = 1e-9) -> bool:
    return abs(a - 1.0) <= eps

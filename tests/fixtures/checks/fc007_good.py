# repro-checks-module: repro.analysis.fixture_fc007_ok
"""FC007 fixed: float comparisons under an explicit tolerance, or
restructured so an inequality covers the degenerate case exactly."""


def same_priority(a: float, eps: float = 1e-9) -> bool:
    return abs(a - 1.0) <= eps


def coefficient_of_variation(mean: float, stddev: float) -> float:
    denominator = abs(mean)
    if denominator <= 0.0:
        return 0.0
    return stddev / denominator

"""FC005 satisfied: both counters() dicts expose the same key set and
every key has a backing field."""


class SimulationMetrics:
    warm_starts: int = 0
    cold_starts: int = 0

    def counters(self):
        return {
            "warm_starts": self.warm_starts,
            "cold_starts": self.cold_starts,
        }


class TraceReport:
    warm_hits: int = 0
    cold_hits: int = 0

    def counters(self):
        return {
            "warm_starts": self.warm_hits,
            "cold_starts": self.cold_hits,
        }
